//! Model-vs-simulator validation as a scenario: sweep input size and
//! scheduler policy, join the analytic estimates against simulated
//! ground truth, and print per-estimator error bands (the paper's §5.2
//! statistic) plus a CSV for downstream tooling.
//!
//! ```text
//! cargo run --release --example model_vs_sim
//! ```

use hadoop2_perf::scenario::{
    error_bands, render_report, run_scenario, to_csv, Backends, EstimatorKind, JobKind,
    ResultCache, RunnerConfig, Scenario,
};
use hadoop2_perf::sim::{SchedulerPolicy, GB, MB};

fn main() {
    let scenario = Scenario::new("model-vs-sim")
        .axis_input_bytes([512 * MB, GB, 2 * GB])
        .axis_schedulers([SchedulerPolicy::CapacityFifo, SchedulerPolicy::Fair])
        .axis_jobs([JobKind::WordCount])
        .axis_n_jobs([2usize])
        .axis_estimators(EstimatorKind::ALL)
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(3),
        });

    let cache = ResultCache::new();
    let sweep = run_scenario(&scenario, &cache, &RunnerConfig::default());

    println!("{}", render_report(&sweep));

    for band in error_bands(&sweep) {
        println!(
            "{:<10} abs. relative error {} over {} points",
            band.estimator.name(),
            band.band.as_percent_range(),
            band.band.count
        );
    }

    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("model_vs_sim.csv");
        if std::fs::write(&path, to_csv(&sweep)).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}
