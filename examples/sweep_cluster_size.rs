//! A three-axis what-if sweep — cluster size × multiprogramming level ×
//! estimator — through the scenario engine's parallel batch runner,
//! run twice to demonstrate the content-hashed result cache.
//!
//! ```text
//! cargo run --release --example sweep_cluster_size
//! ```

use hadoop2_perf::scenario::{
    render_report, run_scenario, Backends, EstimatorKind, ResultCache, RunnerConfig, Scenario,
};
use hadoop2_perf::sim::GB;
use std::time::Instant;

fn main() {
    // "How does mean response time move if we grow the cluster, pile on
    // concurrent jobs, or trust a different estimator?" — one spec.
    let scenario = Scenario::new("sweep-cluster-size")
        .axis_nodes([2usize, 4, 6, 8])
        .axis_n_jobs([1usize, 2, 4])
        .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi])
        .axis_input_bytes([GB])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(3),
        });
    println!(
        "scenario `{}` expands to {} points\n",
        scenario.name,
        scenario.num_points()
    );

    let cache = ResultCache::new();
    let runner = RunnerConfig::default();

    let t = Instant::now();
    let sweep = run_scenario(&scenario, &cache, &runner);
    let cold = t.elapsed();
    println!("{}", render_report(&sweep));
    let s = cache.stats();
    println!(
        "first run : {cold:?} — cache {} hits / {} misses / {} entries",
        s.hits, s.misses, s.entries
    );

    // Same spec again: every point is answered from the cache.
    let t = Instant::now();
    let again = run_scenario(&scenario, &cache, &runner);
    let warm = t.elapsed();
    let s = cache.stats();
    println!(
        "second run: {warm:?} — cache {} hits / {} misses / {} entries",
        s.hits, s.misses, s.entries
    );
    assert_eq!(
        sweep.points, again.points,
        "cache returns identical results"
    );
}
