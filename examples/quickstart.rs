//! Quickstart: estimate a WordCount job's response time on a 4-node
//! Hadoop 2.x cluster and check the estimate against the simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hadoop2_perf::model::{estimate_workload, relative_error, Calibration, ModelOptions};
use hadoop2_perf::sim::profile::{measure_workload, profile_job};
use hadoop2_perf::sim::workload::wordcount_1gb;
use hadoop2_perf::sim::SimConfig;

fn main() {
    // A cluster like the paper's testbed: 4 nodes, 1 SATA disk and GbE
    // per node, 4 task containers per node, Hadoop 2.x defaults.
    let cfg = SimConfig::paper_testbed(4);

    // WordCount over 1 GB of input (8 × 128 MB splits), 4 reducers.
    let job = wordcount_1gb(4);

    // "Measured": the DES cluster simulator, median of 5 seeded runs —
    // the stand-in for a physical Hadoop deployment.
    let measured = measure_workload(&job, &cfg, 1, 5).median_response;

    // Profile one run to refine task-duration CVs (the paper's job
    // profile history), then query the analytic model.
    let (profile, _) = profile_job(&job, &cfg);
    let est = estimate_workload(
        &cfg,
        &job,
        1,
        &ModelOptions::default(),
        &Calibration::default(),
        Some(&profile),
    );

    println!("WordCount 1 GB on 4 nodes, 1 job:");
    println!("  measured (simulator median) : {measured:8.1} s");
    for (name, v) in [
        ("fork/join model", est.fork_join),
        ("Tripathi model", est.tripathi),
        ("ARIA baseline", est.aria),
        ("Herodotou baseline", est.herodotou),
    ] {
        println!(
            "  {name:28}: {v:8.1} s   ({:+.1}%)",
            relative_error(v, measured) * 100.0
        );
    }
    println!(
        "\nmodel solve took {} MVA iterations; tree depth {}",
        est.fork_join_detail.iterations, est.fork_join_detail.tree_depths[0]
    );
}
