//! The paper's running example (§3.1): n = 3 nodes, m = 4 maps, r = 1
//! reduce — renders Table 1 (the ResourceRequest object), Figure 6 (the
//! timeline) and Figure 7 (the precedence tree).
//!
//! ```text
//! cargo run --example timeline_viz
//! ```

use hadoop2_perf::hdfs::NodeId;
use hadoop2_perf::model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
use hadoop2_perf::model::tree::build_tree;
use hadoop2_perf::yarn::{
    render_table1, AskTable, Location, Priority, ResourceRequest, ResourceVector,
};

fn main() {
    println!("Running example: n = 3, m = 4, r = 1\n");

    // Table 1 — what the MapReduce AM asks the RM for.
    let mut ask = AskTable::new();
    let x = ResourceVector::new(1024, 1);
    for (loc, n, p) in [
        (Location::Node(NodeId(0)), 2, Priority::MAP),
        (Location::Node(NodeId(1)), 2, Priority::MAP),
        (Location::Any, 4, Priority::MAP),
        (Location::Any, 1, Priority::REDUCE),
    ] {
        ask.update(&ResourceRequest {
            num_containers: n,
            priority: p,
            capability: x,
            location: loc,
            relax_locality: true,
        });
    }
    println!("Table 1 — ResourceRequest object:\n{}", render_table1(&ask));

    // Figure 6 — the timeline produced by Algorithm 1 (slow start on).
    let tl = build_timeline(
        &TimelineConfig {
            capacities: vec![1; 3],
            slow_start: true,
        },
        &[TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }],
    );
    println!("Figure 6 — timeline (map 10 s, sd 2 s, merge 6 s):");
    let width = 46usize;
    let makespan = tl.makespan();
    for s in &tl.segments {
        let from = (s.start / makespan * width as f64) as usize;
        let to = ((s.end / makespan * width as f64) as usize).max(from + 1);
        let bar: String = (0..width)
            .map(|i| if i >= from && i < to { '█' } else { '·' })
            .collect();
        println!(
            "  n{} {:<3} |{bar}| [{:>4.1},{:>4.1})",
            s.node,
            format!("{:?}", s.class).chars().take(3).collect::<String>(),
            s.start,
            s.end
        );
    }
    println!("  makespan: {makespan:.1} s\n");

    // Figure 7 — the precedence tree (balanced P-subtrees).
    let tree = build_tree(&tl, None, true).expect("non-empty");
    println!("Figure 7 — precedence tree:");
    println!("  {}", tree.render(&tl));
    println!("  depth {}, {} leaves", tree.depth(), tree.num_leaves());

    // The same reduce placed without slow start, for contrast.
    let late = build_timeline(
        &TimelineConfig {
            capacities: vec![1; 3],
            slow_start: false,
        },
        &[TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }],
    );
    println!(
        "\nWithout slow start the shuffle waits for the last map: makespan {:.1} s",
        late.makespan()
    );
}
