//! Capacity planning with the analytic model — the use case the paper's
//! introduction motivates ("critical decision making in workload
//! management and resource capacity planning").
//!
//! Question: how many nodes does a 5 GB WordCount need to finish within a
//! deadline, and how much cheaper is answering that with the model than
//! with experiments?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use hadoop2_perf::model::{estimate_workload, Calibration, ModelOptions};
use hadoop2_perf::sim::workload::wordcount_5gb;
use hadoop2_perf::sim::SimConfig;
use std::time::Instant;

fn main() {
    let deadline = 200.0; // seconds
    println!("Find the smallest cluster that runs 5 GB WordCount in ≤ {deadline} s\n");
    println!("| nodes | fork/join est (s) | tripathi est (s) | meets deadline |");
    println!("|---|---|---|---|");

    let t0 = Instant::now();
    let mut chosen = None;
    for nodes in 2..=16usize {
        let cfg = SimConfig::paper_testbed(nodes);
        let job = wordcount_5gb(nodes as u32);
        let est = estimate_workload(
            &cfg,
            &job,
            1,
            &ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        let ok = est.fork_join <= deadline;
        println!(
            "| {nodes} | {:.1} | {:.1} | {} |",
            est.fork_join,
            est.tripathi,
            if ok { "yes" } else { "no" }
        );
        if ok && chosen.is_none() {
            chosen = Some(nodes);
        }
    }
    let model_cost = t0.elapsed();

    match chosen {
        Some(n) => println!("\n→ provision {n} nodes (fork/join estimate)."),
        None => println!("\n→ no cluster size up to 16 nodes meets the deadline."),
    }
    println!(
        "Answering with the analytic model took {:.2?} for 15 cluster sizes — \
         the paper's point about estimates 'at significantly lower cost than \
         simulation and experimental evaluation'.",
        model_cost
    );
}
