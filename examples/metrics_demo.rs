//! The observability registry end to end: run one scenario sweep
//! through both backends, then read what the process recorded — cache
//! and runner counters, solver and simulator totals, span timings —
//! as the same Prometheus text exposition `mr2-serve` answers on
//! `GET /metrics`.
//!
//! ```text
//! cargo run --release --example metrics_demo
//! ```

use hadoop2_perf::obs;
use hadoop2_perf::scenario::{run_scenario, Backends, ResultCache, RunnerConfig, Scenario};

fn main() {
    // Instrumented code can also mint its own metrics: handles are
    // cheap to clone and safe to call from any thread.
    let demo_runs = obs::counter("demo_sweeps_total", "Sweeps run by this example.");

    // One sweep through both backends touches every instrumented
    // layer: the runner (points, cache), the analytic solver
    // (fixed-point iterations), and the simulator (events, heap depth).
    let scenario = Scenario::new("metrics-demo")
        .axis_nodes([2usize, 4])
        .axis_input_bytes([256 * 1024 * 1024])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: false,
            simulator: Some(1),
        });
    let cache = ResultCache::new();
    {
        let _sweep_timer = obs::span("demo.sweep"); // RAII: records on drop
        let sweep = run_scenario(&scenario, &cache, &RunnerConfig::default());
        println!("swept {} points (cold)", sweep.points.len());
    }
    demo_runs.inc();

    // The identical question again costs nothing — the result cache
    // answers, and the hit counters show it.
    {
        let _sweep_timer = obs::span("demo.sweep");
        run_scenario(&scenario, &cache, &RunnerConfig::default());
        println!("swept again (warm: served from the result cache)");
    }
    demo_runs.inc();

    // The whole subsystem is one flag: with recording disabled, every
    // counter add and histogram observe is a single relaxed load.
    obs::set_enabled(false);
    demo_runs.inc(); // not recorded
    obs::set_enabled(true);

    println!("\n--- registry exposition (what /metrics serves) ---\n");
    print!("{}", obs::render());
}
