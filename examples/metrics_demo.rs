//! The observability registry end to end: run one scenario sweep
//! through both backends, then read what the process recorded — cache
//! and runner counters, solver and simulator totals, span timings —
//! as the same Prometheus text exposition `mr2-serve` answers on
//! `GET /metrics`. A second act drives a traced mixed workload and
//! prints what `GET /v1/trace/recent` and `GET /debug/profile` would
//! serve: the slowest retained span tree and the profiler's call tree.
//!
//! ```text
//! cargo run --release --example metrics_demo
//! ```

use std::time::Duration;

use hadoop2_perf::obs;
use hadoop2_perf::scenario::{run_scenario, Backends, ResultCache, RunnerConfig, Scenario};

fn main() {
    // Instrumented code can also mint its own metrics: handles are
    // cheap to clone and safe to call from any thread.
    let demo_runs = obs::counter("demo_sweeps_total", "Sweeps run by this example.");

    // Trace every request (sample 1-in-1) and retain everything in the
    // slow ring (threshold zero), so the mixed workload below is fully
    // reconstructable afterwards.
    obs::configure_tracing(1, Duration::ZERO);
    obs::profile::reset();

    // One sweep through both backends touches every instrumented
    // layer: the runner (points, cache), the analytic solver
    // (fixed-point iterations), and the simulator (events, heap depth).
    let scenario = Scenario::new("metrics-demo")
        .axis_nodes([2usize, 4])
        .axis_input_bytes([256 * 1024 * 1024])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: false,
            simulator: Some(1),
        });
    let cache = ResultCache::new();
    {
        obs::begin_trace(obs::next_request_id(), "demo.sweep.cold");
        let _sweep_timer = obs::span("demo.sweep"); // RAII: records on drop
        let sweep = run_scenario(&scenario, &cache, &RunnerConfig::default());
        println!("swept {} points (cold)", sweep.points.len());
    }
    let _ = obs::finish_trace();
    demo_runs.inc();

    // The identical question again costs nothing — the result cache
    // answers, and the hit counters show it.
    {
        obs::begin_trace(obs::next_request_id(), "demo.sweep.warm");
        let _sweep_timer = obs::span("demo.sweep");
        run_scenario(&scenario, &cache, &RunnerConfig::default());
        println!("swept again (warm: served from the result cache)");
    }
    let _ = obs::finish_trace();
    demo_runs.inc();

    // The whole subsystem is one flag: with recording disabled, every
    // counter add and histogram observe is a single relaxed load.
    obs::set_enabled(false);
    demo_runs.inc(); // not recorded
    obs::set_enabled(true);

    // The continuous profiler folded every finished span into a call
    // tree keyed by span path — the same data `GET /debug/profile`
    // renders as collapsed flamegraph lines.
    println!("\n--- profiler call tree (what /debug/profile serves) ---\n");
    print_profile(&obs::profile::tree(), 0);

    // Both sweeps were traced and slower than the (zero) threshold, so
    // the tail-keep ring retained them; the slowest one reconstructs
    // the run as a span tree, like `GET /v1/trace/recent` does.
    if let Some(slowest) = obs::slowest_traces().into_iter().max_by_key(|t| t.wall) {
        println!(
            "--- slowest retained trace: {} (request {} — {:.1} ms) ---\n",
            slowest.label,
            slowest.request_id,
            slowest.wall.as_secs_f64() * 1e3,
        );
        for root in slowest.roots() {
            print_trace_span(&slowest, root, 0);
        }
        println!();
    }

    println!("--- registry exposition (what /metrics serves) ---\n");
    print!("{}", obs::render());
}

fn print_profile(forest: &[obs::profile::ProfileNode], depth: usize) {
    for node in forest {
        println!(
            "{:indent$}{}  self={:.2}ms total={:.2}ms count={}",
            "",
            node.name,
            node.self_time.as_secs_f64() * 1e3,
            node.total_time.as_secs_f64() * 1e3,
            node.count,
            indent = depth * 2,
        );
        print_profile(&node.children, depth + 1);
    }
    if depth == 0 {
        println!();
    }
}

fn print_trace_span(trace: &obs::Trace, span: &obs::TraceSpan, depth: usize) {
    println!(
        "{:indent$}{}  +{:.2}ms for {:.2}ms",
        "",
        span.name,
        span.start.as_secs_f64() * 1e3,
        span.duration.as_secs_f64() * 1e3,
        indent = depth * 2,
    );
    for child in trace.children(span.id) {
        print_trace_span(trace, child, depth + 1);
    }
}
