//! Scheduler comparison on the simulated cluster: the paper's model
//! assumes FIFO allocation across applications (single Capacity-scheduler
//! queue); many production clusters run fair sharing instead. This
//! example shows how strongly that choice shapes multi-job response times
//! — and why EXPERIMENTS.md flags it when comparing against the paper's
//! testbed numbers.
//!
//! ```text
//! cargo run --release --example fair_vs_fifo
//! ```

use hadoop2_perf::sim::workload::wordcount;
use hadoop2_perf::sim::{ClusterSim, SchedulerPolicy, SimConfig, GB};

fn run(policy: SchedulerPolicy, n_jobs: usize) -> Vec<f64> {
    let mut sim = ClusterSim::new(SimConfig {
        scheduler: policy,
        ..SimConfig::paper_testbed(4)
    });
    for _ in 0..n_jobs {
        sim.add_job(wordcount(2 * GB, 4), 0.0);
    }
    sim.run().iter().map(|r| r.response_time()).collect()
}

fn main() {
    println!("Four identical 2 GB WordCount jobs, submitted together, 4 nodes:\n");
    for policy in [SchedulerPolicy::CapacityFifo, SchedulerPolicy::Fair] {
        let times = run(policy, 4);
        let avg = times.iter().sum::<f64>() / times.len() as f64;
        let fmt: Vec<String> = times.iter().map(|t| format!("{t:.0}s")).collect();
        println!("  {policy:?}:");
        println!("    per-job response: {}", fmt.join(", "));
        println!("    average: {avg:.1}s\n");
    }
    println!(
        "FIFO finishes early jobs fast and starves late ones; fair sharing\n\
         equalizes completion at the cost of every job's response time.\n\
         The paper's model (and its timeline construction) encodes the FIFO\n\
         behaviour — applying it to a fair-share cluster would underestimate\n\
         early jobs and overestimate the spread."
    );
}
