//! Inverse capacity planning: instead of asking "how fast is this
//! cluster?", ask "what is the cheapest cluster that is fast *enough*?"
//!
//! Jobs arrive as an open Poisson stream (λ jobs/second) and the SLO
//! bounds the steady-state mean response time. The planner bisects over
//! the node count — response time is monotone in cluster size — so a
//! 64-wide search range costs at most ~8 model solves, every one of
//! them cached and shared with later plans.
//!
//! ```text
//! cargo run --release --example slo_plan
//! ```

use hadoop2_perf::scenario::{
    plan, JobKind, MixEntry, PlanRequest, ResultCache, SearchSpace, SloMetric, SloSpec, WorkloadMix,
};
use hadoop2_perf::sim::GB;

fn main() {
    // The workload: a mixed analytics stream, arriving at one job
    // every 20 seconds.
    let mix = WorkloadMix::new([
        MixEntry::new(JobKind::WordCount, 2 * GB, 1),
        MixEntry::new(JobKind::Grep, GB, 1),
    ]);
    let arrival_rate = 0.05; // jobs per second
    let cache = ResultCache::new();

    println!("mix `{}` arriving at λ = {arrival_rate}/s", mix.name());
    println!("SLO: mean response ≤ threshold; search range 1–64 nodes\n");
    println!("| threshold (s) | feasible | nodes | predicted (s) | probes |");
    println!("|---|---|---|---|---|");
    for threshold in [2000.0, 165.0, 110.0, 80.0, 55.0] {
        let mut req = PlanRequest::new(
            mix.clone(),
            arrival_rate,
            SloSpec {
                metric: SloMetric::Response,
                threshold,
            },
        );
        req.search = SearchSpace {
            min_nodes: 1,
            max_nodes: 64,
        };
        let out = plan(&req, &cache).expect("valid request");
        println!(
            "| {threshold:.0} | {} | {} | {:.1} | {} |",
            if out.feasible { "yes" } else { "no" },
            out.nodes,
            out.predicted,
            out.probes.len(),
        );
    }

    // The knee: how hard can the chosen cluster be driven before
    // queueing delay takes over?
    let mut req = PlanRequest::new(
        mix,
        arrival_rate,
        SloSpec {
            metric: SloMetric::Response,
            threshold: 110.0,
        },
    );
    req.search = SearchSpace {
        min_nodes: 1,
        max_nodes: 64,
    };
    let out = plan(&req, &cache).expect("valid request");
    if let Some(open) = out.point.open {
        println!(
            "\nchosen {}-node cluster: bottleneck utilization {:.1}% at λ = {arrival_rate}/s,",
            out.nodes,
            100.0 * open.bottleneck_utilization
        );
        println!(
            "safe up to the knee at λ ≈ {:.4}/s; saturation at λ ≈ {:.4}/s",
            open.knee_rate, open.saturation_rate
        );
    }
    let stats = cache.stats();
    println!(
        "\ncache: {} solves total, {} answered from cache across the {} plans",
        stats.misses,
        stats.hits,
        6 // five thresholds above + the repeat at 110
    );
}
