//! Workload mix study on the simulator: WordCount (CPU + shuffle heavy),
//! TeraSort (I/O heavy) and Grep (map heavy) behave very differently on
//! the same cluster — the reason performance models need per-class
//! service demands rather than a single "job cost".
//!
//! ```text
//! cargo run --release --example workload_mix
//! ```

use hadoop2_perf::sim::profile::profile_job;
use hadoop2_perf::sim::workload::{grep, terasort, wordcount};
use hadoop2_perf::sim::{SimConfig, GB};

fn main() {
    let cfg = SimConfig::paper_testbed(4);
    println!("1 GB jobs on 4 nodes — per-class profile extracted from one run:\n");
    println!("| job | response (s) | map mean (s) | shuffle-sort mean (s) | merge mean (s) |");
    println!("|---|---|---|---|---|");
    for spec in [wordcount(GB, 4), terasort(GB, 4), grep(GB)] {
        let (p, r) = profile_job(&spec, &cfg);
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            spec.name,
            r.response_time(),
            p.map.mean,
            p.shuffle_sort.mean,
            p.merge.mean,
        );
    }
    println!(
        "\nGrep's reduce side is negligible; TeraSort's merge dominates; \
         WordCount splits between map CPU and the shuffle — three different \
         bottlenecks on identical hardware."
    );
}
