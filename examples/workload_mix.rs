//! Heterogeneous workload mix through the scenario engine: WordCount
//! (CPU + shuffle heavy), TeraSort (I/O heavy) and Grep (map heavy)
//! share one 4-node cluster *concurrently* — one `WorkloadMix` point —
//! and the multi-class model is compared per class against the
//! simulator.
//!
//! ```text
//! cargo run --release --example workload_mix
//! ```

use hadoop2_perf::scenario::{
    class_error_bands, run_scenario, Backends, JobKind, MixEntry, ResultCache, RunnerConfig,
    Scenario, WorkloadMix,
};
use hadoop2_perf::sim::GB;

fn main() {
    let mix = WorkloadMix::new([
        MixEntry::new(JobKind::WordCount, GB, 2),
        MixEntry::new(JobKind::TeraSort, GB, 1),
        MixEntry::new(JobKind::Grep, GB, 1),
    ]);
    println!("mix `{}` on 4 nodes — model vs simulator:\n", mix.name());
    let scenario = Scenario::new("workload-mix")
        .axis_mixes([mix])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(3),
        });
    let sweep = run_scenario(&scenario, &ResultCache::new(), &RunnerConfig::default());
    let p = &sweep.points[0];
    let model = p.model.as_ref().expect("analytic backend ran");
    let sim = p.sim.as_ref().expect("simulator backend ran");

    println!("| class | measured (s) | fork/join (s) | err |");
    println!("|---|---|---|---|");
    for (i, e) in p.point.mix.entries.iter().enumerate() {
        let measured = sim.per_class_median[i];
        let est = model.per_class[i].fork_join;
        println!(
            "| {}x {} | {measured:.1} | {est:.1} | {:+.1}% |",
            e.count,
            e.label(),
            hadoop2_perf::model::relative_error(est, measured) * 100.0,
        );
    }
    println!(
        "| aggregate | {:.1} | {:.1} | {:+.1}% |",
        sim.median_response,
        model.fork_join,
        hadoop2_perf::model::relative_error(model.fork_join, sim.median_response) * 100.0,
    );

    println!("\nper-class error bands (all four series):");
    for b in class_error_bands(&sweep) {
        println!(
            "  {:<18} {:<10} {}",
            b.class,
            b.estimator.name(),
            b.band.as_percent_range()
        );
    }
    println!(
        "\nGrep's reduce side is negligible; TeraSort's merge dominates; \
         WordCount splits between map CPU and the shuffle — three different \
         bottlenecks contending on identical hardware, and the multi-class \
         queueing model tracks each one separately."
    );
}
