//! Load harness for `mr2-serve`: N concurrent keep-alive connections
//! hammering `POST /v1/estimate` (cache-warmed, so the transport — not
//! the solver — is what's measured), plus one streaming `/v1/scenario`
//! sweep, reporting p50/p99 request latency, aggregate QPS, and the
//! peak `mr2_serve_open_connections` gauge.
//!
//! The point of the numbers: connections must be ≫ server threads. A
//! transport that spends one thread per connection serializes the
//! run 256/4-wide and the tail latency shows it; the readiness-based
//! event loop serves the same 256 sockets off four workers with a flat
//! tail. CI runs this with committed floors (see the env knobs below)
//! so the throughput claim stays a gated number, not prose.
//!
//! Environment knobs:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `MR2_LOAD_CONNS` | 256 | concurrent keep-alive client connections |
//! | `MR2_LOAD_REQS` | 20 | requests sent per connection |
//! | `MR2_LOAD_THREADS` | 4 | server worker threads |
//! | `MR2_LOAD_MIN_QPS` | — | fail below this aggregate QPS |
//! | `MR2_LOAD_MAX_P99_MS` | — | fail above this p99 (milliseconds) |
//! | `MR2_LOAD_MIN_CONNS` | — | fail if the peak open-connections gauge stays below |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use mr2_serve::{serve, ServeConfig};

const ESTIMATE_BODY: &str = r#"{"nodes":4,"input_bytes":268435456,"n_jobs":2}"#;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Send one request on an open connection as a single write (one TCP
/// segment: the harness measures the server, not client-side Nagle
/// stalls from fragmented writes).
fn send_request(conn: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: load\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("send request");
}

/// Read one `Content-Length`-framed response; returns (status, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One request over a fresh connection (scrapes and warm-up).
fn one_shot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    send_request(&mut conn, method, path, body);
    let mut reader = BufReader::new(conn);
    read_response(&mut reader)
}

/// Value of the first `/metrics` sample line starting with `series`.
fn metric_value(metrics: &str, series: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .unwrap_or(0.0)
}

/// Run the streaming sweep: a 3-point simulator scenario with
/// `"stream": true`, chunked NDJSON back. Returns
/// `(first_line_ms, total_ms, lines)`, or `None` when the server
/// answers non-200 (the pre-event-loop transport has no streaming).
fn streaming_probe(addr: SocketAddr) -> Option<(f64, f64, usize)> {
    let body = r#"{"name":"stream-probe","nodes":[2,3,4],"input_bytes":[268435456],
        "stream":true,"backends":{"analytic":true,"simulator":2}}"#;
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    let started = Instant::now();
    send_request(&mut conn, "POST", "/v1/scenario", body);
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    if !status_line.starts_with("HTTP/1.1 200") {
        return None;
    }
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if line.eq_ignore_ascii_case("transfer-encoding: chunked") {
            chunked = true;
        }
    }
    if !chunked {
        return None;
    }
    // Decode chunked NDJSON: each complete line is one point (or the
    // trailing summary).
    let mut text = String::new();
    let mut first_line_ms = None;
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            let mut crlf = String::new();
            reader.read_line(&mut crlf).ok();
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        reader.read_exact(&mut chunk).expect("chunk data");
        chunk.truncate(size);
        text.push_str(std::str::from_utf8(&chunk).expect("utf-8 chunk"));
        if first_line_ms.is_none() && text.contains('\n') {
            first_line_ms = Some(started.elapsed().as_secs_f64() * 1e3);
        }
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let lines = text.lines().filter(|l| !l.is_empty()).count();
    Some((first_line_ms.unwrap_or(total_ms), total_ms, lines))
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let conns = env_usize("MR2_LOAD_CONNS", 256);
    let reqs = env_usize("MR2_LOAD_REQS", 20);
    let threads = env_usize("MR2_LOAD_THREADS", 4);

    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        access_log: false,
        keep_alive_requests: reqs + 8,
        keep_alive_idle: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;

    // Warm the cache so the measured path is transport + cache hit +
    // encode, not the first model solve.
    let (status, body) = one_shot(addr, "POST", "/v1/estimate", ESTIMATE_BODY);
    assert_eq!(status, 200, "warm-up failed: {body}");
    assert!(body.contains("\"estimate\""), "warm-up reply shape: {body}");

    println!(
        "mr2-load: conns={conns} server_threads={threads} reqs_per_conn={reqs} total_reqs={}",
        conns * reqs
    );

    // The load phase: every client thread connects and immediately
    // drives its keep-alive connection closed-loop; a sampler thread
    // scrapes the open-connections gauge while the run is hot.
    let barrier = Barrier::new(conns + 1);
    let failures = AtomicU64::new(0);
    let peak_open = AtomicU64::new(0);
    let sampling = AtomicBool::new(true);
    let started = Instant::now();

    let (latencies, wall_s) = std::thread::scope(|s| {
        let mut clients = Vec::with_capacity(conns);
        for _ in 0..conns {
            clients.push(s.spawn(|| {
                let mut lat = Vec::with_capacity(reqs);
                // Connect *before* the barrier: all connections are
                // simultaneously open when the first request is sent,
                // so the gauge peak genuinely witnesses `conns`-way
                // concurrency rather than a staggered ramp.
                let conn = TcpStream::connect(addr).expect("connect");
                conn.set_nodelay(true).ok();
                let mut writer = conn.try_clone().expect("clone socket");
                let mut reader = BufReader::new(conn);
                barrier.wait();
                for _ in 0..reqs {
                    let t0 = Instant::now();
                    send_request(&mut writer, "POST", "/v1/estimate", ESTIMATE_BODY);
                    let (status, body) = read_response(&mut reader);
                    lat.push(t0.elapsed().as_micros() as u64);
                    if status != 200 || !body.contains("\"estimate\"") {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                lat
            }));
        }
        // Gauge sampler: the peak it sees is the concurrency evidence.
        let sampler = s.spawn(|| {
            while sampling.load(Ordering::Relaxed) {
                let (status, metrics) = one_shot(addr, "GET", "/metrics", "");
                if status == 200 {
                    let open = metric_value(&metrics, "mr2_serve_open_connections") as u64;
                    peak_open.fetch_max(open, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        barrier.wait();
        let run_start = Instant::now();
        let mut latencies: Vec<u64> = Vec::with_capacity(conns * reqs);
        for c in clients {
            latencies.extend(c.join().expect("client thread"));
        }
        let wall_s = run_start.elapsed().as_secs_f64();
        sampling.store(false, Ordering::Relaxed);
        sampler.join().expect("sampler thread");
        (latencies, wall_s)
    });

    let total = latencies.len();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 0.50);
    let p90 = percentile(&sorted, 0.90);
    let p99 = percentile(&sorted, 0.99);
    let max = sorted.last().copied().unwrap_or(0);
    let qps = total as f64 / wall_s;
    let failed = failures.load(Ordering::Relaxed);

    println!(
        "mr2-load: peak_open_connections={}",
        peak_open.load(Ordering::Relaxed)
    );
    println!("mr2-load: p50_us={p50} p90_us={p90} p99_us={p99} max_us={max}");
    println!(
        "mr2-load: qps={qps:.1} wall_ms={:.1} failed={failed}",
        wall_s * 1e3
    );

    // The streaming probe: chunked NDJSON, first point line before the
    // sweep completes.
    match streaming_probe(addr) {
        Some((first_ms, total_ms, lines)) => println!(
            "mr2-load: streaming first_line_ms={first_ms:.1} total_ms={total_ms:.1} lines={lines}"
        ),
        None => println!("mr2-load: streaming unsupported by this server"),
    }

    let _ = started; // run bookkeeping (kept for symmetry with wall_s)
    handle.shutdown();

    // Committed floors (CI sets these; local runs report only).
    let mut failed_gates = Vec::new();
    if failed > 0 {
        failed_gates.push(format!("{failed} requests failed"));
    }
    if let Some(min_qps) = env_f64("MR2_LOAD_MIN_QPS") {
        if qps < min_qps {
            failed_gates.push(format!("qps {qps:.1} below floor {min_qps}"));
        }
    }
    if let Some(max_p99_ms) = env_f64("MR2_LOAD_MAX_P99_MS") {
        let p99_ms = p99 as f64 / 1e3;
        if p99_ms > max_p99_ms {
            failed_gates.push(format!("p99 {p99_ms:.1}ms above ceiling {max_p99_ms}ms"));
        }
    }
    if let Some(min_conns) = env_f64("MR2_LOAD_MIN_CONNS") {
        if (peak_open.load(Ordering::Relaxed) as f64) < min_conns {
            failed_gates.push(format!(
                "peak open connections {} below floor {min_conns}",
                peak_open.load(Ordering::Relaxed)
            ));
        }
    }
    if failed_gates.is_empty() {
        println!("mr2-load: OK");
    } else {
        for g in &failed_gates {
            println!("mr2-load: FAIL {g}");
        }
        std::process::exit(1);
    }
}
