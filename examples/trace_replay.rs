//! Trace replay: parse a Hadoop job-history (Rumen-style JSON-lines)
//! trace and sweep cluster size with the *replayed* production mix —
//! every job arrives at its recorded submission offset instead of the
//! synthetic all-at-t=0 batch.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::path::Path;

use hadoop2_perf::scenario::{
    class_error_bands, run_scenario, Backends, JobTrace, ResultCache, RunnerConfig, Scenario,
};

fn main() {
    let path = Path::new("results/traces/sample_mix.jsonl");
    let trace = JobTrace::load(path).expect("committed sample trace parses");
    println!(
        "replaying `{}`: {} jobs over {:.0}s of recorded arrivals\n",
        path.display(),
        trace.len(),
        trace.span_ms() as f64 / 1000.0
    );
    for j in &trace.jobs {
        println!(
            "  t+{:>4.0}s  {:<22} {:>5} MB",
            j.submit_offset_ms as f64 / 1000.0,
            j.id,
            j.input_bytes / (1024 * 1024),
        );
    }

    // The trace becomes one workload mix whose entries carry the
    // recorded offsets; the cluster-size axis asks the what-if question
    // "how would this exact morning have gone on more nodes?".
    let scenario = Scenario::new("trace-replay")
        .axis_nodes([4usize, 6, 8])
        .axis_mixes([trace.to_mix()])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        });
    let sweep = run_scenario(&scenario, &ResultCache::new(), &RunnerConfig::default());

    println!("\n| nodes | mean response (s) |  model (s) | makespan meas/est (s) |");
    println!("|---|---|---|---|");
    for p in &sweep.points {
        println!(
            "| {} | {:>8.1} | {:>8.1} | {:>6.1} / {:>6.1} |",
            p.point.nodes,
            p.measured().unwrap(),
            p.estimate().unwrap(),
            p.measured_makespan().unwrap(),
            p.estimate_makespan().unwrap(),
        );
    }

    // Response time and makespan genuinely diverge under trace
    // arrivals: the mix occupies the cluster from the first submission
    // to well past the last one, while each job's own response stays
    // short.
    let p = &sweep.points[0];
    println!(
        "\nat 4 nodes the replay spans {:.0}s of makespan but the mean job \
         responds in {:.0}s — staggered arrivals keep the cluster busy \
         without the all-at-once contention a batch submission would show.",
        p.measured_makespan().unwrap(),
        p.measured().unwrap(),
    );

    println!("\nper-class error bands (model vs simulator, all points):");
    for b in class_error_bands(&sweep) {
        println!(
            "  {:<18} {:<10} {}",
            b.class,
            b.estimator.name(),
            b.band.as_percent_range()
        );
    }
}
