//! The capacity-planning service end to end in one process: start
//! `mr2-serve` on an ephemeral port, ask it what a cluster change does
//! to response time, read the shared-cache counters, and shut down.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use hadoop2_perf::serve::{serve, Json, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reply = String::new();
    conn.read_to_string(&mut reply).expect("receive");
    reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(reply)
}

fn main() {
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("bind");
    println!("serving on http://{}\n", handle.addr);

    println!(
        "GET /healthz\n  {}\n",
        request(handle.addr, "GET", "/healthz", "")
    );

    // One online what-if: "we run 4 concurrent 1 GB WordCounts — what
    // does growing the cluster from 4 to 8 nodes buy us?"
    let scenario = r#"{"name":"grow-the-cluster","nodes":[4,8],"n_jobs":[4],
        "input_bytes":[1073741824]}"#;
    let body = request(handle.addr, "POST", "/v1/scenario", scenario);
    let v = Json::parse(&body).expect("valid JSON");
    println!(
        "POST /v1/scenario ({} points):",
        v.get("num_points").unwrap().render()
    );
    for p in v.get("points").unwrap().as_arr().unwrap() {
        println!(
            "  {} nodes → fork/join estimate {:.1}s",
            p.get("nodes").unwrap().render(),
            p.get("estimate").unwrap().as_f64().unwrap()
        );
    }

    // The same question again costs nothing: the shared cache answers.
    request(handle.addr, "POST", "/v1/scenario", scenario);
    println!(
        "\nGET /v1/cache/stats (after asking twice)\n  {}",
        request(handle.addr, "GET", "/v1/cache/stats", "")
    );

    handle.shutdown();
    println!("\nserver drained and stopped.");
}
