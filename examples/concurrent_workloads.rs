//! Concurrent-workload analysis through the scenario engine's mix
//! axis: how does the average job response time degrade as more
//! identical WordCount jobs share the cluster (the paper's Figure 14
//! scenario), and what happens when a Grep interloper joins the queue?
//!
//! ```text
//! cargo run --release --example concurrent_workloads
//! ```

use hadoop2_perf::scenario::{
    run_scenario, Backends, JobKind, MixEntry, ResultCache, RunnerConfig, Scenario, WorkloadMix,
};
use hadoop2_perf::sim::GB;

fn main() {
    // The multiprogramming ramp (1–4 identical jobs) as four 1-entry
    // mixes, plus a heterogeneous point: 3 WordCounts joined by a Grep.
    let mut mixes: Vec<WorkloadMix> = (1..=4)
        .map(|n| WorkloadMix::single(JobKind::WordCount, 2 * GB, n))
        .collect();
    mixes.push(WorkloadMix::new([
        MixEntry::new(JobKind::WordCount, 2 * GB, 3),
        MixEntry::new(JobKind::Grep, 2 * GB, 1),
    ]));

    let scenario = Scenario::new("concurrent-workloads")
        .axis_mixes(mixes)
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(3),
        });
    let cache = ResultCache::new();
    let sweep = run_scenario(&scenario, &cache, &RunnerConfig::default());

    println!("2 GB jobs on 4 nodes (FIFO queue):\n");
    println!("| mix | measured avg (s) | fork/join (s) | err | per-class estimates |");
    println!("|---|---|---|---|---|");
    for p in &sweep.points {
        let measured = p.measured().expect("simulator ran");
        let est = p.estimate().expect("model ran");
        let per_class: Vec<String> = p
            .model
            .as_ref()
            .expect("model ran")
            .per_class
            .iter()
            .zip(&p.point.mix.entries)
            .map(|(c, e)| format!("{} {:.0}", e.label(), c.fork_join))
            .collect();
        println!(
            "| {} | {measured:.1} | {est:.1} | {:+.1}% | {} |",
            p.point.mix.name(),
            hadoop2_perf::model::relative_error(est, measured) * 100.0,
            per_class.join(", ")
        );
    }
    println!(
        "\nLater jobs in the FIFO queue wait for earlier ones, so the average \
         grows superlinearly with N — and in the mixed point the cheap Grep \
         class rides the same contention the model resolves per class."
    );
}
