//! Concurrent-workload analysis: how does the average job response time
//! degrade as more identical WordCount jobs share the cluster (the
//! paper's Figure 14 scenario), and does the model track the simulator?
//!
//! ```text
//! cargo run --release --example concurrent_workloads
//! ```

use hadoop2_perf::model::{estimate_workload, relative_error, Calibration, ModelOptions};
use hadoop2_perf::sim::profile::{measure_workload, profile_job};
use hadoop2_perf::sim::workload::wordcount;
use hadoop2_perf::sim::{SimConfig, GB};

fn main() {
    let cfg = SimConfig::paper_testbed(4);
    let job = wordcount(2 * GB, 4);
    let (profile, _) = profile_job(&job, &cfg);

    println!("2 GB WordCount on 4 nodes, 1–4 concurrent jobs (FIFO queue):\n");
    println!("| jobs | measured avg (s) | fork/join (s) | err | per-job estimates |");
    println!("|---|---|---|---|---|");
    for n_jobs in 1..=4usize {
        let measured = measure_workload(&job, &cfg, n_jobs, 5).median_response;
        let est = estimate_workload(
            &cfg,
            &job,
            n_jobs,
            &ModelOptions::default(),
            &Calibration::default(),
            Some(&profile),
        );
        let per_job: Vec<String> = est
            .fork_join_detail
            .per_job_response
            .iter()
            .map(|r| format!("{r:.0}"))
            .collect();
        println!(
            "| {n_jobs} | {measured:.1} | {:.1} | {:+.1}% | {} |",
            est.fork_join,
            relative_error(est.fork_join, measured) * 100.0,
            per_job.join(", ")
        );
    }
    println!(
        "\nLater jobs in the FIFO queue wait for earlier ones — the model's \
         per-job estimates expose the queueing structure that the average hides.\n\
         (The 1-job point shows the model's wave-quantization pessimism: 16 maps \
         on 15 containers forces a second model wave that the simulator pipelines \
         into straggler slack; multi-job points amortize it.)"
    );
}
