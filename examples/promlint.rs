//! A promtool-style lint gate for Prometheus text exposition.
//!
//! Pipe a scrape in and the process exits non-zero if the exposition
//! violates format invariants (HELP/TYPE ordering, family contiguity,
//! duplicate series, histogram bucket monotonicity, `+Inf`/`_count`
//! agreement, …) — the same checks `mr2_obs::lint_exposition` applies
//! in the registry's own tests, wired for CI against a live server:
//!
//! ```text
//! curl -s http://127.0.0.1:8080/metrics | cargo run --release --example promlint
//! ```
//!
//! With no piped input it lints this process's own registry rendering
//! (after exercising a counter, a gauge, and a histogram), so running
//! it bare is a self-check that always has something to chew on.

use std::io::Read;

fn main() {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("stdin is not UTF-8");

    let source = if text.is_empty() {
        hadoop2_perf::obs::counter("promlint_selfcheck_total", "Self-check runs.").inc();
        hadoop2_perf::obs::gauge("promlint_selfcheck_gauge", "Self-check gauge.").set(1.0);
        hadoop2_perf::obs::histogram(
            "promlint_selfcheck_seconds",
            "Self-check histogram.",
            hadoop2_perf::obs::Buckets::TIME,
        )
        .observe(0.012);
        text = hadoop2_perf::obs::render();
        "own registry"
    } else {
        "stdin"
    };

    let errors = hadoop2_perf::obs::lint_exposition(&text);
    if errors.is_empty() {
        let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        println!("promlint: {source} clean ({families} families)");
    } else {
        for e in &errors {
            eprintln!("promlint: {e}");
        }
        eprintln!("promlint: {} problem(s) in {source}", errors.len());
        std::process::exit(1);
    }
}
