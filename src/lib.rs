//! # hadoop2-perf — MapReduce performance models for Hadoop 2.x
//!
//! Facade crate re-exporting the whole workspace: the analytic model
//! ([`model`]), the discrete-event cluster simulator ([`sim`]) and its
//! substrates ([`yarn`], [`hdfs`], [`des`]), the queueing-theory
//! toolkit ([`queueing`]), the declarative what-if scenario engine
//! ([`scenario`]), and the process-wide metrics registry ([`obs`])
//! every layer reports into.
//!
//! ```
//! use hadoop2_perf::model::{estimate_workload, Calibration, ModelOptions};
//! use hadoop2_perf::sim::{workload::wordcount_1gb, SimConfig};
//!
//! let cfg = SimConfig::paper_testbed(4);
//! let job = wordcount_1gb(4);
//! let est = estimate_workload(
//!     &cfg, &job, 1, &ModelOptions::default(), &Calibration::default(), None,
//! );
//! assert!(est.fork_join > 0.0 && est.tripathi > est.fork_join * 0.5);
//! ```
//!
//! Workloads are heterogeneous mixes end to end — the queueing network
//! is multi-class, so one point can run different jobs concurrently and
//! report per-class response times. Arrival schedules are a workload
//! dimension of their own: mix entries carry submit offsets (trace
//! replay via [`scenario::trace`]) and the `axis_arrivals` axis layers
//! batch/staggered/trace schedules on top:
//!
//! ```
//! use hadoop2_perf::scenario::{
//!     run_scenario, Backends, JobKind, MixEntry, ResultCache, RunnerConfig, Scenario,
//!     WorkloadMix,
//! };
//!
//! let mix = WorkloadMix::new([
//!     MixEntry::new(JobKind::WordCount, 256 * 1024 * 1024, 2),
//!     MixEntry::new(JobKind::Grep, 256 * 1024 * 1024, 1),
//! ]);
//! let scenario = Scenario::new("doc-mix")
//!     .axis_nodes([2usize])
//!     .axis_mixes([mix])
//!     .with_backends(Backends::analytic_only());
//! let sweep = run_scenario(&scenario, &ResultCache::new(), &RunnerConfig::default());
//! let per_class = &sweep.points[0].model.as_ref().unwrap().per_class;
//! assert_eq!(per_class.len(), 2);
//! assert!(per_class.iter().all(|c| c.fork_join > 0.0));
//! ```

/// The paper's analytic model (crate `mr2-model`).
pub use mr2_model as model;

/// The declarative what-if scenario engine (crate `mr2-scenario`).
pub use mr2_scenario as scenario;

/// The online capacity-planning service (crate `mr2-serve`).
pub use mr2_serve as serve;

/// The MapReduce-on-YARN execution simulator (crate `mapreduce-sim`).
pub use mapreduce_sim as sim;

/// The YARN resource-management substrate (crate `yarn-sim`).
pub use yarn_sim as yarn;

/// The HDFS substrate (crate `hdfs-sim`).
pub use hdfs_sim as hdfs;

/// The discrete-event simulation engine (crate `simcore`).
pub use simcore as des;

/// Closed queueing networks, MVA, phase-type distributions.
pub use queueing;

/// Counters, gauges, histograms, and span timers (crate `mr2-obs`).
pub use mr2_obs as obs;
