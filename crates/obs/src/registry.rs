//! The process-wide metric registry: name → family (help, kind) →
//! labelled series → shared atomic cell, plus the Prometheus text
//! renderer.
//!
//! Registration is idempotent — asking for an existing (name, labels)
//! key returns a handle onto the *same* cell — so call sites simply
//! describe the metric where they use it and cache the handle in a
//! `OnceLock` static. The lock is a read-mostly `RwLock`: obtaining an
//! already-registered handle takes the read lock only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, RwLock};

use crate::metrics::{Buckets, Counter, Gauge, Histogram, HistogramCore};

/// What a metric family measures — determines the exposition `# TYPE`
/// line and the render shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labelled series' cell.
#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// All series of one metric name.
#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Sorted label pairs → cell; the `BTreeMap` gives the exposition a
    /// deterministic series order.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// A named collection of metric families. Most code uses the
/// process-wide instance via [`crate::registry`] and the free
/// functions; a private registry is occasionally useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
}

/// Canonical (sorted, owned) form of a label set.
fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the series (name, labels), verifying the family's
    /// kind. Panics on a kind conflict — that is a programming error
    /// (two call sites disagreeing about what `name` measures), not a
    /// runtime condition.
    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let key = label_key(labels);
        if let Some(family) = self.families.read().unwrap().get(name) {
            assert_eq!(
                family.kind, kind,
                "metric `{name}` already registered as a {:?}",
                family.kind
            );
            if let Some(cell) = family.series.get(&key) {
                return cell.clone();
            }
        }
        let mut families = self.families.write().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric `{name}` already registered as a {:?}",
            family.kind
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Get or register a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let cell = self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        });
        match cell {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get or register a histogram series. The bucket spec applies on
    /// first registration; later callers receive the existing ladder.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        buckets: Buckets,
    ) -> Histogram {
        let cell = self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(HistogramCore::new(buckets)))
        });
        match cell {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Render every family in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, one line per series, histograms as
    /// cumulative `_bucket{le=…}` plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.read().unwrap();
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            c.load(std::sync::atomic::Ordering::Relaxed)
                        );
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            fmt_f64(f64::from_bits(g.load(std::sync::atomic::Ordering::Relaxed)))
                        );
                    }
                    Series::Histogram(core) => {
                        let snap = Histogram(Arc::clone(core)).snapshot();
                        let mut cumulative = 0u64;
                        for (i, upper) in snap.uppers.iter().enumerate() {
                            cumulative += snap.counts[i];
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&fmt_f64(*upper)))
                            );
                        }
                        cumulative += snap.counts[snap.uppers.len()];
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, Some("+Inf"))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            fmt_f64(snap.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {cumulative}",
                            render_labels(labels, None)
                        );
                    }
                }
            }
        }
        out
    }
}

/// Format a label set (optionally with a trailing `le`) as
/// `{k="v",…}`, or nothing when empty.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape a help string per the exposition format.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Exposition-format float: integral values render without a mantissa
/// tail, everything else through Rust's shortest round-trip `Display`.
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("reg_total", "doc", &[("path", "/x")]);
        let b = r.counter("reg_total", "doc", &[("path", "/x")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2, "one shared cell behind both handles");
        // Label order does not split the series.
        let c = r.counter("reg_multi", "doc", &[("a", "1"), ("b", "2")]);
        let d = r.counter("reg_multi", "doc", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.value(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("reg_conflict", "doc", &[]);
        r.gauge("reg_conflict", "doc", &[]);
    }

    #[test]
    fn render_produces_valid_exposition_lines() {
        let r = Registry::new();
        r.counter(
            "app_requests_total",
            "Requests served.",
            &[("path", "/healthz")],
        )
        .add(3);
        r.gauge("app_queue_depth", "Sockets awaiting a worker.", &[])
            .set(2.0);
        let h = r.histogram(
            "app_latency_seconds",
            "Request latency.",
            &[],
            Buckets {
                start: 0.5,
                factor: 2.0,
                count: 2,
            },
        );
        h.observe(0.4);
        h.observe(0.6);
        h.observe(9.0);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        // Families render in name order with HELP/TYPE headers.
        assert_eq!(lines[0], "# HELP app_latency_seconds Request latency.");
        assert_eq!(lines[1], "# TYPE app_latency_seconds histogram");
        assert!(text.contains("app_latency_seconds_bucket{le=\"0.5\"} 1"));
        assert!(
            text.contains("app_latency_seconds_bucket{le=\"1\"} 2"),
            "{text}"
        );
        assert!(text.contains("app_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("app_latency_seconds_sum 10"));
        assert!(text.contains("app_latency_seconds_count 3"));
        assert!(text.contains("app_queue_depth 2"));
        assert!(text.contains("app_requests_total{path=\"/healthz\"} 3"));
        // Every non-comment line is `name{labels} value` with a finite
        // numeric value — the shape a Prometheus scraper accepts.
        for line in lines.iter().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("value separated by a space");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in line: {line}"
            );
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("reg_escape_total", "doc", &[("q", "a\"b\\c\nd")])
            .inc();
        assert!(r.render().contains("q=\"a\\\"b\\\\c\\nd\""));
    }
}
