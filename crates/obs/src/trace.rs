//! Bounded retention for finished traces.
//!
//! Every [`finish_trace`](crate::finish_trace) hands its [`Trace`] to
//! [`record_trace`], which applies the retention policy:
//!
//! * **Head sampling** — every `1-in-N`th finished trace enters the
//!   ring (N = `sample_one_in`, default 16), so steady traffic always
//!   leaves a representative residue.
//! * **Tail-keep** — any trace whose wall time meets the slow
//!   threshold (default 250 ms) is *always* retained, regardless of
//!   sampling. Slow outliers are the traces an operator actually
//!   wants.
//! * **Slowest list** — independently of the ring, the top
//!   [`SLOWEST_KEEP`] slowest traces ever finished (since start) are
//!   kept for `GET /v1/trace/recent`'s `slowest` section.
//!
//! The ring is lock-free on the writer's claim: a single `fetch_add`
//! picks the slot, and only that slot's mutex is touched to publish
//! the `Arc`. Readers lock one slot at a time; they never block
//! writers of other slots and never allocate while holding a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::span::Trace;

/// Slots in the process-wide ring.
const RING_CAPACITY: usize = 256;
/// Traces kept on the all-time slowest list.
pub const SLOWEST_KEEP: usize = 8;

/// A bounded ring of recently retained traces. Writers claim a slot
/// with one atomic `fetch_add` and overwrite whatever is there —
/// wraparound evicts the oldest entry by construction.
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    head: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl TraceRing {
    pub fn with_capacity(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "ring needs at least one slot");
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of traces ever pushed (wraparound does not decrement).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    pub fn push(&self, trace: Arc<Trace>) {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *lock(slot) = Some(trace);
    }

    /// The most recently pushed traces, newest first, up to `limit`.
    /// Concurrent pushes may overwrite a slot between the head read
    /// and the slot read; the result is always *some* consistent
    /// recent window, never a torn trace.
    pub fn recent(&self, limit: usize) -> Vec<Arc<Trace>> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity(limit.min(cap as usize));
        let mut seq = head;
        while seq > lo && out.len() < limit {
            seq -= 1;
            if let Some(t) = lock(&self.slots[(seq % cap) as usize]).as_ref() {
                out.push(t.clone());
            }
        }
        out
    }

    /// Find a retained trace by request id (newest match wins).
    pub fn find(&self, request_id: u64) -> Option<Arc<Trace>> {
        self.recent(self.slots.len())
            .into_iter()
            .find(|t| t.request_id == request_id)
    }
}

/// `1-in-N` head-sampling rate (N ≥ 1; 1 retains everything).
static SAMPLE_ONE_IN: AtomicU64 = AtomicU64::new(16);
/// Tail-keep threshold in nanoseconds.
static SLOW_NS: AtomicU64 = AtomicU64::new(250_000_000);
/// Finished-trace counter driving the head sampler.
static FINISHED: AtomicU64 = AtomicU64::new(0);

/// Set the retention knobs: keep every `sample_one_in`th trace, and
/// always keep traces at least `slow_threshold` long.
pub fn configure_tracing(sample_one_in: u64, slow_threshold: Duration) {
    SAMPLE_ONE_IN.store(sample_one_in.max(1), Ordering::Relaxed);
    SLOW_NS.store(
        slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
}

/// Current `(sample_one_in, slow_threshold)` retention knobs.
pub fn tracing_config() -> (u64, Duration) {
    (
        SAMPLE_ONE_IN.load(Ordering::Relaxed),
        Duration::from_nanos(SLOW_NS.load(Ordering::Relaxed)),
    )
}

fn ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::with_capacity(RING_CAPACITY))
}

fn slowest_list() -> &'static Mutex<Vec<Arc<Trace>>> {
    static SLOWEST: OnceLock<Mutex<Vec<Arc<Trace>>>> = OnceLock::new();
    SLOWEST.get_or_init(|| Mutex::new(Vec::new()))
}

fn retention_counters() -> &'static (crate::Counter, crate::Counter) {
    static COUNTERS: OnceLock<(crate::Counter, crate::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            crate::counter("mr2_traces_finished_total", "Request traces finished."),
            crate::counter(
                "mr2_traces_retained_total",
                "Request traces retained in the recent-trace ring (sampled or slow).",
            ),
        )
    })
}

/// Apply the retention policy to a finished trace. Returns the `Arc`
/// whether or not the ring kept it (the caller may still attach it to
/// a debug reply).
pub(crate) fn record_trace(trace: Trace) -> Arc<Trace> {
    let trace = Arc::new(trace);
    let (finished, retained) = retention_counters();
    finished.inc();
    let n = FINISHED.fetch_add(1, Ordering::Relaxed);
    let sampled = n.is_multiple_of(SAMPLE_ONE_IN.load(Ordering::Relaxed).max(1));
    let slow = trace.wall >= Duration::from_nanos(SLOW_NS.load(Ordering::Relaxed));
    if sampled || slow {
        ring().push(trace.clone());
        retained.inc();
    }
    let mut slowest = lock(slowest_list());
    let belongs =
        slowest.len() < SLOWEST_KEEP || slowest.last().map(|t| trace.wall > t.wall).unwrap_or(true);
    if belongs {
        slowest.push(trace.clone());
        slowest.sort_by_key(|t| std::cmp::Reverse(t.wall));
        slowest.truncate(SLOWEST_KEEP);
    }
    trace
}

/// The most recently retained traces, newest first.
pub fn recent_traces(limit: usize) -> Vec<Arc<Trace>> {
    ring().recent(limit)
}

/// The slowest traces finished since process start, slowest first.
pub fn slowest_traces() -> Vec<Arc<Trace>> {
    lock(slowest_list()).clone()
}

/// Look a retained trace up by request id — the recent ring first,
/// then the slowest list.
pub fn find_trace(request_id: u64) -> Option<Arc<Trace>> {
    ring().find(request_id).or_else(|| {
        lock(slowest_list())
            .iter()
            .find(|t| t.request_id == request_id)
            .cloned()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(request_id: u64, wall: Duration) -> Arc<Trace> {
        Arc::new(Trace {
            request_id,
            label: "test",
            wall,
            spans: Vec::new(),
            dropped: 0,
        })
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_capacity_traces() {
        let ring = TraceRing::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        for id in 0..10 {
            ring.push(trace(id, Duration::from_millis(id)));
        }
        assert_eq!(ring.pushed(), 10);
        let recent = ring.recent(100);
        let ids: Vec<u64> = recent.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6], "newest first, oldest evicted");
        let top2: Vec<u64> = ring.recent(2).iter().map(|t| t.request_id).collect();
        assert_eq!(top2, vec![9, 8], "limit honoured");
        assert!(ring.find(9).is_some());
        assert!(ring.find(3).is_none(), "overwritten by wraparound");
    }

    #[test]
    fn ring_survives_concurrent_pushers_and_readers() {
        let ring = std::sync::Arc::new(TraceRing::with_capacity(8));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        ring.push(trace(w * 1000 + i, Duration::from_micros(i)));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let recent = ring.recent(8);
                        assert!(recent.len() <= 8);
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 1000);
        assert_eq!(ring.recent(100).len(), 8, "every slot occupied");
    }

    #[test]
    fn retention_samples_heads_and_always_keeps_slow_traces() {
        let _guard = crate::tests_support::flag_lock();
        let (before_sample, before_slow) = tracing_config();
        configure_tracing(1_000_000, Duration::from_millis(50));
        // Align the sampler so none of our fast traces hits the 1-in-N
        // head sample during this test.
        FINISHED.store(1, Ordering::Relaxed);
        let fast = record_trace(Trace {
            request_id: 900_001,
            label: "fast",
            wall: Duration::from_millis(1),
            spans: Vec::new(),
            dropped: 0,
        });
        assert!(
            ring().find(fast.request_id).is_none(),
            "fast unsampled trace not retained in the ring"
        );
        let slow = record_trace(Trace {
            request_id: 900_002,
            label: "slow",
            wall: Duration::from_millis(80),
            spans: Vec::new(),
            dropped: 0,
        });
        assert!(
            find_trace(slow.request_id).is_some(),
            "slow trace tail-kept despite sampling"
        );
        assert!(
            slowest_traces().iter().any(|t| t.request_id == 900_002),
            "slow trace on the slowest list"
        );
        configure_tracing(before_sample, before_slow);
    }
}
