//! The metric cells: atomic counters, gauges, and log-bucketed
//! histograms. Handles are `Arc`s onto the shared cell, so cloning is
//! cheap and recording is lock-free; the registry hands the same cell
//! back for the same (name, labels) key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Add `v` to an `f64` stored by bit pattern in an atomic cell.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonic event counter.
#[derive(Debug, Clone)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once (batch the hot loop: accumulate
    /// locally, add once).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrite the value — only for mirroring an *externally
    /// maintained* monotonic counter (e.g. cache statistics kept by
    /// another subsystem) into the registry at scrape time. Never mix
    /// with [`Counter::add`] on the same series.
    pub fn mirror(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (queue depth,
/// uptime, ratios). Stored as an `f64` bit pattern.
#[derive(Debug, Clone)]
pub struct Gauge(pub(crate) Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        atomic_f64_add(&self.0, v);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A geometric bucket ladder: upper bounds `start · factorⁱ` for
/// `i = 0..count`, plus the implicit `+Inf` overflow bucket. Log
/// bucketing keeps the estimate's *relative* error bounded — a
/// quantile read back from the ladder is within one factor of the
/// exact value — with a handful of atomics per histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Buckets {
    /// Upper bound of the first bucket.
    pub start: f64,
    /// Ratio between consecutive bounds (> 1).
    pub factor: f64,
    /// Number of finite buckets.
    pub count: usize,
}

impl Buckets {
    /// Latency ladder: 1 µs to ~33 s in factor-2 steps — spans a cache
    /// hit to well past the service's request timeout.
    pub const TIME: Buckets = Buckets {
        start: 1e-6,
        factor: 2.0,
        count: 26,
    };

    /// Cardinality ladder: 1 to ~524k in factor-2 steps (event-heap
    /// depths, queue lengths).
    pub const DEPTH: Buckets = Buckets {
        start: 1.0,
        factor: 2.0,
        count: 20,
    };

    /// Upper bound of finite bucket `i`.
    fn upper(&self, i: usize) -> f64 {
        self.start * self.factor.powi(i as i32)
    }

    fn validate(&self) {
        assert!(
            self.start > 0.0 && self.factor > 1.0 && self.count > 0,
            "buckets need start > 0, factor > 1, count > 0: {self:?}"
        );
    }
}

/// The shared cell behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: Buckets,
    /// One cell per finite bucket plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Σ observed values, as an `f64` bit pattern.
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(buckets: Buckets) -> HistogramCore {
        buckets.validate();
        HistogramCore {
            buckets,
            counts: (0..=buckets.count).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of observed values.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let core = &*self.0;
        // First finite bucket whose upper bound covers `v`; a linear
        // scan over ≤ ~26 bounds beats recomputing logarithms.
        let idx = (0..core.buckets.count)
            .find(|&i| v <= core.buckets.upper(i))
            .unwrap_or(core.buckets.count);
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&core.sum, v);
    }

    /// A point-in-time copy of every cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        HistogramSnapshot {
            uppers: (0..core.buckets.count)
                .map(|i| core.buckets.upper(i))
                .collect(),
            counts: core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(core.sum.load(Ordering::Relaxed)),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Estimate the `q`-quantile (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// A consistent-enough copy of a histogram's cells (each cell is read
/// once; concurrent recording may skew totals by in-flight
/// observations, never corrupt them).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub uppers: Vec<f64>,
    /// Per-bucket counts; `counts.len() == uppers.len() + 1`, the last
    /// entry being the `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Σ observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`) as the upper bound of
    /// the bucket holding the ⌈q·n⌉-th smallest observation — an
    /// overestimate by at most one bucket factor, which is the
    /// guarantee log bucketing buys. `None` when empty. Observations
    /// past the last finite bound report that bound (the ladder can't
    /// say more).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.uppers[i.min(self.uppers.len() - 1)]);
            }
        }
        Some(self.uppers[self.uppers.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::flag_lock;

    #[test]
    fn counter_concurrent_increments_sum_exactly() {
        let _guard = flag_lock();
        // N threads × M increments must lose nothing: the registry
        // promise that makes counters trustworthy under a thread pool.
        let c = crate::counter("metrics_test_exact_total", "doc");
        let before = c.value();
        let (threads, per_thread) = (8, 10_000);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value() - before, threads * per_thread);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = crate::gauge("metrics_test_gauge", "doc");
        g.set(5.0);
        g.inc();
        g.dec();
        g.add(-2.5);
        assert_eq!(g.value(), 2.5);
    }

    #[test]
    fn histogram_quantiles_within_one_bucket_of_exact() {
        let _guard = flag_lock();
        // A known deterministic distribution: 1..=1000 (uniform). The
        // ladder's estimate must bracket the exact quantile from above
        // by at most one factor.
        let h = Histogram(Arc::new(HistogramCore::new(Buckets {
            start: 1.0,
            factor: 2.0,
            count: 12,
        })));
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &values {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = values[((q * 1000.0_f64).ceil() as usize).clamp(1, 1000) - 1];
            let est = h.quantile(q).unwrap();
            assert!(
                est >= exact && est <= exact * 2.0,
                "q={q}: estimate {est} not within one ×2 bucket of exact {exact}"
            );
        }

        // A second, geometric distribution exercises the small buckets.
        let h2 = Histogram(Arc::new(HistogramCore::new(Buckets::TIME)));
        let geo: Vec<f64> = (0..10).map(|i| 1e-5 * 3f64.powi(i)).collect();
        for &v in &geo {
            h2.observe(v);
        }
        for q in [0.3, 0.7, 1.0] {
            let exact = geo[((q * geo.len() as f64).ceil() as usize).clamp(1, geo.len()) - 1];
            let est = h2.quantile(q).unwrap();
            assert!(
                est >= exact && est <= exact * 2.0,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_overflow_reports_last_finite_bound() {
        let h = Histogram(Arc::new(HistogramCore::new(Buckets {
            start: 1.0,
            factor: 2.0,
            count: 3,
        })));
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        h.observe(1e9); // beyond the ladder
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![0, 0, 0, 1]);
        assert_eq!(h.quantile(1.0), Some(4.0), "clamped to the last bound");
        assert_eq!(snap.sum, 1e9, "sum keeps the exact value");
    }

    #[test]
    fn disabled_registry_drops_observations() {
        let _guard = flag_lock();
        let c = crate::counter("metrics_test_disabled_total", "doc");
        let h = crate::histogram("metrics_test_disabled_hist", "doc", Buckets::TIME);
        let before = (c.value(), h.count());
        crate::set_enabled(false);
        c.inc();
        h.observe(1.0);
        crate::set_enabled(true);
        assert_eq!((c.value(), h.count()), before, "nothing recorded while off");
        c.inc();
        assert_eq!(c.value(), before.0 + 1, "recording resumes");
    }
}
