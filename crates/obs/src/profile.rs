//! Span-based continuous profiler.
//!
//! Every [`Span`](crate::span) that closes folds its **self time**
//! (elapsed minus time spent in child spans) into a process-wide call
//! tree keyed by *span path* — the chain of open span names on the
//! thread, e.g. `serve.request → point.model → model.solve`. Because
//! the spans are already there for metrics and traces, this is an
//! always-on profiler with no sampling thread and no signal handlers:
//! attribution is exact for instrumented code, and un-instrumented
//! time shows up as the parent's self time.
//!
//! Hot-path cost is one chained FNV hash at span start and, at span
//! close, a thread-local `HashMap` probe plus three relaxed
//! `fetch_add`s. The global registry's `RwLock` is touched only the
//! first time a thread sees a path (or after [`reset`]).
//!
//! Readers get either a sorted flat snapshot ([`entries`]), a merged
//! tree ([`tree`]), or collapsed-stack flamegraph lines
//! ([`render_collapsed`]) in the `a;b;c <self_microseconds>` format
//! that `flamegraph.pl` and speedscope consume directly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// FNV-1a offset basis — the path hash of the empty stack.
pub(crate) const ROOT_HASH: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extend a path hash with one more span name: FNV-1a over the name's
/// bytes plus a separator, seeded with the parent's hash.
pub(crate) fn chain(parent: u64, name: &str) -> u64 {
    let mut h = parent;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0xff;
    h.wrapping_mul(FNV_PRIME)
}

struct Node {
    path: Vec<&'static str>,
    self_ns: AtomicU64,
    total_ns: AtomicU64,
    count: AtomicU64,
}

fn nodes() -> &'static RwLock<HashMap<u64, Arc<Node>>> {
    static NODES: OnceLock<RwLock<HashMap<u64, Arc<Node>>>> = OnceLock::new();
    NODES.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Bumped by [`reset`]; per-thread caches flush when stale.
static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CACHE: RefCell<(u64, HashMap<u64, Arc<Node>>)> =
        RefCell::new((0, HashMap::new()));
}

/// Fold one closed span into the call tree. `path` is only invoked on
/// the first sighting of `path_hash` (per process, or per thread after
/// a reset), to name the node.
pub(crate) fn record(
    path_hash: u64,
    self_ns: u64,
    total_ns: u64,
    path: impl FnOnce() -> Vec<&'static str>,
) {
    let epoch = EPOCH.load(Ordering::Relaxed);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.0 != epoch {
            cache.1.clear();
            cache.0 = epoch;
        }
        let node = cache.1.entry(path_hash).or_insert_with(|| {
            if let Some(n) = nodes().read().unwrap().get(&path_hash) {
                return n.clone();
            }
            nodes()
                .write()
                .unwrap()
                .entry(path_hash)
                .or_insert_with(|| {
                    Arc::new(Node {
                        path: path(),
                        self_ns: AtomicU64::new(0),
                        total_ns: AtomicU64::new(0),
                        count: AtomicU64::new(0),
                    })
                })
                .clone()
        });
        node.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        node.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        node.count.fetch_add(1, Ordering::Relaxed);
    });
}

/// Clear the call tree and invalidate every thread's cached handles.
/// Spans racing the reset may land a final sample on an orphaned node;
/// a profiler tolerates losing a sample at the reset boundary.
pub fn reset() {
    nodes().write().unwrap().clear();
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// One call-tree node in a flat snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Span names from root to leaf.
    pub path: Vec<&'static str>,
    /// Time attributed to this node itself (children excluded).
    pub self_time: Duration,
    /// Total elapsed time of spans closing at this path.
    pub total_time: Duration,
    /// Number of spans that closed at this path.
    pub count: u64,
}

/// Snapshot the call tree as a flat list, sorted by path.
pub fn entries() -> Vec<ProfileEntry> {
    let mut out: Vec<ProfileEntry> = nodes()
        .read()
        .unwrap()
        .values()
        .map(|n| ProfileEntry {
            path: n.path.clone(),
            self_time: Duration::from_nanos(n.self_ns.load(Ordering::Relaxed)),
            total_time: Duration::from_nanos(n.total_ns.load(Ordering::Relaxed)),
            count: n.count.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// Collapsed-stack flamegraph lines: one `a;b;c <self_microseconds>`
/// line per call-tree node, sorted by path. Pipe to `flamegraph.pl`.
pub fn render_collapsed() -> String {
    let mut out = String::new();
    for e in entries() {
        out.push_str(&e.path.join(";"));
        out.push(' ');
        out.push_str(&e.self_time.as_micros().to_string());
        out.push('\n');
    }
    out
}

/// A merged call-tree node; see [`tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    pub self_time: Duration,
    pub total_time: Duration,
    pub count: u64,
    pub children: Vec<ProfileNode>,
}

/// Snapshot the call tree as a forest of merged nodes (children sorted
/// by name). An interior node a thread entered via different parents
/// appears once under each parent, exactly as recorded.
pub fn tree() -> Vec<ProfileNode> {
    fn insert(forest: &mut Vec<ProfileNode>, e: &ProfileEntry, depth: usize) {
        let name = e.path[depth];
        let pos = match forest.iter().position(|n| n.name == name) {
            Some(p) => p,
            None => {
                forest.push(ProfileNode {
                    name: name.to_string(),
                    self_time: Duration::ZERO,
                    total_time: Duration::ZERO,
                    count: 0,
                    children: Vec::new(),
                });
                forest.len() - 1
            }
        };
        let node = &mut forest[pos];
        if depth + 1 == e.path.len() {
            node.self_time += e.self_time;
            node.total_time += e.total_time;
            node.count += e.count;
        } else {
            insert(&mut node.children, e, depth + 1);
        }
    }
    let mut forest = Vec::new();
    for e in entries() {
        if !e.path.is_empty() {
            insert(&mut forest, &e, 0);
        }
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let until = std::time::Instant::now() + Duration::from_micros(us);
        while std::time::Instant::now() < until {
            std::hint::spin_loop();
        }
    }

    fn entry(path: &[&str]) -> Option<ProfileEntry> {
        entries().into_iter().find(|e| e.path == path)
    }

    #[test]
    fn chained_hashes_distinguish_paths() {
        let a = chain(ROOT_HASH, "a");
        let b = chain(ROOT_HASH, "b");
        assert_ne!(a, b);
        assert_ne!(chain(a, "x"), chain(b, "x"), "same leaf, different parent");
        assert_ne!(chain(a, "bc"), chain(chain(a, "b"), "c"), "no gluing");
    }

    #[test]
    fn self_time_excludes_children_and_paths_nest() {
        let _guard = crate::tests_support::flag_lock();
        {
            let _outer = crate::span("profile_test.outer");
            spin(100);
            {
                let _inner = crate::span("profile_test.inner");
                spin(400);
            }
        }
        let outer = entry(&["profile_test.outer"]).expect("outer path recorded");
        let inner =
            entry(&["profile_test.outer", "profile_test.inner"]).expect("nested path recorded");
        assert!(outer.count >= 1);
        assert!(inner.count >= 1);
        assert!(
            outer.total_time >= outer.self_time + inner.total_time,
            "outer total covers its self time plus the child ({:?} vs {:?} + {:?})",
            outer.total_time,
            outer.self_time,
            inner.total_time
        );
        assert!(
            inner.total_time >= Duration::from_micros(300),
            "inner accumulated its spin"
        );
        let collapsed = render_collapsed();
        assert!(collapsed.contains("profile_test.outer;profile_test.inner "));
        let forest = tree();
        let outer_node = forest
            .iter()
            .find(|n| n.name == "profile_test.outer")
            .expect("outer in tree");
        assert!(outer_node
            .children
            .iter()
            .any(|c| c.name == "profile_test.inner"));
    }

    #[test]
    fn reset_clears_and_recording_resumes() {
        let _guard = crate::tests_support::flag_lock();
        {
            let _s = crate::span("profile_test.reset_me");
        }
        assert!(entry(&["profile_test.reset_me"]).is_some());
        reset();
        assert!(
            entry(&["profile_test.reset_me"]).is_none(),
            "reset cleared the tree"
        );
        // The thread-local cached handle is stale now; a new span must
        // re-register rather than record into the orphaned node.
        {
            let _s = crate::span("profile_test.reset_me");
        }
        let e = entry(&["profile_test.reset_me"]).expect("re-registered after reset");
        assert_eq!(e.count, 1);
    }
}
