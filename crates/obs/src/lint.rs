//! A promtool-style linter for the Prometheus text exposition format
//! (version 0.0.4), used by CI against a live `/metrics` scrape and by
//! the registry's own tests.
//!
//! Checks, per family: `# HELP` at most once and before `# TYPE`,
//! `# TYPE` at most once and before any sample, a known metric kind,
//! and contiguity (once another family's samples start, the name may
//! not reappear). Per sample: valid metric and label names, properly
//! escaped label values (`\\`, `\"`, `\n` only), a parseable value,
//! no duplicate series, non-negative counters. Per histogram: an
//! `+Inf` bucket whose value equals `_count`, and cumulative bucket
//! counts that never decrease as `le` increases.

use std::collections::{BTreeMap, HashMap, HashSet};

#[derive(Default)]
struct Family {
    kind: Option<String>,
    help_seen: bool,
    samples_seen: bool,
    closed: bool,
}

struct HistogramSeries {
    /// `(le, cumulative count)` in exposition order.
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
}

/// Lint `text` as Prometheus exposition; returns one message per
/// problem (empty = clean).
pub fn lint_exposition(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut families: HashMap<String, Family> = HashMap::new();
    let mut current_family: Option<String> = None;
    let mut seen_series: HashSet<String> = HashSet::new();
    // (family, labels-without-le) → bucket/count bookkeeping.
    let mut histograms: BTreeMap<(String, String), HistogramSeries> = BTreeMap::new();

    if !text.is_empty() && !text.ends_with('\n') {
        errors.push("exposition must end with a newline".to_string());
    }

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut err = |msg: String| errors.push(format!("line {lineno}: {msg}"));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let (keyword, rest) = match comment.split_once(' ') {
                Some((k, r)) if k == "HELP" || k == "TYPE" => (k, r),
                // Arbitrary comments are legal.
                _ => continue,
            };
            let (name, payload) = match rest.split_once(' ') {
                Some((n, p)) => (n, p),
                None => (rest, ""),
            };
            if !valid_metric_name(name) {
                err(format!("invalid metric name `{name}` in # {keyword}"));
                continue;
            }
            let fam = families.entry(name.to_string()).or_default();
            match keyword {
                "HELP" => {
                    if fam.help_seen {
                        err(format!("duplicate # HELP for `{name}`"));
                    }
                    if fam.kind.is_some() {
                        err(format!("# HELP for `{name}` must precede its # TYPE"));
                    }
                    if fam.samples_seen {
                        err(format!("# HELP for `{name}` after its samples"));
                    }
                    fam.help_seen = true;
                }
                "TYPE" => {
                    if fam.kind.is_some() {
                        err(format!("duplicate # TYPE for `{name}`"));
                    }
                    if fam.samples_seen {
                        err(format!("# TYPE for `{name}` after its samples"));
                    }
                    let kind = payload.trim();
                    match kind {
                        "counter" | "gauge" | "histogram" | "summary" | "untyped" => {
                            fam.kind = Some(kind.to_string());
                        }
                        _ => err(format!("unknown metric type `{kind}` for `{name}`")),
                    }
                }
                _ => unreachable!(),
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(msg) => {
                err(msg);
                continue;
            }
        };
        let family_name = family_of(&sample.name, &families);
        let fam = families.entry(family_name.clone()).or_default();
        if fam.kind.is_none() {
            err(format!(
                "sample `{}` before any # TYPE for `{family_name}`",
                sample.name
            ));
            fam.kind = Some("untyped".to_string());
        }
        if fam.closed {
            err(format!(
                "family `{family_name}` is interleaved: its samples resumed after another family's"
            ));
        }
        fam.samples_seen = true;
        if current_family.as_deref() != Some(family_name.as_str()) {
            if let Some(prev) = current_family.take() {
                if let Some(prev_fam) = families.get_mut(&prev) {
                    prev_fam.closed = true;
                }
            }
            current_family = Some(family_name.clone());
        }
        let series_key = format!("{}{{{}}}", sample.name, sample.sorted_labels());
        if !seen_series.insert(series_key.clone()) {
            err(format!("duplicate series `{series_key}`"));
        }
        let kind = families
            .get(&family_name)
            .and_then(|f| f.kind.clone())
            .unwrap_or_default();
        if kind == "counter" && sample.value < 0.0 {
            err(format!("counter `{}` has negative value", sample.name));
        }
        if kind == "histogram" {
            let labels_no_le = sample.labels_without("le");
            let series = histograms
                .entry((family_name.clone(), labels_no_le))
                .or_insert(HistogramSeries {
                    buckets: Vec::new(),
                    count: None,
                });
            if sample.name.ends_with("_bucket") {
                match sample.label("le") {
                    Some(le_text) => match parse_value(le_text) {
                        Ok(le) => series.buckets.push((le, sample.value)),
                        Err(_) => err(format!("unparseable le=\"{le_text}\"")),
                    },
                    None => err(format!("`{}` sample without an le label", sample.name)),
                }
            } else if sample.name.ends_with("_count") {
                series.count = Some(sample.value);
            }
        }
    }

    for ((family, labels), series) in &histograms {
        let at = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        let mut prev: Option<(f64, f64)> = None;
        for &(le, count) in &series.buckets {
            if let Some((prev_le, prev_count)) = prev {
                if le <= prev_le {
                    errors.push(format!("histogram `{at}`: le values not increasing"));
                }
                if count < prev_count {
                    errors.push(format!(
                        "histogram `{at}`: cumulative bucket counts decrease at le={le}"
                    ));
                }
            }
            prev = Some((le, count));
        }
        match series.buckets.last() {
            Some(&(le, top)) if le.is_infinite() && le > 0.0 => {
                if let Some(count) = series.count {
                    if (count - top).abs() > f64::EPSILON * count.abs().max(1.0) {
                        errors.push(format!(
                            "histogram `{at}`: +Inf bucket ({top}) disagrees with _count ({count})"
                        ));
                    }
                }
            }
            Some(_) => errors.push(format!("histogram `{at}`: missing +Inf bucket")),
            None => {
                if series.count.is_some() {
                    errors.push(format!("histogram `{at}`: has _count but no buckets"));
                }
            }
        }
    }

    errors
}

struct Sample {
    name: String,
    /// `(name, unescaped value)` in exposition order.
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn sorted_labels(&self) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(n, v)| format!("{n}={v:?}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    }

    fn labels_without(&self, skip: &str) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(n, _)| n != skip)
            .map(|(n, v)| format!("{n}={v:?}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    }
}

/// The family a sample belongs to: histogram component suffixes map
/// back to the base name when the base is a registered histogram.
fn family_of(sample_name: &str, families: &HashMap<String, Family>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            let is_histo = families
                .get(base)
                .and_then(|f| f.kind.as_deref())
                .map(|k| k == "histogram" || k == "summary")
                .unwrap_or(false);
            if is_histo {
                return base.to_string();
            }
        }
    }
    sample_name.to_string()
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value `{other}`")),
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(pos) => (&line[..pos], &line[pos..]),
        None => return Err(format!("sample `{line}` has no value")),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name `{name_part}`"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(label_text) = rest.strip_prefix('{') {
        // `}` needs no escape inside quoted values, so locate the
        // closing brace quote-aware rather than with a naive find.
        let (body, after) = split_label_body(label_text)?;
        parse_labels(body, &mut labels)?;
        after
            .strip_prefix(' ')
            .ok_or_else(|| format!("missing space after labels in `{line}`"))?
    } else {
        rest.strip_prefix(' ')
            .ok_or_else(|| format!("missing space before value in `{line}`"))?
    };
    let mut fields = rest.split_whitespace();
    let value_text = fields
        .next()
        .ok_or_else(|| format!("sample `{name_part}` has no value"))?;
    let value = parse_value(value_text)?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("unparseable timestamp `{ts}`"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage after sample `{name_part}`"));
    }
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

/// Split `k="v",…}` at the quote-aware closing brace; returns
/// `(label body, text after the brace)`.
fn split_label_body(text: &str) -> Result<(&str, &str), String> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Ok((&text[..i], &text[i + 1..])),
            _ => {}
        }
    }
    Err("unclosed label braces".to_string())
}

fn parse_labels(body: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{body}`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name `{name}`"));
        }
        let after_eq = &rest[eq + 1..];
        let quoted = after_eq
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{name}` value not quoted"))?;
        let (value, after) = take_quoted(quoted, name)?;
        out.push((name.to_string(), value));
        rest = match after.strip_prefix(',') {
            Some(r) => r,
            None if after.is_empty() => break,
            None => return Err(format!("expected `,` between labels in `{body}`")),
        };
    }
    Ok(())
}

/// Consume an escaped label value up to its closing quote; validates
/// that only `\\`, `\"`, and `\n` escapes appear.
fn take_quoted<'a>(text: &'a str, label: &str) -> Result<(String, &'a str), String> {
    let mut value = String::new();
    let mut chars = text.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                Some((_, other)) => {
                    return Err(format!("invalid escape `\\{other}` in label `{label}`"))
                }
                None => return Err(format!("dangling escape in label `{label}`")),
            },
            _ => value.push(c),
        }
    }
    Err(format!("unterminated value for label `{label}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<String> {
        lint_exposition(text)
    }

    #[test]
    fn the_registrys_own_exposition_is_clean() {
        let _guard = crate::tests_support::flag_lock();
        crate::counter("lint_test_total", "doc").inc();
        crate::gauge("lint_test_gauge", "doc").set(1.5);
        crate::histogram("lint_test_hist", "doc", crate::Buckets::TIME).observe(0.004);
        crate::counter_with("lint_test_labeled_total", "doc", &[("path", "a\\b\"c\nd")]).inc();
        let text = crate::render();
        let errors = lint(&text);
        assert!(
            errors.is_empty(),
            "live exposition should lint clean: {errors:?}"
        );
    }

    #[test]
    fn orderings_are_enforced() {
        let errs = lint("a_total 1\n# TYPE a_total counter\n");
        assert!(errs.iter().any(|e| e.contains("before any # TYPE")));
        assert!(errs.iter().any(|e| e.contains("after its samples")));
        let errs = lint("# TYPE b_total counter\n# HELP b_total doc\nb_total 1\n");
        assert!(errs.iter().any(|e| e.contains("must precede its # TYPE")));
        let errs = lint(
            "# TYPE c_total counter\nc_total 1\n# TYPE d_total counter\nd_total 1\nc_total{x=\"y\"} 2\n",
        );
        assert!(errs.iter().any(|e| e.contains("interleaved")));
    }

    #[test]
    fn duplicate_series_and_bad_values_are_caught() {
        let errs = lint(
            "# TYPE e_total counter\ne_total{a=\"1\",b=\"2\"} 1\ne_total{b=\"2\",a=\"1\"} 2\n",
        );
        assert!(errs.iter().any(|e| e.contains("duplicate series")));
        let errs = lint("# TYPE f_total counter\nf_total nope\n");
        assert!(errs.iter().any(|e| e.contains("unparseable value")));
        let errs = lint("# TYPE g_total counter\ng_total -3\n");
        assert!(errs.iter().any(|e| e.contains("negative")));
        let errs = lint("# TYPE h_total counter\nh_total{bad-name=\"x\"} 1\n");
        assert!(errs.iter().any(|e| e.contains("invalid label name")));
        let errs = lint("# TYPE i_total counter\ni_total{a=\"x\\q\"} 1\n");
        assert!(errs.iter().any(|e| e.contains("invalid escape")));
    }

    #[test]
    fn histogram_invariants_are_checked() {
        let good = "# TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 1\n\
                    h_bucket{le=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 4\n\
                    h_sum 2.5\n\
                    h_count 4\n";
        assert!(lint(good).is_empty(), "{:?}", lint(good));
        let non_cumulative = "# TYPE h histogram\n\
                              h_bucket{le=\"0.1\"} 5\n\
                              h_bucket{le=\"1\"} 3\n\
                              h_bucket{le=\"+Inf\"} 5\n\
                              h_count 5\n";
        assert!(lint(non_cumulative)
            .iter()
            .any(|e| e.contains("counts decrease")));
        let no_inf = "# TYPE h histogram\n\
                      h_bucket{le=\"0.1\"} 1\n\
                      h_count 1\n";
        assert!(lint(no_inf).iter().any(|e| e.contains("missing +Inf")));
        let mismatched = "# TYPE h histogram\n\
                          h_bucket{le=\"+Inf\"} 4\n\
                          h_count 9\n";
        assert!(lint(mismatched)
            .iter()
            .any(|e| e.contains("disagrees with _count")));
    }

    #[test]
    fn missing_trailing_newline_is_flagged() {
        let errs = lint("# TYPE j_total counter\nj_total 1");
        assert!(errs.iter().any(|e| e.contains("end with a newline")));
    }
}
