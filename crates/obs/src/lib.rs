//! # mr2-obs — the workspace's observability substrate
//!
//! A process-wide [`Registry`] of named metrics — monotonic [`Counter`]s,
//! [`Gauge`]s, and log-bucketed [`Histogram`]s — plus RAII [`span`]
//! timers and a per-request trace context, with zero dependencies
//! (`std` only; the build environment has no crates.io access).
//!
//! The paper decomposes MapReduce response time into measurable phases;
//! this crate gives the *serving system* the same treatment the models
//! give the *workload*: every layer (HTTP front end, scenario runner,
//! MVA/fork-join solver, event-driven simulator) records into one
//! registry that `GET /metrics` renders in Prometheus text exposition
//! format.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-free hot path.** Recording an observation is a handful of
//!    relaxed atomic operations on an `Arc`-shared cell — no locks, no
//!    allocation. The registry's `RwLock` is touched only to *obtain* a
//!    handle; call sites cache handles in `OnceLock` statics.
//! 2. **Cheap when off.** [`set_enabled`]`(false)` turns every
//!    observation into one relaxed load and a branch, so instrumented
//!    hot loops stay inside the bench suite's regression gate.
//! 3. **Snapshot-able.** Rendering never blocks recorders: it takes the
//!    registry read lock and reads each atomic once.
//!
//! ```
//! use mr2_obs as obs;
//!
//! let solves = obs::counter("doc_solves_total", "Model solves performed.");
//! {
//!     let _timer = obs::span("doc.solve"); // records mr2_span_seconds{span="doc.solve"}
//!     solves.inc();
//! }
//! assert!(solves.value() >= 1);
//! assert!(obs::render().contains("doc_solves_total"));
//! ```
//!
//! ## Traces
//!
//! A trace is a thread-local request context: [`begin_trace`] installs
//! it, every [`span`] that closes on that thread while it is active
//! appends one `(id, parent, name, start, duration)` entry — the ids
//! come from a per-thread span stack, so the entries form a real tree —
//! and [`end_trace`] returns it. Root spans are sequential, so their
//! durations can never sum past the request's wall time — the
//! invariant a `"debug"` reply's breakdown relies on.
//! [`finish_trace`] additionally hands the trace to the retention
//! layer: a bounded lock-free ring with 1-in-N head sampling plus
//! tail-keep for traces over a slow threshold ([`configure_tracing`]),
//! and an all-time slowest list. Worker threads spawned during a
//! request do not inherit the context — a trace reports what *this*
//! thread did.
//!
//! ## Profile
//!
//! Independently of traces, every closed span folds its self time into
//! an always-on call-tree profiler keyed by span path; see
//! [`profile`], [`profile::render_collapsed`] for flamegraph-ready
//! collapsed stacks, and `GET /debug/profile` in `mr2-serve`.

mod metrics;
mod registry;
mod span;

pub mod lint;
pub mod profile;
pub mod trace;

pub use lint::lint_exposition;
pub use metrics::{Buckets, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricKind, Registry};
pub use span::{
    begin_trace, end_trace, finish_trace, observe_span, trace_active, Span, Trace, TraceSpan,
};
pub use trace::{
    configure_tracing, find_trace, recent_traces, slowest_traces, tracing_config, TraceRing,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// The process-wide registry every helper below records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether observations are being recorded (default: yes).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable recording. Handles stay valid either
/// way; while disabled, every observation is a relaxed load and a
/// branch (the benchmark suite's "≈0 overhead" configuration).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Get or register the unlabelled counter `name` in the process
/// registry. Panics if `name` is already registered as another kind.
pub fn counter(name: &'static str, help: &'static str) -> Counter {
    registry().counter(name, help, &[])
}

/// Get or register a labelled counter series.
pub fn counter_with(name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
    registry().counter(name, help, labels)
}

/// Get or register the unlabelled gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Gauge {
    registry().gauge(name, help, &[])
}

/// Get or register a labelled gauge series.
pub fn gauge_with(name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
    registry().gauge(name, help, labels)
}

/// Get or register the unlabelled histogram `name` with `buckets`.
pub fn histogram(name: &'static str, help: &'static str, buckets: Buckets) -> Histogram {
    registry().histogram(name, help, &[], buckets)
}

/// Get or register a labelled histogram series.
pub fn histogram_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&str, &str)],
    buckets: Buckets,
) -> Histogram {
    registry().histogram(name, help, labels, buckets)
}

/// Start an RAII span timer named `name`. On drop it records its
/// elapsed seconds into `mr2_span_seconds{span=name}`, folds its self
/// time into the call-tree profiler, and, when a trace is active on
/// this thread, appends itself (with span and parent ids from the
/// per-thread stack) to the trace's span tree.
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Render every registered metric in Prometheus text exposition format
/// (content type `text/plain; version=0.0.4`).
pub fn render() -> String {
    registry().render()
}

/// Process-wide request-id source (access logs and trace contexts).
pub fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Serializes tests that toggle [`set_enabled`] against tests that
/// assert exact observation counts (unit tests share one process-wide
/// registry and flag).
#[cfg(test)]
pub(crate) mod tests_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    pub(crate) fn flag_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    /// N writer threads hammer counters and histograms while M reader
    /// threads render the exposition: every render must be a
    /// well-formed snapshot (no torn families — verified by the
    /// exposition linter), and the final counts must be exact.
    #[test]
    fn concurrent_scrape_and_record_stay_consistent() {
        let _guard = tests_support::flag_lock();
        const WRITERS: usize = 4;
        const READERS: usize = 2;
        const OPS: u64 = 5_000;
        let c = counter("lib_test_concurrent_total", "doc");
        let h = histogram("lib_test_concurrent_hist", "doc", Buckets::TIME);
        let (c0, h0) = (c.value(), h.count());
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let (c, h) = (c.clone(), h.clone());
                scope.spawn(move || {
                    for i in 0..OPS {
                        c.inc();
                        h.observe((w as f64 + 1.0) * 1e-6 * (i % 7 + 1) as f64);
                    }
                });
            }
            for _ in 0..READERS {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let text = render();
                        let errors = lint_exposition(&text);
                        assert!(
                            errors.is_empty(),
                            "mid-write render must lint clean: {errors:?}"
                        );
                        assert!(text.contains("lib_test_concurrent_total"));
                    }
                });
            }
        });
        assert_eq!(c.value(), c0 + WRITERS as u64 * OPS, "no lost increments");
        assert_eq!(h.count(), h0 + WRITERS as u64 * OPS, "no lost observations");
    }

    #[test]
    fn helpers_register_into_the_shared_registry() {
        counter("lib_test_total", "doc").add(3);
        gauge("lib_test_gauge", "doc").set(2.5);
        histogram("lib_test_hist", "doc", Buckets::TIME).observe(0.01);
        let text = render();
        for needle in [
            "# TYPE lib_test_total counter",
            "# TYPE lib_test_gauge gauge",
            "# TYPE lib_test_hist histogram",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
