//! RAII span timers and the thread-local trace context.
//!
//! Every [`Span`](crate::span) records its elapsed seconds into the
//! `mr2_span_seconds{span=…}` histogram family. When a trace is active
//! on the thread ([`begin_trace`]), *top-level* spans additionally
//! append `(name, start offset, duration)` to the trace; nested spans
//! record into their histograms only. That depth-0 rule keeps a
//! trace's spans strictly sequential, so their durations sum to at
//! most the traced request's wall time — the invariant a `"debug"`
//! reply's breakdown relies on.
//!
//! The context is deliberately **not** propagated to spawned threads:
//! a trace is "what this request's thread did, in order", and parallel
//! workers report through the registry instead.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::metrics::{Buckets, Histogram};

/// Histogram family every span records into.
const SPAN_FAMILY: &str = "mr2_span_seconds";
const SPAN_HELP: &str = "Elapsed seconds of named code spans.";

/// Cache of span-name → histogram handle, so starting a span on a hot
/// path costs one `RwLock` read after the first use of each name.
fn span_histogram(name: &'static str) -> Histogram {
    static CACHE: OnceLock<RwLock<HashMap<&'static str, Histogram>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(h) = cache.read().unwrap().get(name) {
        return h.clone();
    }
    let h = crate::histogram_with(SPAN_FAMILY, SPAN_HELP, &[("span", name)], Buckets::TIME);
    cache.write().unwrap().entry(name).or_insert(h).clone()
}

/// One completed span inside a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name (as passed to [`crate::span`]).
    pub name: &'static str,
    /// Offset of the span's start from the trace's start.
    pub start: Duration,
    /// How long the span ran.
    pub duration: Duration,
}

/// A finished request trace: the ordered breakdown of what the traced
/// thread did between [`begin_trace`] and [`end_trace`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// The request id the trace was begun with.
    pub request_id: u64,
    /// Wall time between begin and end.
    pub wall: Duration,
    /// Top-level spans, in completion order (which, being sequential,
    /// is also start order).
    pub spans: Vec<TraceSpan>,
}

struct ActiveTrace {
    request_id: u64,
    started: Instant,
    /// Open spans on this thread; only depth-0 spans enter the trace.
    depth: u32,
    spans: Vec<TraceSpan>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Install a trace context on the current thread. Returns `false` (and
/// leaves the existing context untouched) if one is already active.
pub fn begin_trace(request_id: u64) -> bool {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(ActiveTrace {
            request_id,
            started: Instant::now(),
            depth: 0,
            spans: Vec::new(),
        });
        true
    })
}

/// Whether a trace context is active on the current thread.
pub fn trace_active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Remove the current thread's trace context and return the breakdown;
/// `None` when no trace is active.
pub fn end_trace() -> Option<Trace> {
    ACTIVE.with(|slot| {
        slot.borrow_mut().take().map(|t| Trace {
            request_id: t.request_id,
            wall: t.started.elapsed(),
            spans: t.spans,
        })
    })
}

/// Record an already-measured duration into `mr2_span_seconds{span=…}`
/// without an RAII guard — for call sites whose timing cannot be
/// scoped cleanly (e.g. a cache that times only its hit branch). Does
/// not interact with the trace context.
pub fn observe_span(name: &'static str, seconds: f64) {
    if crate::enabled() {
        span_histogram(name).observe(seconds);
    }
}

/// A running span timer; see [`crate::span`]. Dropping it records the
/// observation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
    /// The span's depth in the active trace at start (`None`: no trace
    /// on this thread — registry recording only).
    trace_depth: Option<u32>,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Span {
        let trace_depth = ACTIVE.with(|slot| {
            slot.borrow_mut().as_mut().map(|t| {
                let d = t.depth;
                t.depth += 1;
                d
            })
        });
        Span {
            name,
            started: Instant::now(),
            trace_depth,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.started.elapsed();
        if crate::enabled() {
            span_histogram(self.name).observe(duration.as_secs_f64());
        }
        if let Some(depth) = self.trace_depth {
            ACTIVE.with(|slot| {
                if let Some(t) = slot.borrow_mut().as_mut() {
                    t.depth = t.depth.saturating_sub(1);
                    if depth == 0 {
                        t.spans.push(TraceSpan {
                            name: self.name,
                            start: self.started.saturating_duration_since(t.started),
                            duration,
                        });
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let until = Instant::now() + Duration::from_micros(us);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn spans_record_into_the_histogram_family() {
        let h = span_histogram("span_test.basic");
        let before = h.count();
        {
            let _s = crate::span("span_test.basic");
            spin(50);
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.quantile(1.0).unwrap() >= 1e-6);
    }

    #[test]
    fn trace_collects_top_level_spans_in_order_and_sum_is_bounded() {
        assert!(begin_trace(41));
        assert!(!begin_trace(42), "no nested trace contexts");
        {
            let _a = crate::span("span_test.first");
            spin(200);
        }
        {
            let _b = crate::span("span_test.outer");
            let _nested = crate::span("span_test.inner");
            spin(200);
        }
        let t = end_trace().expect("trace was active");
        assert!(end_trace().is_none(), "context consumed");
        assert_eq!(t.request_id, 41);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["span_test.first", "span_test.outer"],
            "nested spans stay out of the trace"
        );
        assert!(t.spans[0].start <= t.spans[1].start, "ordered by start");
        let sum: Duration = t.spans.iter().map(|s| s.duration).sum();
        assert!(
            sum <= t.wall,
            "sequential spans cannot out-sum the wall time ({sum:?} vs {wall:?})",
            wall = t.wall
        );
    }

    #[test]
    fn spawned_threads_do_not_inherit_the_trace() {
        assert!(begin_trace(77));
        let child_active = std::thread::spawn(trace_active).join().unwrap();
        assert!(!child_active);
        let t = end_trace().unwrap();
        assert!(t.spans.is_empty());
    }
}
