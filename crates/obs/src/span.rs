//! RAII span timers, the per-thread span stack, and the thread-local
//! trace context.
//!
//! Every [`Span`](crate::span) records its elapsed seconds into the
//! `mr2_span_seconds{span=…}` histogram family. Beyond the histogram,
//! each span participates in two richer sinks:
//!
//! * **Hierarchy.** A per-thread stack of open frames gives every span
//!   an id and a parent id, so nested `model.solve` / `point.sim` /
//!   `cache.lookup` calls form a real tree. When a trace is active on
//!   the thread ([`begin_trace`]), every span that closes while it is
//!   active appends a [`TraceSpan`] carrying `(id, parent, name,
//!   start, duration)`; [`end_trace`] returns the whole tree. Root
//!   spans (no parent inside the trace) are strictly sequential, so
//!   *their* durations sum to at most the request's wall time — the
//!   invariant a `"debug"` reply's breakdown relies on.
//! * **Profiling.** On close, a span folds its *self time* (elapsed
//!   minus time spent in child spans) into the process-wide call-tree
//!   profiler keyed by span path (see [`crate::profile`]), whether or
//!   not a trace is active.
//!
//! The context is deliberately **not** propagated to spawned threads:
//! a trace is "what this request's thread did, in order", and parallel
//! workers report through the registry and profiler instead.
//!
//! Panic safety: unwinding drops open `Span` guards, which pop their
//! frames; anything a panic (or a leaked guard) leaves behind is
//! truncated wholesale by [`end_trace`], so the next request on the
//! worker never inherits phantom parent frames.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::metrics::{Buckets, Histogram};

/// Histogram family every span records into.
const SPAN_FAMILY: &str = "mr2_span_seconds";
const SPAN_HELP: &str = "Elapsed seconds of named code spans.";

/// Hard cap on spans collected into one trace; a trace wrapping a huge
/// sweep keeps its earliest spans and counts the rest as dropped.
const MAX_TRACE_SPANS: usize = 4096;

/// Cache of span-name → histogram handle, so starting a span on a hot
/// path costs one `RwLock` read after the first use of each name.
fn span_histogram(name: &'static str) -> Histogram {
    static CACHE: OnceLock<RwLock<HashMap<&'static str, Histogram>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(h) = cache.read().unwrap().get(name) {
        return h.clone();
    }
    let h = crate::histogram_with(SPAN_FAMILY, SPAN_HELP, &[("span", name)], Buckets::TIME);
    cache.write().unwrap().entry(name).or_insert(h).clone()
}

/// One completed span inside a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Id within the trace, assigned in start order (0, 1, 2, …).
    pub id: u32,
    /// Id of the enclosing span inside the same trace; `None` for
    /// roots.
    pub parent: Option<u32>,
    /// Span name (as passed to [`crate::span`]).
    pub name: &'static str,
    /// Offset of the span's start from the trace's start.
    pub start: Duration,
    /// How long the span ran.
    pub duration: Duration,
}

/// A finished request trace: the span tree of what the traced thread
/// did between [`begin_trace`] and [`end_trace`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// The request id the trace was begun with.
    pub request_id: u64,
    /// Free-form label (typically the route) the trace was begun with.
    pub label: &'static str,
    /// Wall time between begin and end.
    pub wall: Duration,
    /// Completed spans in completion order; ids were assigned in start
    /// order, so children carry higher ids than their parents.
    pub spans: Vec<TraceSpan>,
    /// Spans discarded once the trace hit its size cap.
    pub dropped: u32,
}

impl Trace {
    /// Root spans (no parent inside the trace), in start order.
    pub fn roots(&self) -> Vec<&TraceSpan> {
        let mut v: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.parent.is_none()).collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: u32) -> Vec<&TraceSpan> {
        let mut v: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.parent == Some(id)).collect();
        v.sort_by_key(|s| s.id);
        v
    }
}

struct ActiveTrace {
    request_id: u64,
    label: &'static str,
    /// Distinguishes this trace from stale frame annotations left on
    /// the stack by earlier traces.
    epoch: u64,
    started: Instant,
    /// Stack height when the trace began; frames at or below this
    /// depth belong to enclosing (non-traced) work.
    base_depth: usize,
    next_id: u32,
    dropped: u32,
    spans: Vec<TraceSpan>,
}

/// One open span on this thread's stack.
struct Frame {
    name: &'static str,
    /// Chained path hash for the profiler (see [`crate::profile`]).
    path_hash: u64,
    /// Nanoseconds already spent in completed child spans.
    child_ns: u64,
    /// `(trace epoch, span id, parent span id)` when a trace was
    /// active on this thread when the span started.
    trace: Option<(u64, u32, Option<u32>)>,
}

struct ThreadState {
    frames: Vec<Frame>,
    trace: Option<ActiveTrace>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = const {
        RefCell::new(ThreadState {
            frames: Vec::new(),
            trace: None,
        })
    };
}

/// Monotonic trace-epoch source shared by all threads.
static TRACE_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Install a trace context on the current thread. Returns `false` (and
/// leaves the existing context untouched) if one is already active.
pub fn begin_trace(request_id: u64, label: &'static str) -> bool {
    STATE.with(|slot| {
        let mut s = slot.borrow_mut();
        if s.trace.is_some() {
            return false;
        }
        let base_depth = s.frames.len();
        s.trace = Some(ActiveTrace {
            request_id,
            label,
            epoch: TRACE_EPOCH.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
            base_depth,
            next_id: 0,
            dropped: 0,
            spans: Vec::new(),
        });
        true
    })
}

/// Whether a trace context is active on the current thread.
pub fn trace_active() -> bool {
    STATE.with(|slot| slot.borrow().trace.is_some())
}

/// Remove the current thread's trace context and return the span tree;
/// `None` when no trace is active.
///
/// Also truncates the span stack back to where it was at
/// [`begin_trace`]: a panic that unwound past open guards, or a leaked
/// guard, cannot leave phantom frames behind for the worker's next
/// request.
pub fn end_trace() -> Option<Trace> {
    STATE.with(|slot| {
        let mut s = slot.borrow_mut();
        let t = s.trace.take()?;
        s.frames.truncate(t.base_depth);
        Some(Trace {
            request_id: t.request_id,
            label: t.label,
            wall: t.started.elapsed(),
            spans: t.spans,
            dropped: t.dropped,
        })
    })
}

/// [`end_trace`], then hand the trace to the retention layer (sampling
/// ring + slowest list, see [`crate::trace`]). Returns the finished
/// trace whether or not the ring kept it.
pub fn finish_trace() -> Option<Arc<Trace>> {
    end_trace().map(crate::trace::record_trace)
}

/// Record an already-measured duration into `mr2_span_seconds{span=…}`
/// without an RAII guard — for call sites whose timing cannot be
/// scoped cleanly (e.g. a cache that times only its hit branch). Does
/// not interact with the trace context or the profiler.
pub fn observe_span(name: &'static str, seconds: f64) {
    if crate::enabled() {
        span_histogram(name).observe(seconds);
    }
}

/// A running span timer; see [`crate::span`]. Dropping it records the
/// observation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
    /// Index of this span's frame on the thread stack (`None` when
    /// recording was disabled at start — histogram-only on drop).
    frame: Option<usize>,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span {
                name,
                started: Instant::now(),
                frame: None,
            };
        }
        let frame = STATE.with(|slot| {
            let mut s = slot.borrow_mut();
            let parent_hash = s
                .frames
                .last()
                .map_or(crate::profile::ROOT_HASH, |f| f.path_hash);
            let path_hash = crate::profile::chain(parent_hash, name);
            // The nearest enclosing frame annotated by the *live*
            // trace is the parent. Stale annotations (an earlier
            // trace's epoch) only ever sit below the live trace's
            // base depth, so the topmost annotated frame decides.
            let enclosing = s
                .frames
                .iter()
                .rev()
                .find_map(|f| f.trace)
                .map(|(epoch, id, _)| (epoch, id));
            let trace = s.trace.as_mut().and_then(|t| {
                let parent = match enclosing {
                    Some((epoch, id)) if epoch == t.epoch => Some(id),
                    _ => None,
                };
                let id = t.next_id;
                t.next_id = t.next_id.checked_add(1)?;
                Some((t.epoch, id, parent))
            });
            s.frames.push(Frame {
                name,
                path_hash,
                child_ns: 0,
                trace,
            });
            Some(s.frames.len() - 1)
        });
        Span {
            name,
            started: Instant::now(),
            frame,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.started.elapsed();
        if crate::enabled() {
            span_histogram(self.name).observe(duration.as_secs_f64());
        }
        let Some(index) = self.frame else { return };
        STATE.with(|slot| {
            let mut s = slot.borrow_mut();
            // end_trace may already have truncated past us, and leaked
            // inner guards may have left deeper frames behind; in
            // either case restore consistency rather than misattribute.
            if index >= s.frames.len() || s.frames[index].name != self.name {
                return;
            }
            s.frames.truncate(index + 1);
            let frame = s.frames.pop().expect("frame at index exists");
            let dur_ns = duration.as_nanos().min(u64::MAX as u128) as u64;
            if let Some(parent) = s.frames.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(dur_ns);
            }
            let self_ns = dur_ns.saturating_sub(frame.child_ns);
            let frames = &s.frames;
            crate::profile::record(frame.path_hash, self_ns, dur_ns, || {
                let mut path: Vec<&'static str> = frames.iter().map(|f| f.name).collect();
                path.push(frame.name);
                path
            });
            if let Some((epoch, id, parent)) = frame.trace {
                if let Some(t) = s.trace.as_mut() {
                    if t.epoch == epoch {
                        if t.spans.len() < MAX_TRACE_SPANS {
                            t.spans.push(TraceSpan {
                                id,
                                parent,
                                name: self.name,
                                start: self.started.saturating_duration_since(t.started),
                                duration,
                            });
                        } else {
                            t.dropped = t.dropped.saturating_add(1);
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let until = Instant::now() + Duration::from_micros(us);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn spans_record_into_the_histogram_family() {
        let _guard = crate::tests_support::flag_lock();
        let h = span_histogram("span_test.basic");
        let before = h.count();
        {
            let _s = crate::span("span_test.basic");
            spin(50);
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.quantile(1.0).unwrap() >= 1e-6);
    }

    #[test]
    fn trace_builds_a_span_tree_with_ids_and_parents() {
        let _guard = crate::tests_support::flag_lock();
        assert!(begin_trace(41, "test"));
        assert!(!begin_trace(42, "test"), "no nested trace contexts");
        {
            let _a = crate::span("span_test.first");
            spin(200);
        }
        {
            let _b = crate::span("span_test.outer");
            let _nested = crate::span("span_test.inner");
            spin(200);
        }
        let t = end_trace().expect("trace was active");
        assert!(end_trace().is_none(), "context consumed");
        assert_eq!(t.request_id, 41);
        assert_eq!(t.label, "test");
        assert_eq!(t.dropped, 0);
        // All three spans are in the trace, ids in start order.
        let mut by_id = t.spans.clone();
        by_id.sort_by_key(|s| s.id);
        let names: Vec<&str> = by_id.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["span_test.first", "span_test.outer", "span_test.inner"],
        );
        assert_eq!(by_id[0].parent, None);
        assert_eq!(by_id[1].parent, None);
        assert_eq!(
            by_id[2].parent,
            Some(by_id[1].id),
            "inner nests under outer"
        );
        // Roots are sequential: their durations sum to at most wall.
        let roots = t.roots();
        assert_eq!(roots.len(), 2);
        assert!(roots[0].start <= roots[1].start, "ordered by start");
        let sum: Duration = roots.iter().map(|s| s.duration).sum();
        assert!(
            sum <= t.wall,
            "sequential roots cannot out-sum the wall time ({sum:?} vs {wall:?})",
            wall = t.wall
        );
        // The child is inside its parent's window.
        let outer = by_id[1].clone();
        let inner = by_id[2].clone();
        assert!(inner.start >= outer.start);
        assert!(inner.duration <= outer.duration + Duration::from_millis(1));
        assert_eq!(t.children(outer.id), vec![&inner]);
    }

    #[test]
    fn spawned_threads_do_not_inherit_the_trace() {
        let _guard = crate::tests_support::flag_lock();
        assert!(begin_trace(77, "test"));
        let child_active = std::thread::spawn(trace_active).join().unwrap();
        assert!(!child_active);
        let t = end_trace().unwrap();
        assert!(t.spans.is_empty());
    }

    /// Regression: a panic (or leaked guard) mid-trace must not leave
    /// phantom frames for the next request on the same thread.
    #[test]
    fn panic_mid_trace_pops_the_whole_span_stack() {
        let _guard = crate::tests_support::flag_lock();
        assert!(begin_trace(90, "panicky"));
        let result = std::panic::catch_unwind(|| {
            let _outer = crate::span("span_test.panic_outer");
            let inner = crate::span("span_test.panic_inner");
            // A leaked guard never drops, so its frame stays behind
            // even after unwinding pops `_outer`.
            std::mem::forget(inner);
            panic!("boom");
        });
        assert!(result.is_err());
        // The panicked request's cleanup path.
        let t = end_trace().expect("trace still active after panic");
        assert_eq!(t.request_id, 90);
        // The next request on this worker starts from a clean stack:
        // its spans are roots, not children of panic_inner.
        assert!(begin_trace(91, "next"));
        {
            let _s = crate::span("span_test.after_panic");
            spin(50);
        }
        let t = end_trace().unwrap();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "span_test.after_panic");
        assert_eq!(
            t.spans[0].parent, None,
            "no phantom parent inherited from the panicked request"
        );
    }

    #[test]
    fn leaked_inner_guard_does_not_corrupt_the_outer_frame() {
        let _guard = crate::tests_support::flag_lock();
        assert!(begin_trace(95, "leaky"));
        {
            let _outer = crate::span("span_test.leak_outer");
            let inner = crate::span("span_test.leak_inner");
            std::mem::forget(inner);
            // _outer's drop truncates the leaked frame away.
        }
        {
            let _sib = crate::span("span_test.leak_sibling");
        }
        let t = end_trace().unwrap();
        let sib = t
            .spans
            .iter()
            .find(|s| s.name == "span_test.leak_sibling")
            .unwrap();
        assert_eq!(sib.parent, None, "sibling is a root, not a leak child");
    }

    #[test]
    fn trace_span_count_is_capped() {
        let _guard = crate::tests_support::flag_lock();
        assert!(begin_trace(96, "cap"));
        for _ in 0..(MAX_TRACE_SPANS + 5) {
            let _s = crate::span("span_test.capped");
        }
        let t = end_trace().unwrap();
        assert_eq!(t.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(t.dropped, 5);
    }

    #[test]
    fn disabled_spans_skip_the_stack_entirely() {
        let _guard = crate::tests_support::flag_lock();
        crate::set_enabled(false);
        assert!(begin_trace(97, "off"));
        {
            let _s = crate::span("span_test.disabled");
        }
        let t = end_trace().unwrap();
        crate::set_enabled(true);
        assert!(t.spans.is_empty(), "disabled spans stay out of traces");
    }
}
