//! Full A1–A6 solver cost for the paper's experiment configurations,
//! plus the observability guard: the same solve with metrics recording
//! on and off. Both cases sit in the committed baseline, so the ≤25%
//! regression gate holds the registry's hot-path cost to the noise
//! floor — instrumentation must stay effectively free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce_sim::workload::wordcount;
use mapreduce_sim::{SimConfig, GB};
use mr2_model::input::Estimator;
use mr2_model::{model_input, solve, Calibration, ModelOptions};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    let cases = [
        ("fig10_1gb_1job_4n", 4usize, GB, 1usize),
        ("fig12_5gb_1job_4n", 4, 5 * GB, 1),
        ("fig13_5gb_4jobs_8n", 8, 5 * GB, 4),
    ];
    for (name, nodes, input, jobs) in cases {
        let cfg = SimConfig::paper_testbed(nodes);
        let spec = wordcount(input, nodes as u32);
        for est in [Estimator::ForkJoin, Estimator::Tripathi] {
            let inp = model_input(
                &cfg,
                &spec,
                jobs,
                ModelOptions {
                    estimator: est,
                    ..ModelOptions::default()
                },
                &Calibration::default(),
                None,
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{est:?}"), name),
                &inp,
                |b, inp| b.iter(|| solve(black_box(inp))),
            );
        }
    }
    g.finish();
}

fn bench_registry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("registry");
    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(GB, 4);
    let inp = model_input(
        &cfg,
        &spec,
        1,
        ModelOptions::default(),
        &Calibration::default(),
        None,
    );
    // Recording on is the process default; the disabled case turns the
    // solver's counter adds into single relaxed loads. Near-identical
    // medians for the pair are the evidence that instrumentation costs
    // nothing on the solve path.
    g.bench_with_input(
        BenchmarkId::new("recording_on", "fig10_1gb_1job_4n"),
        &inp,
        |b, inp| {
            mr2_obs::set_enabled(true);
            b.iter(|| solve(black_box(inp)))
        },
    );
    g.bench_with_input(
        BenchmarkId::new("recording_off", "fig10_1gb_1job_4n"),
        &inp,
        |b, inp| {
            mr2_obs::set_enabled(false);
            b.iter(|| solve(black_box(inp)));
            mr2_obs::set_enabled(true);
        },
    );
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solver, bench_registry_overhead
}
criterion_main!(benches);
