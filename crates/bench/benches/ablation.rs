//! Solver-cost ablations over the design choices DESIGN.md calls out:
//! P-subtree balancing, slow start, and the overlap factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce_sim::workload::wordcount;
use mapreduce_sim::{SimConfig, GB};
use mr2_model::{model_input, solve, Calibration, ModelOptions};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);
    let variants: [(&str, ModelOptions); 4] = [
        ("default", ModelOptions::default()),
        (
            "no_balance",
            ModelOptions {
                balance_tree: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no_slow_start",
            ModelOptions {
                slow_start: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no_overlap",
            ModelOptions {
                use_overlap_factors: false,
                ..ModelOptions::default()
            },
        ),
    ];
    let mut g = c.benchmark_group("solver_ablation");
    for (name, opts) in variants {
        let inp = model_input(&cfg, &spec, 2, opts, &Calibration::default(), None);
        g.bench_with_input(BenchmarkId::new("variant", name), &inp, |b, inp| {
            b.iter(|| solve(black_box(inp)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
