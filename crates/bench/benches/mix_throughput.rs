//! End-to-end mix throughput: a heterogeneous workload mix under
//! staggered arrivals, evaluated across simulator repetitions — the
//! composite hot path this PR's three optimization layers feed
//! (calendar reuse across reps, memoized endpoint solves, batched
//! cache keys).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce_sim::workload::{grep, terasort, wordcount};
use mapreduce_sim::{JobSpec, SimConfig, GB, MB};
use mr2_model::{estimate_mix, Calibration, MixClass, ModelOptions};
use std::hint::black_box;

fn mix(nodes: u32) -> Vec<(JobSpec, usize)> {
    vec![
        (wordcount(GB, nodes), 2),
        (terasort(GB, nodes), 1),
        (grep(512 * MB), 1),
    ]
}

/// Staggered submission offsets (seconds), one per job of the mix.
const SUBMITS: [f64; 4] = [0.0, 45.0, 90.0, 150.0];

/// A small sweep of staggered schedules: the analytic bench evaluates
/// all of them per iteration (a realistic λ-sweep shape, and enough
/// work per iteration for a stable median at memo-hit speeds).
fn schedules() -> Vec<[f64; 4]> {
    (0..8)
        .map(|i| {
            let stretch = 1.0 + i as f64 * 0.25;
            [0.0, 45.0 * stretch, 90.0 * stretch, 150.0 * stretch]
        })
        .collect()
}

fn bench_mix_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix_throughput");

    // Simulator ground truth: the mix under staggered arrivals, the
    // rep loop reusing one calendar.
    for (name, nodes, reps) in [("sim_4n_3reps", 4usize, 3usize), ("sim_8n_5reps", 8, 5)] {
        let cfg = SimConfig::paper_testbed(nodes);
        let classes = mix(nodes as u32);
        g.bench_with_input(BenchmarkId::new("run", name), &(), |b, _| {
            b.iter(|| black_box(mapreduce_sim::eval_mix(&cfg, &classes, &SUBMITS, reps)))
        });
    }

    // Analytic estimates of the same mix across a sweep of staggered
    // schedules: every schedule shares the class endpoint solves, so
    // the sweep pays for each distinct solve once via the solve memo.
    let cfg = SimConfig::paper_testbed(4);
    let classes: Vec<MixClass> = mix(4)
        .into_iter()
        .map(|(spec, count)| MixClass {
            spec,
            count,
            profile: None,
        })
        .collect();
    let opts = ModelOptions::default();
    let cal = Calibration::default();
    let sweep = schedules();
    g.bench_with_input(
        BenchmarkId::new("run", "model_4n_staggered"),
        &(),
        |b, _| {
            b.iter(|| {
                for submits in &sweep {
                    black_box(estimate_mix(&cfg, &classes, submits, &opts, &cal));
                }
            })
        },
    );

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mix_throughput
}
criterion_main!(benches);
