//! MVA solver scaling — the paper's §4.3 complexity claim: the exact
//! recursion grows with the population lattice, while the approximate
//! (Schweitzer) solver is `O(C²K)` per iteration and the whole solution is
//! "dominated by the MVA algorithm" at `O(C²N²K)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use queueing::network::{ClosedNetwork, Station};
use queueing::{approximate_mva, exact_mva};
use std::hint::black_box;

fn network(classes: usize, stations: usize) -> ClosedNetwork {
    let st = (0..stations)
        .map(|k| Station::queueing(&format!("s{k}")))
        .collect();
    let names = (0..classes).map(|c| format!("c{c}")).collect();
    let demands = (0..classes)
        .map(|c| {
            (0..stations)
                .map(|k| 0.1 + ((c * 7 + k * 3) % 10) as f64 * 0.05)
                .collect()
        })
        .collect();
    ClosedNetwork::new(st, names, demands)
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("mva_exact");
    for n in [5u32, 10, 20] {
        let net = network(2, 4);
        g.bench_with_input(BenchmarkId::new("population", n), &n, |b, &n| {
            b.iter(|| exact_mva(black_box(&net), &[n, n]))
        });
    }
    g.finish();
}

fn bench_approximate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mva_approximate");
    for classes in [2usize, 6, 12] {
        let net = network(classes, 13); // 4 nodes × 3 + overhead
        let pops = vec![8.0; classes];
        g.bench_with_input(BenchmarkId::new("classes", classes), &classes, |b, _| {
            b.iter(|| approximate_mva(black_box(&net), black_box(&pops)))
        });
    }
    for stations in [5usize, 13, 25] {
        let net = network(6, stations);
        let pops = vec![8.0; 6];
        g.bench_with_input(BenchmarkId::new("stations", stations), &stations, |b, _| {
            b.iter(|| approximate_mva(black_box(&net), black_box(&pops)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exact, bench_approximate
}
criterion_main!(benches);
