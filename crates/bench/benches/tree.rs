//! Precedence-tree construction and balancing cost (§4.2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr2_model::timeline::{build_timeline, ShuffleSpec, Timeline, TimelineConfig, TimelineJob};
use mr2_model::tree::{build_tree, waves};
use std::hint::black_box;

fn timeline(maps: u32) -> Timeline {
    build_timeline(
        &TimelineConfig::homogeneous(8, 4),
        &[TimelineJob {
            num_maps: maps,
            num_reduces: 8,
            map_duration: 40.0,
            merge_duration: 20.0,
            shuffle: ShuffleSpec::Fixed(5.0),
        }],
    )
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for maps in [8u32, 80, 320] {
        let tl = timeline(maps);
        g.bench_with_input(BenchmarkId::new("balanced", maps), &maps, |b, _| {
            b.iter(|| build_tree(black_box(&tl), None, true))
        });
        g.bench_with_input(BenchmarkId::new("chain", maps), &maps, |b, _| {
            b.iter(|| build_tree(black_box(&tl), None, false))
        });
    }
    g.finish();
}

fn bench_waves(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_waves");
    for maps in [80u32, 1280] {
        let tl = timeline(maps);
        let idx: Vec<usize> = (0..tl.segments.len()).collect();
        g.bench_with_input(BenchmarkId::new("segments", maps), &maps, |b, _| {
            b.iter(|| waves(black_box(&tl), black_box(idx.clone())))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_build, bench_waves
}
criterion_main!(benches);
