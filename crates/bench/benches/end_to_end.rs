//! The paper's core economic claim: analytic estimates arrive "at
//! significantly lower cost than simulation and experimental evaluation of
//! real setups". This bench puts the two costs side by side for the same
//! question (5 GB WordCount, 4 nodes): one full model solve vs one
//! simulated execution (a real execution would be ~250 s of wall time).

use criterion::{criterion_group, criterion_main, Criterion};
use mapreduce_sim::workload::wordcount;
use mapreduce_sim::{ClusterSim, SimConfig, GB};
use mr2_model::{model_input, solve, Calibration, ModelOptions};
use std::hint::black_box;

fn bench_model_vs_simulation(c: &mut Criterion) {
    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);

    let mut g = c.benchmark_group("estimate_cost");
    g.bench_function("analytic_model", |b| {
        let inp = model_input(
            &cfg,
            &spec,
            1,
            ModelOptions::default(),
            &Calibration::default(),
            None,
        );
        b.iter(|| solve(black_box(&inp)))
    });
    g.bench_function("simulation", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(cfg.clone());
            sim.add_job(spec.clone(), 0.0);
            black_box(sim.run())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_vs_simulation
}
criterion_main!(benches);
