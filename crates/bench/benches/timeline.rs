//! Timeline-construction cost — the paper's §4.3 claim that building the
//! timeline is `O(C × T)` for `C` tasks and `T` containers, and therefore
//! never dominates the MVA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr2_model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
use std::hint::black_box;

fn job(maps: u32, reduces: u32) -> TimelineJob {
    TimelineJob {
        num_maps: maps,
        num_reduces: reduces,
        map_duration: 40.0,
        merge_duration: 20.0,
        shuffle: ShuffleSpec::Fixed(5.0),
    }
}

fn bench_tasks(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline_tasks");
    for maps in [8u32, 40, 80, 320, 1280] {
        let cfg = TimelineConfig::homogeneous(8, 4);
        let jobs = [job(maps, 8)];
        g.bench_with_input(BenchmarkId::new("maps", maps), &maps, |b, _| {
            b.iter(|| build_timeline(black_box(&cfg), black_box(&jobs)))
        });
    }
    g.finish();
}

fn bench_containers(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline_containers");
    for nodes in [4usize, 16, 64] {
        let cfg = TimelineConfig::homogeneous(nodes, 4);
        let jobs = [job(320, 8)];
        g.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| build_timeline(black_box(&cfg), black_box(&jobs)))
        });
    }
    g.finish();
}

fn bench_multi_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline_jobs");
    for n_jobs in [1usize, 4, 16] {
        let cfg = TimelineConfig::homogeneous(8, 4);
        let jobs: Vec<TimelineJob> = (0..n_jobs).map(|_| job(40, 8)).collect();
        g.bench_with_input(BenchmarkId::new("jobs", n_jobs), &n_jobs, |b, _| {
            b.iter(|| build_timeline(black_box(&cfg), black_box(&jobs)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tasks, bench_containers, bench_multi_job
}
criterion_main!(benches);
