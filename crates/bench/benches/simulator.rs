//! Discrete-event simulator throughput: wall time and events processed
//! per full job execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce_sim::workload::wordcount;
use mapreduce_sim::{ClusterSim, SimConfig, GB};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let cases = [
        ("1gb_1job_4n", 4usize, GB, 1usize),
        ("5gb_1job_4n", 4, 5 * GB, 1),
        ("5gb_4jobs_8n", 8, 5 * GB, 4),
    ];
    for (name, nodes, input, jobs) in cases {
        g.bench_with_input(BenchmarkId::new("run", name), &(), |b, _| {
            b.iter(|| {
                let mut sim = ClusterSim::new(SimConfig::paper_testbed(nodes));
                for _ in 0..jobs {
                    sim.add_job(wordcount(input, nodes as u32), 0.0);
                }
                black_box(sim.run())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
