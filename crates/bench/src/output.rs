//! Rendering of experiment results: tables, ASCII plots, CSV files.

use crate::experiments::ExperimentResult;
use mr2_model::error::relative_error;
use std::fmt::Write as _;
use std::path::Path;

/// Markdown table with measured vs estimates and signed errors.
pub fn render_table(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} — {}", r.id.name(), r.title);
    let _ = writeln!(
        out,
        "| {} | HadoopSetup (s) | Fork/join (s) | err | Tripathi (s) | err | ARIA (s) | Herodotou (s) |",
        r.x_label
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for p in &r.points {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:+.1}% | {:.1} | {:+.1}% | {:.1} | {:.1} |",
            p.x,
            p.measured,
            p.fork_join,
            relative_error(p.fork_join, p.measured) * 100.0,
            p.tripathi,
            relative_error(p.tripathi, p.measured) * 100.0,
            p.aria,
            p.herodotou,
        );
    }
    out
}

/// A small ASCII chart of the three paper series (measured, fork/join,
/// Tripathi) across the sweep — the shape check for Figures 10–15.
pub fn ascii_plot(r: &ExperimentResult) -> String {
    const ROWS: usize = 16;
    const LABEL: usize = 8;
    type Series<'a> = (&'a str, char, fn(&crate::Point) -> f64);
    let series: [Series; 3] = [
        ("measured", 'M', |p| p.measured),
        ("fork/join", 'F', |p| p.fork_join),
        ("tripathi", 'T', |p| p.tripathi),
    ];
    let max = r
        .points
        .iter()
        .flat_map(|p| [p.measured, p.fork_join, p.tripathi])
        .fold(0.0f64, f64::max)
        .max(1e-9);

    let cols = r.points.len();
    let col_width = 8;
    let mut grid = vec![vec![' '; LABEL + cols * col_width]; ROWS];
    for (ci, p) in r.points.iter().enumerate() {
        for (_, ch, f) in &series {
            let v = f(p);
            let row = ((1.0 - v / max) * (ROWS - 1) as f64).round() as usize;
            let col = LABEL + ci * col_width + col_width / 2;
            let cell = &mut grid[row.min(ROWS - 1)][col];
            // Overlapping points show the later series' letter plus '*'.
            *cell = if *cell == ' ' { *ch } else { '*' };
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {}  (M=measured F=fork/join T=tripathi)",
        r.id.name(),
        r.title
    );
    let _ = writeln!(out, "{:>7.0}s ┐", max);
    for row in grid {
        let s: String = row.into_iter().collect();
        let _ = writeln!(out, "        │{}", s.trim_end());
    }
    let mut axis = String::new();
    for p in &r.points {
        let _ = write!(axis, "{:^col_width$}", p.x, col_width = col_width);
    }
    let _ = writeln!(out, "      0 └{}", "─".repeat(LABEL + cols * col_width));
    let _ = writeln!(out, "         {:LABEL$}{}", "", axis, LABEL = LABEL);
    let _ = writeln!(out, "         {:LABEL$}{}", "", r.x_label, LABEL = LABEL);
    out
}

/// Write a CSV with one row per point.
pub fn write_csv(r: &ExperimentResult, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", r.id.name()));
    let mut body = String::from("x,measured,fork_join,tripathi,aria,herodotou\n");
    for p in &r.points {
        let _ = writeln!(
            body,
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            p.x, p.measured, p.fork_join, p.tripathi, p.aria, p.herodotou
        );
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentId, Point};

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: ExperimentId::Fig10,
            title: "Input: 1GB; #jobs: 1".into(),
            x_label: "number of nodes".into(),
            points: vec![
                Point {
                    x: 4.0,
                    measured: 65.0,
                    fork_join: 72.0,
                    tripathi: 78.0,
                    aria: 80.0,
                    herodotou: 50.0,
                },
                Point {
                    x: 8.0,
                    measured: 40.0,
                    fork_join: 45.0,
                    tripathi: 49.0,
                    aria: 52.0,
                    herodotou: 31.0,
                },
            ],
        }
    }

    #[test]
    fn table_contains_errors() {
        let t = render_table(&sample());
        assert!(t.contains("fig10"));
        assert!(t.contains("+10.8%")); // 72 vs 65
        assert!(t.contains("| 8 |"));
    }

    #[test]
    fn plot_renders_all_series() {
        let p = ascii_plot(&sample());
        assert!(p.contains('M') || p.contains('*'));
        assert!(p.contains("number of nodes"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mr2bench-test");
        let path = write_csv(&sample(), &dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.starts_with("x,measured"));
        assert_eq!(body.lines().count(), 3);
    }
}
