//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5).
//!
//! Each figure is a sweep producing, per point, the measured ("Hadoop
//! setup" — here: the DES cluster simulator, median of 5 seeded runs) and
//! the model estimates (Fork/join and Tripathi), plus the ARIA and
//! Herodotou related-work baselines. Output is a Markdown-ish table, an
//! ASCII plot, and a CSV file per figure under `results/`.

pub mod experiments;
pub mod output;

pub use experiments::{
    cache_path, load_cache, run_errors, run_experiment, running_example, save_cache, ExperimentId,
    ExperimentResult, Point,
};
pub use output::{ascii_plot, render_table, write_csv};
