//! CLI regenerating the paper's evaluation.
//!
//! ```text
//! experiments all            # every figure + error table (default)
//! experiments fig10 fig12    # selected figures
//! experiments tab1           # Table 1 + Figures 6–7 (running example)
//! experiments errors         # error bands over all figures
//! experiments ablations      # design-choice ablations
//! ```
//!
//! CSV output lands in `results/`.

use mr2_bench::{ascii_plot, render_table, run_errors, run_experiment, write_csv, ExperimentId};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = if args.is_empty() {
        vec!["all".to_string()]
    } else {
        args
    };
    let out_dir = Path::new("results");

    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut want_errors = false;
    let mut want_tab1 = false;
    let mut want_ablations = false;
    for a in &args {
        match a.as_str() {
            "all" => {
                selected = ExperimentId::ALL.to_vec();
                want_errors = true;
                want_tab1 = true;
            }
            "errors" => {
                selected = ExperimentId::ALL.to_vec();
                want_errors = true;
            }
            "tab1" => want_tab1 = true,
            "ablations" => want_ablations = true,
            "debug" => {
                mr2_bench::experiments::debug_point();
                return;
            }
            other => match ExperimentId::parse(other) {
                Some(id) => selected.push(id),
                None => {
                    eprintln!("unknown experiment: {other}");
                    eprintln!("known: all, errors, tab1, ablations, fig10..fig15");
                    std::process::exit(2);
                }
            },
        }
    }

    if want_tab1 {
        println!("{}", mr2_bench::running_example());
    }

    // Warm the process-wide cache from the previous run's snapshot so
    // re-running figures is incremental, not cold each process.
    if !selected.is_empty() {
        match mr2_bench::load_cache(out_dir) {
            Ok(0) => {}
            Ok(n) => eprintln!("cache: warmed {n} entries from a previous run"),
            Err(e) => eprintln!("cache load failed: {e}"),
        }
    }

    let mut results = Vec::new();
    for id in selected {
        eprintln!("running {} …", id.name());
        let r = run_experiment(id);
        println!("{}", render_table(&r));
        println!("{}", ascii_plot(&r));
        match write_csv(&r, out_dir) {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
        results.push(r);
    }

    if !results.is_empty() {
        match mr2_bench::save_cache(out_dir) {
            Ok(p) => eprintln!("cache: snapshot saved to {}", p.display()),
            Err(e) => eprintln!("cache save failed: {e}"),
        }
    }

    if want_errors && !results.is_empty() {
        println!("## Error bands over {} figure(s) (§5.2)", results.len());
        println!("{}", run_errors(&results));
    }

    if want_ablations {
        println!("{}", mr2_bench::experiments::ablations());
    }
}
