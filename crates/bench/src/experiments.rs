//! Definitions of the paper's experiments (Figures 10–15, Table 1, the
//! §5.2 error bands), each expressed as a declarative `mr2-scenario`
//! sweep and executed by its parallel batch runner. A process-wide
//! result cache deduplicates configurations shared between figures
//! (e.g. fig12's 4-node point and fig14's 1-job point are the same
//! evaluation), and persists under `results/` ([`load_cache`] /
//! [`save_cache`]) so re-running figures is incremental across
//! processes, not cold each time.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use mapreduce_sim::{SimConfig, GB};
use mr2_model::error::ErrorBand;
use mr2_model::{Calibration, ModelOptions};
use mr2_scenario::{run_scenario, Backends, PointResult, ResultCache, RunnerConfig, Scenario};

/// Number of repetitions per configuration (paper §5.1: "Each experiment
/// we repeated 5 times and then took the median").
pub const REPS: usize = 5;

/// Process-wide evaluation cache shared by every experiment run.
fn cache() -> &'static ResultCache {
    static CACHE: OnceLock<ResultCache> = OnceLock::new();
    CACHE.get_or_init(ResultCache::new)
}

/// Where [`save_cache`] snapshots the process-wide cache inside the
/// output directory.
pub fn cache_path(out_dir: &Path) -> PathBuf {
    out_dir.join("cache.txt")
}

/// Warm the process-wide cache from an earlier run's snapshot in
/// `out_dir`. Returns the number of entries merged; a missing snapshot
/// is simply a cold start (`Ok(0)`), and a snapshot from a different
/// model/simulator schema version loads nothing by design.
pub fn load_cache(out_dir: &Path) -> std::io::Result<usize> {
    match cache().load(&cache_path(out_dir)) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        other => other,
    }
}

/// Snapshot the process-wide cache into `out_dir` so the next process
/// skips every evaluation this one performed.
pub fn save_cache(out_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = cache_path(out_dir);
    cache().save(&path)?;
    Ok(path)
}

/// The backends the paper's methodology prescribes: simulator ground
/// truth (median of [`REPS`] seeded runs) plus the profile-calibrated
/// analytic model.
fn paper_backends() -> Backends {
    Backends {
        analytic: true,
        profile_calibration: true,
        simulator: Some(REPS),
    }
}

/// One point of a sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sweep coordinate (number of nodes, or number of jobs for fig14).
    pub x: f64,
    /// Measured median job response time (the "HadoopSetup" series).
    pub measured: f64,
    /// Fork/join model estimate.
    pub fork_join: f64,
    /// Tripathi model estimate.
    pub tripathi: f64,
    /// ARIA `T_avg` baseline.
    pub aria: f64,
    /// Herodotou static baseline.
    pub herodotou: f64,
}

/// A completed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which experiment.
    pub id: ExperimentId,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The sweep points.
    pub points: Vec<Point>,
}

/// The paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Fig. 10: 1 GB input, 1 job, nodes ∈ {4,6,8}.
    Fig10,
    /// Fig. 11: 1 GB input, 4 jobs, nodes ∈ {4,6,8}.
    Fig11,
    /// Fig. 12: 5 GB input, 1 job, nodes ∈ {4,6,8}.
    Fig12,
    /// Fig. 13: 5 GB input, 4 jobs, nodes ∈ {4,6,8}.
    Fig13,
    /// Fig. 14: 4 nodes, 5 GB, jobs ∈ {1,2,3,4}.
    Fig14,
    /// Fig. 15: 64 MB blocks, 5 GB, 1 job, nodes ∈ {4,6,8}.
    Fig15,
}

impl ExperimentId {
    /// All figure experiments in paper order.
    pub const ALL: [ExperimentId; 6] = [
        ExperimentId::Fig10,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
    ];

    /// Parse a CLI name like "fig10".
    pub fn parse(s: &str) -> Option<ExperimentId> {
        Some(match s {
            "fig10" => ExperimentId::Fig10,
            "fig11" => ExperimentId::Fig11,
            "fig12" => ExperimentId::Fig12,
            "fig13" => ExperimentId::Fig13,
            "fig14" => ExperimentId::Fig14,
            "fig15" => ExperimentId::Fig15,
            _ => return None,
        })
    }

    /// The CLI/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
        }
    }
}

/// Which scenario axis a figure plots on its x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XAxis {
    Nodes,
    Jobs,
}

impl ExperimentId {
    /// The figure as a declarative sweep. Reducers follow the scenario
    /// default (`ReducePolicy::PerNode`): one reduce wave across the
    /// cluster, the common sizing rule and the paper's setup.
    pub fn scenario(&self) -> Scenario {
        let base = Scenario::new(self.name())
            .axis_nodes([4usize, 6, 8])
            .with_backends(paper_backends());
        match self {
            ExperimentId::Fig10 => base.axis_input_bytes([GB]),
            ExperimentId::Fig11 => base.axis_input_bytes([GB]).axis_n_jobs([4usize]),
            ExperimentId::Fig12 => base.axis_input_bytes([5 * GB]),
            ExperimentId::Fig13 => base.axis_input_bytes([5 * GB]).axis_n_jobs([4usize]),
            ExperimentId::Fig14 => base
                .axis_nodes([4usize])
                .axis_input_bytes([5 * GB])
                .axis_n_jobs([1usize, 2, 3, 4]),
            ExperimentId::Fig15 => base.axis_input_bytes([5 * GB]).axis_block_mb([64u64]),
        }
    }

    fn x_axis(&self) -> XAxis {
        match self {
            ExperimentId::Fig14 => XAxis::Jobs,
            _ => XAxis::Nodes,
        }
    }

    fn title(&self) -> &'static str {
        match self {
            ExperimentId::Fig10 => "Input: 1GB; #jobs: 1",
            ExperimentId::Fig11 => "Input: 1GB; #jobs: 4",
            ExperimentId::Fig12 => "Input: 5GB; #jobs: 1",
            ExperimentId::Fig13 => "Input: 5GB; #jobs: 4",
            ExperimentId::Fig14 => "#Nodes: 4; Input: 5GB",
            ExperimentId::Fig15 => "Block: 64MB; Input: 5GB; #jobs: 1",
        }
    }
}

/// Project one evaluated scenario point onto a figure's series.
fn to_point(r: &PointResult, x_axis: XAxis) -> Point {
    let model = r
        .model
        .as_ref()
        .expect("paper backends include the analytic model");
    Point {
        x: match x_axis {
            XAxis::Nodes => r.point.nodes as f64,
            XAxis::Jobs => r.point.total_jobs() as f64,
        },
        measured: r.measured().expect("paper backends include the simulator"),
        fork_join: model.fork_join,
        tripathi: model.tripathi,
        aria: model.aria,
        herodotou: model.herodotou,
    }
}

/// Run one of the paper's figure experiments through the scenario
/// engine's parallel runner.
pub fn run_experiment(id: ExperimentId) -> ExperimentResult {
    let sweep = run_scenario(&id.scenario(), cache(), &RunnerConfig::default());
    let x_axis = id.x_axis();
    ExperimentResult {
        id,
        title: id.title().into(),
        x_label: match x_axis {
            XAxis::Nodes => "number of nodes".into(),
            XAxis::Jobs => "number of jobs".into(),
        },
        points: sweep.points.iter().map(|p| to_point(p, x_axis)).collect(),
    }
}

/// Error-band summary over a set of experiments — the §5.2 numbers
/// ("error between 11% and 13,5%" fork/join, "19% and 23%" Tripathi).
pub fn run_errors(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    let collect = |f: &dyn Fn(&Point) -> f64| -> Vec<(f64, f64)> {
        results
            .iter()
            .flat_map(|r| r.points.iter().map(|p| (f(p), p.measured)))
            .collect()
    };
    let fj = ErrorBand::over(&collect(&|p| p.fork_join));
    let tr = ErrorBand::over(&collect(&|p| p.tripathi));
    let ar = ErrorBand::over(&collect(&|p| p.aria));
    let he = ErrorBand::over(&collect(&|p| p.herodotou));
    out.push_str("| model | error band | mean | points |\n|---|---|---|---|\n");
    for (name, b) in [
        ("Fork/join", fj),
        ("Tripathi", tr),
        ("ARIA (baseline)", ar),
        ("Herodotou (baseline)", he),
    ] {
        out.push_str(&format!(
            "| {name} | {} | {:.1}% | {} |\n",
            b.as_percent_range(),
            b.mean * 100.0,
            b.count
        ));
    }
    out
}

/// The paper's running example (§3.1, Table 1, Figures 6–7): renders the
/// ResourceRequest table, the timeline, and the precedence tree.
pub fn running_example() -> String {
    use hdfs_sim::NodeId;
    use mr2_model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
    use mr2_model::tree::build_tree;
    use yarn_sim::{render_table1, AskTable, Location, Priority, ResourceRequest, ResourceVector};

    let mut out = String::new();
    out.push_str("Running example: n = 3 nodes, m = 4 maps, r = 1 reduce\n\n");

    // Table 1: the ResourceRequest object.
    let mut ask = AskTable::new();
    let x = ResourceVector::new(1024, 1);
    for (loc, n, p) in [
        (Location::Node(NodeId(0)), 2, Priority::MAP),
        (Location::Node(NodeId(1)), 2, Priority::MAP),
        (Location::Any, 4, Priority::MAP),
        (Location::Any, 1, Priority::REDUCE),
    ] {
        ask.update(&ResourceRequest {
            num_containers: n,
            priority: p,
            capability: x,
            location: loc,
            relax_locality: true,
        });
    }
    out.push_str("Table 1 — ResourceRequest object:\n");
    out.push_str(&render_table1(&ask));

    // Figure 6: the timeline.
    let tl = build_timeline(
        &TimelineConfig {
            capacities: vec![1; 3],
            slow_start: true,
        },
        &[TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }],
    );
    out.push_str("\nFigure 6 — timeline (map 10s, sd 2s, merge 6s):\n");
    for s in &tl.segments {
        out.push_str(&format!(
            "  {:?}{} on n{}: [{:>5.1}, {:>5.1})\n",
            s.class,
            s.index + 1,
            s.node,
            s.start,
            s.end
        ));
    }

    // Figure 7: the precedence tree.
    let tree = build_tree(&tl, None, true).expect("non-empty timeline");
    out.push_str(&format!(
        "\nFigure 7 — precedence tree (balanced): {}\n  depth {}, {} leaves\n",
        tree.render(&tl),
        tree.depth(),
        tree.num_leaves()
    ));
    out
}

/// Print solver internals for the fig12@4-nodes point (calibration aid).
pub fn debug_point() {
    use mapreduce_sim::profile::{measure_workload, profile_job};
    use mapreduce_sim::workload::wordcount;
    use mr2_model::input::Estimator;
    use mr2_model::solve;
    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);
    let m = measure_workload(&spec, &cfg, 1, REPS);
    let (profile, result) = profile_job(&spec, &cfg);
    println!("measured median: {:.1}", m.median_response);
    println!(
        "sim profile: map {:.1}s cv {:.2} | ss {:.1}s cv {:.2} | merge {:.1}s cv {:.2}",
        profile.map.mean,
        profile.map.cv,
        profile.shuffle_sort.mean,
        profile.shuffle_sort.cv,
        profile.merge.mean,
        profile.merge.cv
    );
    let maps_start = result
        .map_records()
        .map(|t| t.started_at)
        .fold(f64::INFINITY, f64::min);
    let maps_end = result
        .map_records()
        .map(|t| t.finished_at)
        .fold(0.0f64, f64::max);
    println!(
        "sim: first map start {maps_start:.1}, last map end {maps_end:.1}, job end {:.1}",
        result.finished_at
    );
    for est in [Estimator::ForkJoin, Estimator::Tripathi] {
        let input = mr2_model::model_input(
            &cfg,
            &spec,
            1,
            ModelOptions {
                estimator: est,
                ..ModelOptions::default()
            },
            &Calibration::default(),
            Some(&profile),
        );
        println!(
            "model initial responses: {:?}",
            input.jobs[0].initial_response
        );
        println!("model cvs: {:?}", input.jobs[0].cv);
        let r = solve(&input);
        println!(
            "{est:?}: avg {:.1} | iters {} | converged {} | durations {:?} | makespan {:.1} | depth {:?}",
            r.avg_response, r.iterations, r.converged, r.durations[0], r.makespan, r.tree_depths
        );
    }
}

/// Design-choice ablations on the 5 GB / 1 job / 4 nodes point:
/// P-subtree balancing, slow start, and the overlap factors.
pub fn ablations() -> String {
    use mapreduce_sim::profile::{measure_workload, profile_job};
    use mapreduce_sim::workload::wordcount;
    use mr2_model::input::Estimator;
    use mr2_model::solve;

    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);
    let measured = measure_workload(&spec, &cfg, 1, REPS).median_response;
    let (profile, _) = profile_job(&spec, &cfg);
    let cal = Calibration::default();

    let mut out = String::new();
    out.push_str("## Ablations (5 GB, 1 job, 4 nodes)\n");
    out.push_str(&format!("measured (median of {REPS}): {measured:.1}s\n\n"));
    out.push_str("| variant | fork/join (s) | tripathi (s) | tree depth | iterations |\n|---|---|---|---|---|\n");

    let variants: [(&str, ModelOptions); 4] = [
        ("default", ModelOptions::default()),
        (
            "no P-balancing",
            ModelOptions {
                balance_tree: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no slow start",
            ModelOptions {
                slow_start: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no overlap factors",
            ModelOptions {
                use_overlap_factors: false,
                ..ModelOptions::default()
            },
        ),
    ];
    for (name, opts) in variants {
        let fj = solve(&mr2_model::model_input(
            &cfg,
            &spec,
            1,
            ModelOptions {
                estimator: Estimator::ForkJoin,
                ..opts.clone()
            },
            &cal,
            Some(&profile),
        ));
        let tr = solve(&mr2_model::model_input(
            &cfg,
            &spec,
            1,
            ModelOptions {
                estimator: Estimator::Tripathi,
                ..opts.clone()
            },
            &cal,
            Some(&profile),
        ));
        out.push_str(&format!(
            "| {name} | {:.1} | {:.1} | {} | {} |\n",
            fj.avg_response, tr.avg_response, tr.tree_depths[0], fj.iterations
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("fig99"), None);
    }

    #[test]
    fn figure_scenarios_match_the_paper_grids() {
        for id in ExperimentId::ALL {
            let s = id.scenario();
            s.validate();
            match id {
                ExperimentId::Fig14 => assert_eq!(s.num_points(), 4, "jobs 1..=4"),
                _ => assert_eq!(s.num_points(), 3, "nodes 4,6,8"),
            }
            assert_eq!(s.backends.simulator, Some(REPS));
            assert!(s.backends.analytic && s.backends.profile_calibration);
        }
        assert_eq!(ExperimentId::Fig15.scenario().block_mb, vec![64]);
        let fig11 = ExperimentId::Fig11.scenario().workload_values();
        assert!(fig11.iter().all(|m| m.total_jobs() == 4));
    }

    #[test]
    fn fig12_and_fig14_expand_to_a_shared_configuration() {
        // fig12's 4-node point and fig14's 1-job point are the same
        // configuration field for field, so the process-wide cache can
        // serve one from the other (cross-scenario reuse itself is
        // asserted in mr2-scenario's integration tests).
        let mut pts = mr2_scenario::expand(&ExperimentId::Fig12.scenario());
        let p12 = pts.remove(0);
        let p14 = mr2_scenario::expand(&ExperimentId::Fig14.scenario()).remove(0);
        assert_eq!(p12.nodes, p14.nodes);
        assert_eq!(p12.block_mb, p14.block_mb);
        assert_eq!(p12.mix, p14.mix, "same resolved workload mix");
    }

    #[test]
    fn cache_snapshot_roundtrips_like_a_new_process() {
        // Plant a record in the process-wide cache, snapshot it, and
        // load the snapshot into a fresh cache standing in for the next
        // process: the record must come back bit-identical under the
        // same versioned key.
        let key = mr2_scenario::KeyHasher::versioned()
            .str("bench-snapshot-probe")
            .finish();
        cache().get_or_compute(key, || vec![0.1 + 0.2, 42.0]);
        let dir = std::env::temp_dir().join(format!("mr2bench-cache-{}", std::process::id()));
        let path = save_cache(&dir).unwrap();
        assert_eq!(path, cache_path(&dir));

        let fresh = ResultCache::new();
        assert!(fresh.load(&path).unwrap() >= 1);
        let rec = fresh.get(key).expect("probe survived the snapshot");
        assert_eq!(rec[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(rec[1], 42.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn running_example_renders_paper_artifacts() {
        let s = running_example();
        assert!(s.contains("Table 1"));
        assert!(s.contains("| 1 | 10 |"), "reduce row present:\n{s}");
        assert!(s.contains("Figure 7"));
        assert!(s.contains("S("));
    }
}
