//! Definitions of the paper's experiments (Figures 10–15, Table 1, the
//! §5.2 error bands) and the machinery to run them.

use mapreduce_sim::profile::{measure_workload, profile_job};
use mapreduce_sim::workload::wordcount;
use mapreduce_sim::{SimConfig, GB, MB};
use mr2_model::error::ErrorBand;
use mr2_model::{estimate_workload, Calibration, ModelOptions};

/// Number of repetitions per configuration (paper §5.1: "Each experiment
/// we repeated 5 times and then took the median").
pub const REPS: usize = 5;

/// One point of a sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sweep coordinate (number of nodes, or number of jobs for fig14).
    pub x: f64,
    /// Measured median job response time (the "HadoopSetup" series).
    pub measured: f64,
    /// Fork/join model estimate.
    pub fork_join: f64,
    /// Tripathi model estimate.
    pub tripathi: f64,
    /// ARIA `T_avg` baseline.
    pub aria: f64,
    /// Herodotou static baseline.
    pub herodotou: f64,
}

/// A completed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which experiment.
    pub id: ExperimentId,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The sweep points.
    pub points: Vec<Point>,
}

/// The paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Fig. 10: 1 GB input, 1 job, nodes ∈ {4,6,8}.
    Fig10,
    /// Fig. 11: 1 GB input, 4 jobs, nodes ∈ {4,6,8}.
    Fig11,
    /// Fig. 12: 5 GB input, 1 job, nodes ∈ {4,6,8}.
    Fig12,
    /// Fig. 13: 5 GB input, 4 jobs, nodes ∈ {4,6,8}.
    Fig13,
    /// Fig. 14: 4 nodes, 5 GB, jobs ∈ {1,2,3,4}.
    Fig14,
    /// Fig. 15: 64 MB blocks, 5 GB, 1 job, nodes ∈ {4,6,8}.
    Fig15,
}

impl ExperimentId {
    /// All figure experiments in paper order.
    pub const ALL: [ExperimentId; 6] = [
        ExperimentId::Fig10,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
    ];

    /// Parse a CLI name like "fig10".
    pub fn parse(s: &str) -> Option<ExperimentId> {
        Some(match s {
            "fig10" => ExperimentId::Fig10,
            "fig11" => ExperimentId::Fig11,
            "fig12" => ExperimentId::Fig12,
            "fig13" => ExperimentId::Fig13,
            "fig14" => ExperimentId::Fig14,
            "fig15" => ExperimentId::Fig15,
            _ => return None,
        })
    }

    /// The CLI/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
        }
    }
}

/// One measured+modeled configuration point.
fn run_point(nodes: usize, input_bytes: u64, n_jobs: usize, block_mb: u64) -> Point {
    let mut cfg = SimConfig::paper_testbed(nodes);
    cfg.block_size = block_mb * MB;
    // Reducers: one wave across the cluster, the common sizing rule
    // (#reduces = #nodes); constant per node-count like the paper's setup.
    let spec = wordcount(input_bytes, nodes as u32);

    // Measured: median of REPS seeded runs of the DES (the "real" setup).
    let measured = measure_workload(&spec, &cfg, n_jobs, REPS).median_response;

    // Profile run (single job, fresh cluster) refines the CVs, as the
    // paper's job-profile history would.
    let (profile, _) = profile_job(&spec, &cfg);

    let est = estimate_workload(
        &cfg,
        &spec,
        n_jobs,
        &ModelOptions::default(),
        &Calibration::default(),
        Some(&profile),
    );
    Point {
        x: nodes as f64,
        measured,
        fork_join: est.fork_join,
        tripathi: est.tripathi,
        aria: est.aria,
        herodotou: est.herodotou,
    }
}

/// Run one of the paper's figure experiments.
pub fn run_experiment(id: ExperimentId) -> ExperimentResult {
    let nodes_sweep = [4usize, 6, 8];
    match id {
        ExperimentId::Fig10 => ExperimentResult {
            id,
            title: "Input: 1GB; #jobs: 1".into(),
            x_label: "number of nodes".into(),
            points: nodes_sweep
                .iter()
                .map(|&n| run_point(n, GB, 1, 128))
                .collect(),
        },
        ExperimentId::Fig11 => ExperimentResult {
            id,
            title: "Input: 1GB; #jobs: 4".into(),
            x_label: "number of nodes".into(),
            points: nodes_sweep
                .iter()
                .map(|&n| run_point(n, GB, 4, 128))
                .collect(),
        },
        ExperimentId::Fig12 => ExperimentResult {
            id,
            title: "Input: 5GB; #jobs: 1".into(),
            x_label: "number of nodes".into(),
            points: nodes_sweep
                .iter()
                .map(|&n| run_point(n, 5 * GB, 1, 128))
                .collect(),
        },
        ExperimentId::Fig13 => ExperimentResult {
            id,
            title: "Input: 5GB; #jobs: 4".into(),
            x_label: "number of nodes".into(),
            points: nodes_sweep
                .iter()
                .map(|&n| run_point(n, 5 * GB, 4, 128))
                .collect(),
        },
        ExperimentId::Fig14 => ExperimentResult {
            id,
            title: "#Nodes: 4; Input: 5GB".into(),
            x_label: "number of jobs".into(),
            points: (1..=4usize)
                .map(|jobs| {
                    let mut p = run_point(4, 5 * GB, jobs, 128);
                    p.x = jobs as f64;
                    p
                })
                .collect(),
        },
        ExperimentId::Fig15 => ExperimentResult {
            id,
            title: "Block: 64MB; Input: 5GB; #jobs: 1".into(),
            x_label: "number of nodes".into(),
            points: nodes_sweep
                .iter()
                .map(|&n| run_point(n, 5 * GB, 1, 64))
                .collect(),
        },
    }
}

/// Error-band summary over a set of experiments — the §5.2 numbers
/// ("error between 11% and 13,5%" fork/join, "19% and 23%" Tripathi).
pub fn run_errors(results: &[ExperimentResult]) -> String {
    let mut out = String::new();
    let collect = |f: &dyn Fn(&Point) -> f64| -> Vec<(f64, f64)> {
        results
            .iter()
            .flat_map(|r| r.points.iter().map(|p| (f(p), p.measured)))
            .collect()
    };
    let fj = ErrorBand::over(&collect(&|p| p.fork_join));
    let tr = ErrorBand::over(&collect(&|p| p.tripathi));
    let ar = ErrorBand::over(&collect(&|p| p.aria));
    let he = ErrorBand::over(&collect(&|p| p.herodotou));
    out.push_str("| model | error band | mean | points |\n|---|---|---|---|\n");
    for (name, b) in [
        ("Fork/join", fj),
        ("Tripathi", tr),
        ("ARIA (baseline)", ar),
        ("Herodotou (baseline)", he),
    ] {
        out.push_str(&format!(
            "| {name} | {} | {:.1}% | {} |\n",
            b.as_percent_range(),
            b.mean * 100.0,
            b.count
        ));
    }
    out
}

/// The paper's running example (§3.1, Table 1, Figures 6–7): renders the
/// ResourceRequest table, the timeline, and the precedence tree.
pub fn running_example() -> String {
    use hdfs_sim::NodeId;
    use mr2_model::timeline::{build_timeline, ShuffleSpec, TimelineConfig, TimelineJob};
    use mr2_model::tree::build_tree;
    use yarn_sim::{
        render_table1, AskTable, Location, Priority, ResourceRequest, ResourceVector,
    };

    let mut out = String::new();
    out.push_str("Running example: n = 3 nodes, m = 4 maps, r = 1 reduce\n\n");

    // Table 1: the ResourceRequest object.
    let mut ask = AskTable::new();
    let x = ResourceVector::new(1024, 1);
    for (loc, n, p) in [
        (Location::Node(NodeId(0)), 2, Priority::MAP),
        (Location::Node(NodeId(1)), 2, Priority::MAP),
        (Location::Any, 4, Priority::MAP),
        (Location::Any, 1, Priority::REDUCE),
    ] {
        ask.update(&ResourceRequest {
            num_containers: n,
            priority: p,
            capability: x,
            location: loc,
            relax_locality: true,
        });
    }
    out.push_str("Table 1 — ResourceRequest object:\n");
    out.push_str(&render_table1(&ask));

    // Figure 6: the timeline.
    let tl = build_timeline(
        &TimelineConfig {
            capacities: vec![1; 3],
            slow_start: true,
        },
        &[TimelineJob {
            num_maps: 4,
            num_reduces: 1,
            map_duration: 10.0,
            merge_duration: 6.0,
            shuffle: ShuffleSpec::PerRemoteMap { sd: 2.0, base: 1.0 },
        }],
    );
    out.push_str("\nFigure 6 — timeline (map 10s, sd 2s, merge 6s):\n");
    for s in &tl.segments {
        out.push_str(&format!(
            "  {:?}{} on n{}: [{:>5.1}, {:>5.1})\n",
            s.class,
            s.index + 1,
            s.node,
            s.start,
            s.end
        ));
    }

    // Figure 7: the precedence tree.
    let tree = build_tree(&tl, None, true).expect("non-empty timeline");
    out.push_str(&format!(
        "\nFigure 7 — precedence tree (balanced): {}\n  depth {}, {} leaves\n",
        tree.render(&tl),
        tree.depth(),
        tree.num_leaves()
    ));
    out
}

/// Print solver internals for the fig12@4-nodes point (calibration aid).
pub fn debug_point() {
    use mr2_model::input::Estimator;
    use mr2_model::solve;
    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);
    let m = measure_workload(&spec, &cfg, 1, REPS);
    let (profile, result) = profile_job(&spec, &cfg);
    println!("measured median: {:.1}", m.median_response);
    println!(
        "sim profile: map {:.1}s cv {:.2} | ss {:.1}s cv {:.2} | merge {:.1}s cv {:.2}",
        profile.map.mean, profile.map.cv,
        profile.shuffle_sort.mean, profile.shuffle_sort.cv,
        profile.merge.mean, profile.merge.cv
    );
    let maps_start = result.map_records().map(|t| t.started_at).fold(f64::INFINITY, f64::min);
    let maps_end = result.map_records().map(|t| t.finished_at).fold(0.0f64, f64::max);
    println!("sim: first map start {maps_start:.1}, last map end {maps_end:.1}, job end {:.1}", result.finished_at);
    for est in [Estimator::ForkJoin, Estimator::Tripathi] {
        let input = mr2_model::model_input(
            &cfg, &spec, 1,
            ModelOptions { estimator: est, ..ModelOptions::default() },
            &Calibration::default(), Some(&profile));
        println!("model initial responses: {:?}", input.jobs[0].initial_response);
        println!("model cvs: {:?}", input.jobs[0].cv);
        let r = solve(&input);
        println!(
            "{est:?}: avg {:.1} | iters {} | converged {} | durations {:?} | makespan {:.1} | depth {:?}",
            r.avg_response, r.iterations, r.converged, r.durations[0], r.makespan, r.tree_depths
        );
    }
}

/// Design-choice ablations on the 5 GB / 1 job / 4 nodes point:
/// P-subtree balancing, slow start, and the overlap factors.
pub fn ablations() -> String {
    use mr2_model::input::Estimator;
    use mr2_model::solve;

    let cfg = SimConfig::paper_testbed(4);
    let spec = wordcount(5 * GB, 4);
    let measured = measure_workload(&spec, &cfg, 1, REPS).median_response;
    let (profile, _) = profile_job(&spec, &cfg);
    let cal = Calibration::default();

    let mut out = String::new();
    out.push_str("## Ablations (5 GB, 1 job, 4 nodes)\n");
    out.push_str(&format!("measured (median of {REPS}): {measured:.1}s\n\n"));
    out.push_str("| variant | fork/join (s) | tripathi (s) | tree depth | iterations |\n|---|---|---|---|---|\n");

    let variants: [(&str, ModelOptions); 4] = [
        ("default", ModelOptions::default()),
        (
            "no P-balancing",
            ModelOptions {
                balance_tree: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no slow start",
            ModelOptions {
                slow_start: false,
                ..ModelOptions::default()
            },
        ),
        (
            "no overlap factors",
            ModelOptions {
                use_overlap_factors: false,
                ..ModelOptions::default()
            },
        ),
    ];
    for (name, opts) in variants {
        let fj = solve(&mr2_model::model_input(
            &cfg,
            &spec,
            1,
            ModelOptions {
                estimator: Estimator::ForkJoin,
                ..opts.clone()
            },
            &cal,
            Some(&profile),
        ));
        let tr = solve(&mr2_model::model_input(
            &cfg,
            &spec,
            1,
            ModelOptions {
                estimator: Estimator::Tripathi,
                ..opts.clone()
            },
            &cal,
            Some(&profile),
        ));
        out.push_str(&format!(
            "| {name} | {:.1} | {:.1} | {} | {} |\n",
            fj.avg_response, tr.avg_response, tr.tree_depths[0], fj.iterations
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("fig99"), None);
    }

    #[test]
    fn running_example_renders_paper_artifacts() {
        let s = running_example();
        assert!(s.contains("Table 1"));
        assert!(s.contains("| 1 | 10 |"), "reduce row present:\n{s}");
        assert!(s.contains("Figure 7"));
        assert!(s.contains("S("));
    }
}
