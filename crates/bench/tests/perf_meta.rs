//! Gates on the committed performance metadata: the repo-root
//! `BENCH_TRAJECTORY.json` must parse and keep its invariants, and
//! every committed baseline file must correspond to a declared bench
//! target (an orphan baseline would silently pass the coverage gate
//! while gating nothing).

use std::path::{Path, PathBuf};

use mr2_scenario::json::Json;

fn repo_root() -> PathBuf {
    // crates/bench → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a repo root")
        .to_path_buf()
}

fn trajectory() -> Json {
    let path = repo_root().join("BENCH_TRAJECTORY.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn trajectory_parses_with_expected_schema() {
    let t = trajectory();
    assert_eq!(
        t.get("schema").and_then(Json::as_f64),
        Some(1.0),
        "unknown BENCH_TRAJECTORY.json schema"
    );
    let Some(Json::Arr(entries)) = t.get("entries") else {
        panic!("entries must be an array");
    };
    assert!(!entries.is_empty(), "the trajectory must have data");
}

#[test]
fn trajectory_entries_are_well_formed_and_monotone() {
    let t = trajectory();
    let Some(Json::Arr(entries)) = t.get("entries") else {
        panic!("entries must be an array");
    };
    let mut last_pr = 0.0;
    for (i, e) in entries.iter().enumerate() {
        let pr = e
            .get("pr")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("entry {i}: missing pr"));
        assert!(
            pr > last_pr,
            "entry {i}: pr {pr} not strictly after {last_pr} — keep entries ordered"
        );
        last_pr = pr;
        let Some(Json::Obj(benches)) = e.get("benches") else {
            panic!("entry {i}: benches must be an object");
        };
        assert!(!benches.is_empty(), "entry {i}: no measurements");
        for (id, m) in benches {
            for field in ["before_ns", "after_ns"] {
                let v = m
                    .get(field)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("entry {i} {id}: missing {field}"));
                assert!(
                    v.is_finite() && v > 0.0,
                    "entry {i} {id}: {field} = {v} must be a positive duration"
                );
            }
        }
    }
}

#[test]
fn every_committed_baseline_has_a_bench_target() {
    // A baselines/<name>.json with no [[bench]] target named <name>
    // never runs under the coverage gate: it would assert nothing while
    // looking like it does. Parse the manifest's [[bench]] names and
    // require a target per baseline file.
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = std::fs::read_to_string(manifest_dir.join("Cargo.toml")).unwrap();
    let mut targets = Vec::new();
    let mut in_bench = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_bench = line == "[[bench]]";
            continue;
        }
        if in_bench {
            if let Some(name) = line
                .strip_prefix("name")
                .and_then(|r| r.trim_start().strip_prefix('='))
            {
                targets.push(name.trim().trim_matches('"').to_string());
            }
        }
    }
    assert!(!targets.is_empty(), "no [[bench]] targets parsed");

    let baselines = manifest_dir.join("benches").join("baselines");
    let mut checked = 0;
    for entry in std::fs::read_dir(&baselines).expect("baselines dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        assert!(
            targets.contains(&stem),
            "orphan baseline {}: no [[bench]] target named {stem}",
            path.display()
        );
        // Every baseline target also has its bench source file.
        assert!(
            manifest_dir
                .join("benches")
                .join(format!("{stem}.rs"))
                .exists(),
            "baseline {stem} has a target but no benches/{stem}.rs"
        );
        checked += 1;
    }
    assert!(checked > 0, "no committed baselines found");
}
