//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`,
//! range and tuple strategies, `prop::collection::vec`, [`any`], and
//! [`Strategy::prop_map`]. Cases are generated from a seed derived from
//! the test name, so failures are reproducible; there is no shrinking —
//! a failing case panics with the assertion message directly.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Deterministic per-test case generator.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seed derived from the test name (FNV-1a) so every test draws an
    /// independent, stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }

    fn bits(&mut self) -> u64 {
        self.0.gen()
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                let v = (rng.bits() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.bits()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.bits() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.bits() as usize
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Bounds for [`vec`]'s length: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy generating `Vec`s of `element` with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};

    /// Namespace mirror (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; panics with the message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..9, f in 0.5f64..1.5, n in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (0u32..5, 10u32..20)) {
            prop_assert!(a < 5 && (10..20).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (1u32..5).prop_map(|x| x * 10);
        let mut rng = TestRng::deterministic("prop_map_applies");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let s = 0.0f64..1.0;
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
