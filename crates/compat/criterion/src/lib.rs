//! Offline stand-in for the `criterion` crate — regression-capable.
//!
//! The build environment has no crates.io access, so `cargo bench` targets
//! link against this minimal subset instead: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros and [`black_box`].
//!
//! Timing is wall-clock sampling with **decile outlier rejection**: each
//! benchmark takes `sample_size` samples (each auto-batched to run ≥
//! ~2 ms), sorts them, drops the top and bottom tenth, and reports the
//! median and mean of what remains — so one scheduler hiccup can't move
//! the statistic.
//!
//! Results can be compared against a **committed JSON baseline**, which
//! is what makes `cargo bench` a CI regression gate:
//!
//! ```text
//! MR2_BENCH_RECORD=1  cargo bench   # write benches/baselines/<target>.json
//! MR2_BENCH_COMPARE=1 cargo bench   # exit 1 on >25% median regression
//! ```
//!
//! `MR2_BENCH_DIR` overrides the baseline directory (default:
//! `$CARGO_MANIFEST_DIR/benches/baselines`); `MR2_BENCH_MAX_REGRESSION`
//! overrides the threshold percentage. Baselines are wall-clock numbers
//! and therefore machine-specific: re-record them when the hardware
//! changes.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// The decile-trimmed statistics of one measured benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median per-iteration time of the trimmed samples.
    pub median: Duration,
    /// Mean per-iteration time of the trimmed samples.
    pub trimmed_mean: Duration,
    /// Samples kept after trimming.
    pub kept: usize,
}

/// Sort, drop the top and bottom deciles, and summarize. With fewer
/// than ten samples nothing is trimmed (a decile would round to zero).
pub fn trimmed_stats(samples: &[Duration]) -> Stats {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort();
    let trim = sorted.len() / 10;
    let kept = &sorted[trim..sorted.len() - trim];
    let sum: Duration = kept.iter().sum();
    Stats {
        median: kept[kept.len() / 2],
        trimmed_mean: sum / kept.len() as u32,
        kept: kept.len(),
    }
}

/// One finished benchmark, as recorded for baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` identifier (stable across runs).
    pub id: String,
    /// Trimmed median, nanoseconds.
    pub median_ns: f64,
    /// Trimmed mean, nanoseconds.
    pub trimmed_mean_ns: f64,
}

fn registry() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Passed to the measurement closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    samples: usize,
    /// Statistics of the last `iter` call.
    last: Option<Stats>,
}

impl Bencher {
    /// Measure `routine`: decile-trimmed statistics over `sample_size`
    /// samples of the mean per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample runs ≥ ~2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / batch);
        }
        self.last = Some(trimmed_stats(&per_iter));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `f` as the benchmark `id` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last: None,
        };
        f(&mut b, input);
        report(&self.group_name, &id.name, b.last);
        self
    }

    /// Run `f` as the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last: None,
        };
        f(&mut b);
        report(&self.group_name, &id.name, b.last);
        self
    }

    /// End the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("== group {group_name}");
        BenchmarkGroup {
            criterion: self,
            group_name,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        report("", &id.name, b.last);
        self
    }
}

fn report(group: &str, name: &str, last: Option<Stats>) {
    let id = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    match last {
        Some(s) => {
            println!(
                "{id:<48} median {:>12.2?}/iter  (trimmed mean {:.2?}, {} samples kept)",
                s.median, s.trimmed_mean, s.kept
            );
            registry().lock().unwrap().push(BenchResult {
                id,
                median_ns: s.median.as_nanos() as f64,
                trimmed_mean_ns: s.trimmed_mean.as_nanos() as f64,
            });
        }
        None => println!("{id:<48} (no measurement)"),
    }
}

// ---- baseline persistence & comparison ------------------------------

/// Default regression threshold: fail beyond +25% on the median.
pub const DEFAULT_MAX_REGRESSION_PCT: f64 = 25.0;

/// Render a baseline file (stable key order, pretty enough to diff).
pub fn render_baseline(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"benches\": {\n");
    let sorted: BTreeMap<&str, &BenchResult> = results.iter().map(|r| (r.id.as_str(), r)).collect();
    for (i, (id, r)) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {:.1}, \"trimmed_mean_ns\": {:.1}}}{}\n",
            escape(id),
            r.median_ns,
            r.trimmed_mean_ns,
            if i + 1 < sorted.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse a baseline file back to `id → median_ns`.
///
/// A tiny JSON-subset reader (objects, strings, numbers) sufficient for
/// the format [`render_baseline`] writes; anything else is an error.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut p = Reader {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let top = p.object()?;
    let Some(Value::Obj(benches)) = top.get("benches") else {
        return Err("baseline has no `benches` object".into());
    };
    let mut out = BTreeMap::new();
    for (id, v) in benches {
        let Value::Obj(fields) = v else {
            return Err(format!("bench `{id}` is not an object"));
        };
        let Some(Value::Num(median)) = fields.get("median_ns") else {
            return Err(format!("bench `{id}` has no numeric `median_ns`"));
        };
        out.insert(id.clone(), *median);
    }
    Ok(out)
}

#[derive(Debug)]
enum Value {
    Num(f64),
    Obj(BTreeMap<String, Value>),
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl Reader<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object().map(Value::Obj),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.i;
                while matches!(
                    self.b.get(self.i),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected value at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(map);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(map);
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

/// Compare measured results against a baseline. Returns one line per
/// median regression beyond `max_regression_pct`; improvements never
/// fail. Benchmarks absent from the baseline are a printed note — or a
/// failure when `require_covered` is set, which is how CI catches a
/// suite that outgrew its committed baselines.
pub fn compare_to_baseline(
    results: &[BenchResult],
    baseline: &BTreeMap<String, f64>,
    max_regression_pct: f64,
    require_covered: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in results {
        let Some(&base) = baseline.get(&r.id) else {
            if require_covered {
                failures.push(format!(
                    "UNCOVERED {}: not in the baseline — re-record with MR2_BENCH_RECORD=1",
                    r.id
                ));
            } else {
                println!("baseline: `{}` not in baseline (new benchmark?)", r.id);
            }
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let delta_pct = (r.median_ns / base - 1.0) * 100.0;
        if delta_pct > max_regression_pct {
            failures.push(format!(
                "REGRESSION {}: median {:.0} ns vs baseline {:.0} ns ({:+.1}%, limit +{:.0}%)",
                r.id, r.median_ns, base, delta_pct, max_regression_pct
            ));
        }
    }
    failures
}

/// The bench target's name: `argv[0]` minus cargo's `-<hash>` suffix.
fn bench_target_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

fn baseline_path() -> PathBuf {
    let dir = std::env::var("MR2_BENCH_DIR").unwrap_or_else(|_| {
        format!(
            "{}/benches/baselines",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        )
    });
    Path::new(&dir).join(format!("{}.json", bench_target_name()))
}

/// Called by `criterion_main!` after every group ran: records or checks
/// the baseline depending on `MR2_BENCH_RECORD` / `MR2_BENCH_COMPARE`.
/// Exits non-zero on regression, which is what fails the CI job.
pub fn finalize() {
    let results = registry().lock().unwrap().clone();
    if results.is_empty() {
        return;
    }
    let record = std::env::var("MR2_BENCH_RECORD").is_ok_and(|v| v == "1");
    let compare = std::env::var("MR2_BENCH_COMPARE").is_ok_and(|v| v == "1");
    if !record && !compare {
        return;
    }
    let path = baseline_path();
    if record {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::write(&path, render_baseline(&results)).expect("write baseline");
        println!(
            "baseline: recorded {} benches to {}",
            results.len(),
            path.display()
        );
        return;
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "baseline: cannot read {} ({e}); record one with MR2_BENCH_RECORD=1",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline: {} is malformed: {e}", path.display());
            std::process::exit(1);
        }
    };
    let max_pct = std::env::var("MR2_BENCH_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);
    let require_covered = std::env::var("MR2_BENCH_REQUIRE_COVERED").is_ok_and(|v| v == "1");
    let failures = compare_to_baseline(&results, &baseline, max_pct, require_covered);
    if failures.is_empty() {
        println!(
            "baseline: {} benches within +{max_pct:.0}% of {}",
            results.len(),
            path.display()
        );
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}

/// Bundle benchmark functions into a runner named `$name`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running one or more `criterion_group!`s, then the
/// baseline record/compare pass ([`finalize`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.bench_with_input(BenchmarkId::new("fib", 10), &10u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        g.bench_function("fib_12", |b| b.iter(|| fib(black_box(12))));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    }

    #[test]
    fn group_runs_and_registers() {
        benches();
        let reg = registry().lock().unwrap();
        assert!(reg.iter().any(|r| r.id == "demo/fib/10"));
        assert!(reg.iter().any(|r| r.id == "demo/fib_12"));
    }

    #[test]
    fn bencher_records() {
        let mut b = Bencher {
            samples: 3,
            last: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.last.is_some());
    }

    #[test]
    fn trimming_drops_deciles() {
        // 20 samples: 18 at ~100ns, one absurd spike, one absurd dip.
        let mut samples = vec![Duration::from_nanos(100); 18];
        samples.push(Duration::from_millis(50)); // spike
        samples.push(Duration::from_nanos(1)); // dip
        let s = trimmed_stats(&samples);
        assert_eq!(s.kept, 16, "top/bottom deciles of 20 are 2+2 samples");
        assert_eq!(s.median, Duration::from_nanos(100));
        assert_eq!(s.trimmed_mean, Duration::from_nanos(100), "spike rejected");
        // Small sample counts are untouched.
        assert_eq!(trimmed_stats(&samples[..5]).kept, 5);
    }

    #[test]
    fn baseline_roundtrip_and_comparison() {
        let results = vec![
            BenchResult {
                id: "g/fast".into(),
                median_ns: 100.0,
                trimmed_mean_ns: 101.0,
            },
            BenchResult {
                id: "g/slow".into(),
                median_ns: 5000.0,
                trimmed_mean_ns: 5100.0,
            },
        ];
        let text = render_baseline(&results);
        let baseline = parse_baseline(&text).unwrap();
        assert_eq!(baseline["g/fast"], 100.0);
        assert_eq!(baseline["g/slow"], 5000.0);

        // Identical measurements: no failures.
        assert!(compare_to_baseline(&results, &baseline, 25.0, false).is_empty());

        // +30% on one median: exactly that one fails at the 25% gate.
        let mut regressed = results.clone();
        regressed[0].median_ns = 130.0;
        let failures = compare_to_baseline(&regressed, &baseline, 25.0, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("g/fast"), "{failures:?}");
        assert!(failures[0].contains("+30.0%"), "{failures:?}");
        // …and passes a looser gate.
        assert!(compare_to_baseline(&regressed, &baseline, 50.0, false).is_empty());

        // Improvements and unknown benches never fail by default…
        let mut faster = results.clone();
        faster[1].median_ns = 10.0;
        faster.push(BenchResult {
            id: "g/new".into(),
            median_ns: 1.0,
            trimmed_mean_ns: 1.0,
        });
        assert!(compare_to_baseline(&faster, &baseline, 25.0, false).is_empty());
        // …but an uncovered bench fails when coverage is required.
        let uncovered = compare_to_baseline(&faster, &baseline, 25.0, true);
        assert_eq!(uncovered.len(), 1);
        assert!(uncovered[0].contains("UNCOVERED g/new"), "{uncovered:?}");
    }

    #[test]
    fn baseline_parser_rejects_garbage() {
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("{\"schema\": 1}").is_err());
        assert!(parse_baseline("{\"benches\": {\"x\": {}}}").is_err());
        assert!(parse_baseline("{\"benches\": {\"x\": {\"median_ns\": \"hi\"}}}").is_err());
    }
}
