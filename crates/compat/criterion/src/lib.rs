//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so `cargo bench` targets
//! link against this minimal subset instead: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros and [`black_box`]. Timing
//! is plain wall-clock sampling (median over `sample_size` samples, each
//! auto-sized to run ≥ ~2 ms) with a one-line text report per benchmark —
//! no statistics engine, plots, or regression baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Passed to the measurement closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Measure `routine`: median over `sample_size` samples of the mean
    /// per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample runs ≥ ~2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / batch);
        }
        per_iter.sort();
        self.last = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `f` as the benchmark `id` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last: None,
        };
        f(&mut b, input);
        self.report(&id.name, b.last);
        self
    }

    /// Run `f` as the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last: None,
        };
        f(&mut b);
        self.report(&id.name, b.last);
        self
    }

    fn report(&self, name: &str, last: Option<Duration>) {
        report(&self.group_name, name, last);
    }

    /// End the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored; kept for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("== group {group_name}");
        BenchmarkGroup {
            criterion: self,
            group_name,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        report("", &id.name, b.last);
        self
    }
}

fn report(group: &str, name: &str, last: Option<Duration>) {
    match last {
        Some(d) => println!("{group}/{name:<40} {d:>12.2?}/iter"),
        None => println!("{group}/{name:<40} (no measurement)"),
    }
}

/// Bundle benchmark functions into a runner named `$name`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.bench_with_input(BenchmarkId::new("fib", 10), &10u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        g.bench_function("fib_12", |b| b.iter(|| fib(black_box(12))));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_demo
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn bencher_records() {
        let mut b = Bencher {
            samples: 3,
            last: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.last.is_some());
    }
}
