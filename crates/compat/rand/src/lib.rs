//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this minimal, API-compatible subset of `rand` 0.8: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++
//! seeded through SplitMix64, the same construction the real `SmallRng`
//! uses on 64-bit targets), and [`seq::SliceRandom`]. Only the surface the
//! workspace actually calls is provided. Streams differ from upstream
//! `rand`, but determinism per seed — the property the simulator relies
//! on — holds.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value uniformly from the type's natural range.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded rejection-free mapping (tiny bias
                // is irrelevant for simulation workloads).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection/permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates in-place shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
