//! Job profiles: per-class statistics extracted from executions.
//!
//! The paper's model takes as input the average residence/response times of
//! each task class "from the history of corresponding real Hadoop job
//! executions" (§4.2.1). Here the history comes from profiling runs of the
//! simulator. Classes follow the paper's decomposition (§4.1): **map**,
//! **shuffle-sort** (shuffle + partial sorts), and **merge** (final sort +
//! reduce function + write).

use crate::config::SimConfig;
use crate::driver::{Calendar, ClusterSim};
use crate::job::JobSpec;
use crate::metrics::JobResult;
use simcore::{Samples, Welford};

/// Schema version of the simulator's configuration and measurement
/// outputs.
///
/// Bump whenever a change makes previously simulated results
/// incomparable with fresh ones — a new `SimConfig` field that alters
/// behaviour, a changed RNG stream, a different record layout. Cache
/// layers (crate `mr2-scenario`) bake this into their content hashes,
/// so persisted results from an older simulator silently miss instead
/// of serving stale numbers.
///
/// v2: [`SimPoint`] grew per-class medians for heterogeneous workload
/// mixes and its record gained a class-count field.
///
/// v3: [`eval_mix`] takes per-job submit offsets (trace-driven arrival
/// schedules), [`SimPoint`] grew a makespan statistic (its record a
/// makespan field), and `SimConfig` grew straggler injection
/// (`slow_node_factor`).
pub const SIM_SCHEMA_VERSION: u32 = 3;

/// Duration statistics of one task class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// Mean duration, seconds.
    pub mean: f64,
    /// Coefficient of variation of the duration.
    pub cv: f64,
    /// Number of observations.
    pub count: u64,
}

impl ClassStats {
    /// Stats of an empty class.
    pub const EMPTY: ClassStats = ClassStats {
        mean: 0.0,
        cv: 0.0,
        count: 0,
    };

    fn from_welford(w: &Welford) -> ClassStats {
        ClassStats {
            mean: w.mean(),
            cv: w.cv(),
            count: w.count(),
        }
    }
}

/// Per-class profile of one job execution, in the paper's 3-class
/// decomposition.
#[derive(Debug, Clone)]
pub struct MeasuredProfile {
    /// Map task durations.
    pub map: ClassStats,
    /// Shuffle-sort subtask durations (reduce launch → shuffle complete).
    pub shuffle_sort: ClassStats,
    /// Merge subtask durations (shuffle complete → reduce done).
    pub merge: ClassStats,
    /// Whole-job response time.
    pub response_time: f64,
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reduces: u32,
}

impl MeasuredProfile {
    /// Flat-record length of [`MeasuredProfile::to_record`].
    pub const RECORD_LEN: usize = 12;

    /// The stable serialized form: a flat `f64` record with a fixed
    /// field order (three [`ClassStats`] triples, then response time and
    /// task counts), the unit cache layers and services store and ship.
    pub fn to_record(&self) -> Vec<f64> {
        vec![
            self.map.mean,
            self.map.cv,
            self.map.count as f64,
            self.shuffle_sort.mean,
            self.shuffle_sort.cv,
            self.shuffle_sort.count as f64,
            self.merge.mean,
            self.merge.cv,
            self.merge.count as f64,
            self.response_time,
            self.num_maps as f64,
            self.num_reduces as f64,
        ]
    }

    /// Decode a record written by [`MeasuredProfile::to_record`]; `None`
    /// if the length doesn't match (a corrupt or foreign record).
    pub fn from_record(rec: &[f64]) -> Option<MeasuredProfile> {
        if rec.len() != Self::RECORD_LEN {
            return None;
        }
        let stats = |i: usize| ClassStats {
            mean: rec[i],
            cv: rec[i + 1],
            count: rec[i + 2] as u64,
        };
        Some(MeasuredProfile {
            map: stats(0),
            shuffle_sort: stats(3),
            merge: stats(6),
            response_time: rec[9],
            num_maps: rec[10] as u32,
            num_reduces: rec[11] as u32,
        })
    }

    /// Extract the profile from one job's result.
    pub fn from_result(r: &JobResult) -> MeasuredProfile {
        let mut map = Welford::new();
        for t in r.map_records() {
            map.push(t.duration());
        }
        let mut shuffle = Welford::new();
        let mut merge = Welford::new();
        for t in r.reduce_records() {
            shuffle.push(t.io_phase());
            merge.push(t.tail_phase());
        }
        MeasuredProfile {
            map: ClassStats::from_welford(&map),
            shuffle_sort: ClassStats::from_welford(&shuffle),
            merge: ClassStats::from_welford(&merge),
            response_time: r.response_time(),
            num_maps: map.count() as u32,
            num_reduces: shuffle.count() as u32,
        }
    }
}

/// Run one job alone on a fresh cluster (a profiling run) and return its
/// profile and raw result.
pub fn profile_job(spec: &JobSpec, cfg: &SimConfig) -> (MeasuredProfile, JobResult) {
    let mut sim = ClusterSim::new(cfg.clone());
    sim.add_job(spec.clone(), 0.0);
    let mut results = sim.run();
    let r = results.remove(0);
    (MeasuredProfile::from_result(&r), r)
}

/// Measurement of a workload across repeated seeded runs — the paper's
/// methodology ("Each experiment we repeated 5 times and then took the
/// median of response time", §5.1).
#[derive(Debug, Clone)]
pub struct WorkloadMeasurement {
    /// Mean job response time of each repetition.
    pub per_rep_mean: Vec<f64>,
    /// Median over repetitions of the per-repetition mean response time.
    pub median_response: f64,
    /// Every job result of every repetition, flattened.
    pub all_results: Vec<JobResult>,
}

/// Run `n_jobs` copies of `spec`, all submitted at t = 0, `reps` times with
/// seeds `cfg.seed`, `cfg.seed+1`, …; reports the median of the
/// per-repetition mean job response time.
pub fn measure_workload(
    spec: &JobSpec,
    cfg: &SimConfig,
    n_jobs: usize,
    reps: usize,
) -> WorkloadMeasurement {
    assert!(reps >= 1 && n_jobs >= 1);
    let mut medians = Samples::new();
    let mut per_rep_mean = Vec::with_capacity(reps);
    let mut all = Vec::new();
    let mut calendar = Calendar::for_config(cfg, n_jobs);
    for rep in 0..reps {
        // One span per repetition: a rep is a full cluster simulation,
        // so the span makes rep count and per-rep cost visible in
        // traces and the profiler without measurable overhead.
        let _rep = mr2_obs::span("sim.rep");
        let mut c = cfg.clone();
        c.seed = cfg.seed + rep as u64;
        let mut sim = ClusterSim::with_calendar(c, calendar);
        for _ in 0..n_jobs {
            sim.add_job(spec.clone(), 0.0);
        }
        let results = sim.run();
        calendar = sim.take_calendar();
        let mean = results.iter().map(|r| r.response_time()).sum::<f64>() / results.len() as f64;
        per_rep_mean.push(mean);
        medians.push(mean);
        all.extend(results);
    }
    WorkloadMeasurement {
        per_rep_mean,
        median_response: medians.median(),
        all_results: all,
    }
}

/// Ground-truth numbers of one simulated configuration point — the
/// narrow entry result batch evaluators (crate `mr2-scenario`) consume.
///
/// A point may carry a heterogeneous workload mix; every job class
/// (one per [`eval_mix`] entry, in submission order) gets its own
/// response-time series alongside the aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoint {
    /// Median over repetitions of the per-repetition mean response (the
    /// paper's reported statistic), over *all* jobs of the mix.
    pub median_response: f64,
    /// Mean over repetitions of the per-repetition mean response.
    pub mean_response: f64,
    /// Median over repetitions of the per-repetition makespan: last
    /// finish minus first submission. Under batch arrivals this is the
    /// slowest job's response; under staggered or trace arrivals the two
    /// statistics diverge and both matter (per-job latency vs. how long
    /// the cluster is occupied).
    pub makespan: f64,
    /// Per class, in submission order: median over repetitions of the
    /// per-repetition mean response of that class's jobs. Responses are
    /// measured from each job's *own* submit time.
    pub per_class_median: Vec<f64>,
    /// Per-repetition mean job response times, in seed order.
    pub per_rep_mean: Vec<f64>,
}

impl SimPoint {
    /// The stable serialized form:
    /// `[median, mean, makespan, #classes, per-class medians…, per-rep
    /// means…]`, the unit cache layers and services store and ship.
    /// Variable length (one value per class plus one per repetition).
    pub fn to_record(&self) -> Vec<f64> {
        let mut rec = Vec::with_capacity(4 + self.per_class_median.len() + self.per_rep_mean.len());
        rec.push(self.median_response);
        rec.push(self.mean_response);
        rec.push(self.makespan);
        rec.push(self.per_class_median.len() as f64);
        rec.extend_from_slice(&self.per_class_median);
        rec.extend_from_slice(&self.per_rep_mean);
        rec
    }

    /// Decode a record written by [`SimPoint::to_record`]; `None` if the
    /// record is too short to carry the summary statistics or its class
    /// count doesn't fit (a corrupt or foreign record).
    pub fn from_record(rec: &[f64]) -> Option<SimPoint> {
        let (&median_response, rest) = rec.split_first()?;
        let (&mean_response, rest) = rest.split_first()?;
        let (&makespan, rest) = rest.split_first()?;
        let (&classes, rest) = rest.split_first()?;
        let classes = classes as usize;
        if classes > rest.len() {
            return None;
        }
        let (per_class, per_rep) = rest.split_at(classes);
        Some(SimPoint {
            median_response,
            mean_response,
            makespan,
            per_class_median: per_class.to_vec(),
            per_rep_mean: per_rep.to_vec(),
        })
    }
}

/// Narrow batch-evaluation entry point for a heterogeneous workload
/// mix with an arrival schedule: simulate every class's jobs (`count`
/// copies per `(spec, count)` entry, in entry order) on one cluster,
/// `reps` seeded repetitions, and return aggregate plus per-class
/// summary statistics.
///
/// `submits` gives each job's submission time in seconds, one entry per
/// job in submission order (`submits.len() == Σ count`); an empty slice
/// means batch arrivals — every job at t = 0, the pre-arrival-schedule
/// behaviour, bit-identical to passing explicit zeros. Per-job response
/// times are measured from each job's own submit time; the makespan
/// spans first submission to last finish. Deterministic in
/// `(cfg, classes, submits, reps)` — including `cfg.seed` — which is
/// what makes results content-addressable.
pub fn eval_mix(
    cfg: &SimConfig,
    classes: &[(JobSpec, usize)],
    submits: &[f64],
    reps: usize,
) -> SimPoint {
    assert!(reps >= 1 && !classes.is_empty());
    assert!(classes.iter().all(|&(_, n)| n >= 1), "empty class");
    let total: usize = classes.iter().map(|&(_, n)| n).sum();
    assert!(
        submits.is_empty() || submits.len() == total,
        "need one submit offset per job ({} != {total})",
        submits.len()
    );
    assert!(
        submits.iter().all(|t| t.is_finite() && *t >= 0.0),
        "submit offsets must be finite and non-negative"
    );
    let submit_at = |j: usize| submits.get(j).copied().unwrap_or(0.0);
    let mut medians = Samples::new();
    let mut makespans = Samples::new();
    let mut class_medians: Vec<Samples> = classes.iter().map(|_| Samples::new()).collect();
    let mut per_rep_mean = Vec::with_capacity(reps);
    // One calendar threaded through all repetitions: each rep reuses
    // the previous rep's heap and slab allocations. Clearing between
    // runs keeps the event sequence bit-identical to fresh calendars.
    let mut calendar = Calendar::for_config(cfg, total);
    for rep in 0..reps {
        let _rep = mr2_obs::span("sim.rep");
        let mut c = cfg.clone();
        c.seed = cfg.seed + rep as u64;
        let mut sim = ClusterSim::with_calendar(c, calendar);
        let mut j = 0;
        for (spec, n) in classes {
            for _ in 0..*n {
                sim.add_job(spec.clone(), submit_at(j));
                j += 1;
            }
        }
        let results = sim.run();
        calendar = sim.take_calendar();
        let mean = results.iter().map(|r| r.response_time()).sum::<f64>() / total as f64;
        per_rep_mean.push(mean);
        medians.push(mean);
        let first_submit = results
            .iter()
            .map(|r| r.submitted_at)
            .fold(f64::MAX, f64::min);
        let last_finish = results.iter().map(|r| r.finished_at).fold(0.0, f64::max);
        makespans.push(last_finish - first_submit);
        let mut offset = 0;
        for (ci, &(_, n)) in classes.iter().enumerate() {
            let class = &results[offset..offset + n];
            class_medians[ci].push(class.iter().map(|r| r.response_time()).sum::<f64>() / n as f64);
            offset += n;
        }
    }
    let mean_response = per_rep_mean.iter().sum::<f64>() / reps as f64;
    SimPoint {
        median_response: medians.median(),
        mean_response,
        makespan: makespans.median(),
        per_class_median: class_medians.iter().map(|s| s.median()).collect(),
        per_rep_mean,
    }
}

/// Narrow batch-evaluation entry point: simulate `n_jobs` copies of
/// `spec` on `cfg`, `reps` seeded repetitions, and return the summary
/// statistics. The single-class, batch-arrival convenience over
/// [`eval_mix`] — a 1-entry mix produces the identical submission
/// sequence, so the two forms are bit-identical.
pub fn eval_point(cfg: &SimConfig, spec: &JobSpec, n_jobs: usize, reps: usize) -> SimPoint {
    eval_mix(cfg, &[(spec.clone(), n_jobs)], &[], reps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GB, MB};
    use crate::workload::wordcount;

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 2,
            jitter_cv: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn profile_extraction() {
        let spec = wordcount(512 * MB, 2);
        let (p, r) = profile_job(&spec, &cfg());
        assert_eq!(p.num_maps, 4);
        assert_eq!(p.num_reduces, 2);
        assert!(p.map.mean > 0.0);
        assert!(p.shuffle_sort.mean > 0.0);
        assert!(p.merge.mean > 0.0);
        assert!((p.response_time - r.response_time()).abs() < 1e-12);
        // Deterministic config → small map CV (only placement varies).
        assert!(p.map.cv < 0.5, "cv={}", p.map.cv);
    }

    #[test]
    fn measure_workload_median() {
        let spec = wordcount(256 * MB, 1);
        let m = measure_workload(&spec, &cfg(), 1, 3);
        assert_eq!(m.per_rep_mean.len(), 3);
        assert_eq!(m.all_results.len(), 3);
        let mut sorted = m.per_rep_mean.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert!((m.median_response - sorted[1]).abs() < 1e-12);
    }

    #[test]
    fn reused_calendars_match_fresh_sims_bit_for_bit() {
        // `eval_mix` threads one calendar through all repetitions. Under
        // every arrival shape — batch, staggered schedule, irregular
        // trace offsets — each rep must be bit-identical to a fresh
        // simulator: clearing the calendar resets the event sequence.
        let base = cfg();
        let classes = [
            (wordcount(128 * MB, 1), 2usize),
            (wordcount(256 * MB, 2), 1),
        ];
        let schedules: [&[f64]; 3] = [
            &[],                  // batch (t = 0)
            &[0.0, 30.0, 60.0],   // staggered schedule
            &[5.0, 17.0, 111.25], // trace-style irregular offsets
        ];
        for submits in schedules {
            let p = eval_mix(&base, &classes, submits, 3);
            for rep in 0..3usize {
                let mut c = base.clone();
                c.seed = base.seed + rep as u64;
                let mut sim = ClusterSim::new(c);
                let mut j = 0;
                for (spec, n) in &classes {
                    for _ in 0..*n {
                        sim.add_job(spec.clone(), submits.get(j).copied().unwrap_or(0.0));
                        j += 1;
                    }
                }
                let results = sim.run();
                let mean = results.iter().map(|r| r.response_time()).sum::<f64>() / 3.0;
                assert_eq!(
                    p.per_rep_mean[rep].to_bits(),
                    mean.to_bits(),
                    "rep {rep} under {submits:?} diverged from a fresh simulator"
                );
            }
        }
    }

    #[test]
    fn dirty_calendar_reuse_matches_a_fresh_run() {
        // A calendar taken from a *different* completed workload must
        // behave exactly like a fresh one: `with_calendar` clears it.
        let spec = wordcount(256 * MB, 1);
        let mut fresh = ClusterSim::new(cfg());
        fresh.add_job(spec.clone(), 0.0);
        fresh.add_job(spec.clone(), 45.0);
        let expect = fresh.run();

        let mut other = ClusterSim::new(SimConfig {
            nodes: 3,
            seed: 99,
            ..SimConfig::default()
        });
        other.add_job(wordcount(GB, 2), 0.0);
        other.run();
        let dirty = other.take_calendar();

        let mut reused = ClusterSim::with_calendar(cfg(), dirty);
        reused.add_job(spec.clone(), 0.0);
        reused.add_job(spec, 45.0);
        let got = reused.run();
        assert_eq!(expect.len(), got.len());
        for (e, g) in expect.iter().zip(&got) {
            assert_eq!(e.submitted_at.to_bits(), g.submitted_at.to_bits());
            assert_eq!(e.finished_at.to_bits(), g.finished_at.to_bits());
        }
    }

    #[test]
    fn eval_point_matches_measure_workload() {
        let spec = wordcount(256 * MB, 1);
        let p = eval_point(&cfg(), &spec, 1, 3);
        let m = measure_workload(&spec, &cfg(), 1, 3);
        assert_eq!(p.per_rep_mean, m.per_rep_mean);
        assert!((p.median_response - m.median_response).abs() < 1e-12);
        let mean = m.per_rep_mean.iter().sum::<f64>() / 3.0;
        assert!((p.mean_response - mean).abs() < 1e-12);
    }

    #[test]
    fn eval_mix_reports_per_class_medians_in_submission_order() {
        let light = wordcount(128 * MB, 1);
        let heavy = wordcount(512 * MB, 2);
        let p = eval_mix(&cfg(), &[(light.clone(), 2), (heavy.clone(), 1)], &[], 2);
        assert_eq!(p.per_class_median.len(), 2);
        assert_eq!(p.per_rep_mean.len(), 2);
        assert!(
            p.per_class_median[1] > p.per_class_median[0],
            "the 4× larger job class must respond slower: {:?}",
            p.per_class_median
        );
        // The aggregate mean sits between the class means.
        assert!(p.median_response > p.per_class_median[0]);
        assert!(p.median_response < p.per_class_median[1]);
        // Batch arrivals: the makespan is the slowest job's response.
        assert!(p.makespan >= p.per_class_median[1]);

        // A 1-entry mix is bit-identical to the single-class entry point.
        let a = eval_point(&cfg(), &light, 2, 2);
        let b = eval_mix(&cfg(), &[(light, 2)], &[], 2);
        assert_eq!(a, b);
        assert_eq!(a.per_class_median.len(), 1);
        assert_eq!(
            a.per_class_median[0].to_bits(),
            a.median_response.to_bits(),
            "one class ⇒ class median is the aggregate median"
        );
    }

    #[test]
    fn empty_submits_are_bit_identical_to_explicit_zeros() {
        let spec = wordcount(256 * MB, 1);
        let classes = [(spec.clone(), 2), (wordcount(128 * MB, 1), 1)];
        let a = eval_mix(&cfg(), &classes, &[], 2);
        let b = eval_mix(&cfg(), &classes, &[0.0, 0.0, 0.0], 2);
        assert_eq!(a, b, "batch arrivals are the all-zero offset schedule");
    }

    #[test]
    fn staggered_arrivals_cut_contention_and_stretch_the_makespan() {
        // Two identical jobs: submitted together they contend; submitted
        // far apart each effectively runs alone, so the mean response
        // drops while the makespan grows past the batch makespan.
        let spec = wordcount(512 * MB, 2);
        let classes = [(spec.clone(), 2)];
        let batch = eval_mix(&cfg(), &classes, &[], 1);
        let solo = eval_point(&cfg(), &spec, 1, 1);
        let gap = solo.median_response * 3.0;
        let staggered = eval_mix(&cfg(), &classes, &[0.0, gap], 1);
        assert!(
            staggered.mean_response < batch.mean_response,
            "disjoint windows must relieve contention: staggered {} vs batch {}",
            staggered.mean_response,
            batch.mean_response
        );
        assert!(
            staggered.makespan > batch.makespan,
            "spreading arrivals occupies the cluster longer: {} vs {}",
            staggered.makespan,
            batch.makespan
        );
        // Responses are measured from each job's own submission, so the
        // second job's response is close to running alone.
        assert!(staggered.makespan >= gap + solo.median_response * 0.9);
    }

    #[test]
    fn slow_node_straggles_the_job() {
        // 2 nodes, one of them 4× slower: tasks placed on node 0 run
        // slower, extending the measured response.
        let spec = wordcount(GB, 2);
        let clean = eval_point(&cfg(), &spec, 1, 2);
        let mut slow_cfg = cfg();
        slow_cfg.slow_node_factor = 4.0;
        let slow = eval_point(&slow_cfg, &spec, 1, 2);
        assert!(
            slow.median_response > clean.median_response * 1.2,
            "a 4× slow node must straggle the job: {} vs {}",
            slow.median_response,
            clean.median_response
        );
    }

    #[test]
    #[should_panic(expected = "one submit offset per job")]
    fn eval_mix_rejects_mismatched_submit_lengths() {
        let spec = wordcount(128 * MB, 1);
        eval_mix(&cfg(), &[(spec, 2)], &[0.0], 1);
    }

    #[test]
    fn records_roundtrip_bit_exact() {
        let spec = wordcount(256 * MB, 1);
        let p = eval_mix(
            &cfg(),
            &[(spec.clone(), 1), (wordcount(128 * MB, 1), 1)],
            &[0.0, 2.5],
            2,
        );
        let q = SimPoint::from_record(&p.to_record()).unwrap();
        assert_eq!(q, p);
        assert_eq!(SimPoint::from_record(&[1.0]), None);
        // A class count larger than the payload is a corrupt record.
        assert_eq!(SimPoint::from_record(&[1.0, 1.0, 9.0, 9.0, 1.0]), None);

        let (profile, _) = profile_job(&spec, &cfg());
        let rec = profile.to_record();
        assert_eq!(rec.len(), MeasuredProfile::RECORD_LEN);
        let back = MeasuredProfile::from_record(&rec).unwrap();
        assert_eq!(back.map, profile.map);
        assert_eq!(back.shuffle_sort, profile.shuffle_sort);
        assert_eq!(back.merge, profile.merge);
        assert_eq!(
            back.response_time.to_bits(),
            profile.response_time.to_bits()
        );
        assert_eq!(back.num_maps, profile.num_maps);
        assert_eq!(back.num_reduces, profile.num_reduces);
        assert!(MeasuredProfile::from_record(&rec[..11]).is_none());
    }

    #[test]
    fn multi_job_measurement_reports_mean() {
        let spec = wordcount(256 * MB, 1);
        let m = measure_workload(&spec, &cfg(), 2, 1);
        assert_eq!(m.all_results.len(), 2);
        let mean = m.all_results.iter().map(|r| r.response_time()).sum::<f64>() / 2.0;
        assert!((m.per_rep_mean[0] - mean).abs() < 1e-12);
    }
}
