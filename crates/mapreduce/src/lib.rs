//! # mapreduce-sim — MapReduce-on-YARN execution simulator
//!
//! The repo's substitute for the paper's physical Hadoop 2.x cluster. A
//! discrete-event simulation executes MapReduce jobs end to end: per-job
//! [`appmaster::MrAppMaster`]s negotiate containers with the
//! `yarn-sim` ResourceManager (map priority 20, reduce priority 10, 5%
//! reduce slow start, locality-aware late binding), and task phases consume
//! per-node CPU / disk / NIC fair-share resources so that contention and
//! synchronization delays emerge naturally.
//!
//! Outputs are per-task phase timelines and per-job response times
//! ([`metrics`]), from which `mr2-model` extracts job profiles and against
//! which it validates its estimates (paper §5).

pub mod appmaster;
pub mod config;
pub mod driver;
pub mod job;
pub mod metrics;
pub mod profile;
pub mod workload;

pub use appmaster::{GrantAction, MrAppMaster, TaskState};
pub use config::{SchedulerPolicy, SimConfig, GB, MB};
pub use driver::ClusterSim;
pub use job::{JobId, JobSpec, TaskId};
pub use metrics::{JobResult, TaskRecord};
pub use profile::{eval_mix, eval_point, SimPoint, SIM_SCHEMA_VERSION};
