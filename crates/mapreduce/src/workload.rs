//! Workload presets.
//!
//! The paper evaluates WordCount, a *map-and-reduce-input heavy* job (it
//! cites Shi et al. \[8\] for the classification): large input, large
//! intermediate data. The constants below are calibrated so that simulated
//! task durations land in the ranges the paper's measured response times
//! imply (a 128 MB WordCount map task runs for tens of seconds on the 2014
//! Xeon testbed — tokenization is CPU-bound — and shuffle volume is
//! comparable to input volume).

use crate::config::GB;
use crate::job::JobSpec;

/// WordCount without a combiner: shuffle ≈ input, cheap reduce.
pub fn wordcount(input_bytes: u64, reduces: u32) -> JobSpec {
    JobSpec {
        name: format!("wordcount-{}mb", input_bytes / (1024 * 1024)),
        input_bytes,
        reduces,
        map_cpu_s_per_mb: 0.30,
        reduce_cpu_s_per_mb: 0.03,
        map_output_ratio: 1.0,
        spill_io_factor: 1.0,
        sort_io_factor: 2.0,
        reduce_output_ratio: 0.25,
    }
}

/// The paper's 1 GB WordCount configuration.
pub fn wordcount_1gb(reduces: u32) -> JobSpec {
    wordcount(GB, reduces)
}

/// The paper's 5 GB WordCount configuration.
pub fn wordcount_5gb(reduces: u32) -> JobSpec {
    wordcount(5 * GB, reduces)
}

/// TeraSort-like job: I/O-heavy on both sides, shuffle = input, output =
/// input (replicated) — stresses disks and network rather than CPU.
pub fn terasort(input_bytes: u64, reduces: u32) -> JobSpec {
    JobSpec {
        name: format!("terasort-{}mb", input_bytes / (1024 * 1024)),
        input_bytes,
        reduces,
        map_cpu_s_per_mb: 0.05,
        reduce_cpu_s_per_mb: 0.05,
        map_output_ratio: 1.0,
        spill_io_factor: 1.6, // multiple spill+merge rounds
        sort_io_factor: 2.0,
        reduce_output_ratio: 1.0,
    }
}

/// Grep-like job: map-heavy with tiny intermediate data; the reduce side is
/// almost free.
pub fn grep(input_bytes: u64) -> JobSpec {
    JobSpec {
        name: format!("grep-{}mb", input_bytes / (1024 * 1024)),
        input_bytes,
        reduces: 1,
        map_cpu_s_per_mb: 0.15,
        reduce_cpu_s_per_mb: 0.01,
        map_output_ratio: 0.001,
        spill_io_factor: 1.0,
        sort_io_factor: 2.0,
        reduce_output_ratio: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MB;

    #[test]
    fn presets_validate() {
        wordcount_1gb(4).validate();
        wordcount_5gb(8).validate();
        terasort(GB, 4).validate();
        grep(GB).validate();
    }

    #[test]
    fn wordcount_is_shuffle_heavy() {
        let wc = wordcount_1gb(4);
        assert!(wc.map_output_ratio >= 1.0);
        assert_eq!(wc.total_shuffle_bytes(), GB);
        assert_eq!(wc.num_maps(128 * MB), 8);
    }

    #[test]
    fn grep_is_not() {
        let g = grep(GB);
        assert!(g.total_shuffle_bytes() < 10 * MB);
    }
}
