//! The cluster simulator: wires AMs, the RM, and per-node fair-share
//! resources into one discrete-event loop.
//!
//! This is the repo's stand-in for the paper's *real Hadoop 2.x setup*:
//! the measurements it produces (median job response times over repeated
//! seeds) are what the analytic model's estimates are validated against.
//!
//! Task execution model (phase granularity, per Herodotou's decomposition):
//!
//! * **map**: read split (local disk, or NIC when non-local) → map-function
//!   CPU → spill/merge writes to local disk;
//! * **reduce**: shuffle fetches (one flow per map: local disk read when
//!   the map ran on the same node, otherwise the receiver NIC) → sort
//!   (disk) → reduce-function CPU → output write (disk) → replication
//!   pipeline (NIC).
//!
//! Resource contention is emergent: all flows on a node share its disk,
//! NIC, and CPU fair-share resources, so concurrent tasks slow each other
//! down exactly the way the paper's queueing network is meant to capture.

use crate::appmaster::{GrantAction, MrAppMaster, PhaseMark};
use crate::config::{SchedulerPolicy, SimConfig};
use crate::job::{cpu_seconds, JobId, JobSpec, TaskId};
use crate::metrics::JobResult;
use hdfs_sim::{splits_for_file, DefaultPlacement, Namespace, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simcore::{Engine, FairShare, Rv, SimTime};
use yarn_sim::{
    AnyScheduler, CapacityScheduler, ClusterState, ContainerId, FairScheduler, ResourceManager,
};

/// Which fair-share resource on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResKind {
    /// CPU cores.
    Cpu,
    /// Disk bandwidth.
    Disk,
    /// NIC bandwidth.
    Nic,
}

/// A (resource kind, node) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResKey {
    /// Kind of resource.
    pub kind: ResKind,
    /// Node index.
    pub node: u32,
}

/// Execution phase of a step inside a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Map: read the input split.
    Read,
    /// Map: map-function CPU.
    MapCpu,
    /// Map: spill/merge output to disk.
    Spill,
    /// Reduce: fetch the given map's output partition.
    Fetch(u32),
    /// Reduce: on-disk sort/merge.
    Sort,
    /// Reduce: reduce-function CPU.
    ReduceCpu,
    /// Reduce: write job output locally.
    Write,
    /// Reduce: replication pipeline traffic.
    Replicate,
}

/// One unit of in-flight work on a resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Owning job index.
    pub job: u32,
    /// Owning task.
    pub task: TaskId,
    /// Which phase this step is.
    pub phase: Phase,
}

/// Simulation events.
#[derive(Debug)]
enum Ev {
    Submit(u32),
    Heartbeat(u32),
    ContainerStarted { job: u32, container: ContainerId },
    ResourceTick { res: ResKey, gen: u64 },
}

/// Fair-share resources of one node.
struct NodeRes {
    cpu: FairShare<Step>,
    disk: FairShare<Step>,
    nic: FairShare<Step>,
}

impl NodeRes {
    fn get(&mut self, kind: ResKind) -> &mut FairShare<Step> {
        match kind {
            ResKind::Cpu => &mut self.cpu,
            ResKind::Disk => &mut self.disk,
            ResKind::Nic => &mut self.nic,
        }
    }
}

/// An opaque, reusable event calendar for [`ClusterSim`] runs.
///
/// The event type of the simulator's calendar is private, so callers
/// that run many simulations (profiling reps, sweeps) hold one of
/// these and thread it through [`ClusterSim::with_calendar`] /
/// [`ClusterSim::take_calendar`] — each run then reuses the previous
/// run's heap and slab allocations instead of growing from empty.
#[derive(Default)]
pub struct Calendar(simcore::EventQueue<Ev>);

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Calendar {
        Calendar::default()
    }

    /// An empty calendar pre-sized for `cfg` running `jobs` concurrent
    /// jobs (see [`SimConfig::event_capacity_hint`]).
    pub fn for_config(cfg: &SimConfig, jobs: usize) -> Calendar {
        Calendar(simcore::EventQueue::with_capacity(
            cfg.event_capacity_hint(jobs),
        ))
    }
}

/// Per-reduce shuffle bookkeeping.
#[derive(Debug, Clone, Default)]
struct ReduceShuffle {
    launched: bool,
    fetches_admitted: u32,
    fetches_done: u32,
    bytes: u64,
}

/// The whole-cluster discrete-event simulator.
pub struct ClusterSim {
    /// Configuration the simulator was built with.
    pub cfg: SimConfig,
    topo: Topology,
    ns: Namespace,
    engine: Engine<Ev>,
    rm: ResourceManager<AnyScheduler>,
    nodes: Vec<NodeRes>,
    ams: Vec<MrAppMaster>,
    shuffles: Vec<Vec<ReduceShuffle>>,
    /// Actual map output bytes per (job, map).
    map_out: Vec<Vec<u64>>,
    submit_at: Vec<f64>,
    rng: SmallRng,
    jitter: Option<Rv>,
    /// Map attempts doomed to fail partway through their map-function
    /// CPU phase: (job, map, fraction of CPU work done before dying).
    failing: Vec<(u32, u32, f64)>,
}

impl ClusterSim {
    /// Build an empty cluster from `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_calendar(cfg, Calendar::new())
    }

    /// Build an empty cluster from `cfg` reusing a finished run's event
    /// calendar (see [`Calendar`]). The calendar starts cleared, so the
    /// simulation is bit-identical to one built with
    /// [`ClusterSim::new`]; only the allocations are recycled.
    pub fn with_calendar(cfg: SimConfig, calendar: Calendar) -> Self {
        cfg.validate();
        let topo = Topology::single_rack(cfg.nodes);
        let cluster = ClusterState::homogeneous(topo.clone(), cfg.node_capacity);
        let scheduler = match cfg.scheduler {
            SchedulerPolicy::CapacityFifo => {
                AnyScheduler::Capacity(CapacityScheduler::single_queue())
            }
            SchedulerPolicy::Fair => AnyScheduler::Fair(FairScheduler),
        };
        let rm = ResourceManager::new(cluster, scheduler);
        let nodes = (0..cfg.nodes)
            .map(|i| {
                // Straggler injection: node 0 runs `slow_node_factor`×
                // slower across every resource, so any task placed there
                // straggles the way it would on one degraded machine.
                let slow = if i == 0 { cfg.slow_node_factor } else { 1.0 };
                NodeRes {
                    cpu: FairShare::new(cfg.cpu_cores / slow, 1.0 / slow),
                    disk: FairShare::new(cfg.disk_bw / slow, cfg.disk_bw / slow),
                    nic: FairShare::new(cfg.nic_bw / slow, cfg.nic_bw / slow),
                }
            })
            .collect();
        let jitter = if cfg.jitter_cv > 0.0 {
            Some(Rv::LogNormal {
                mean: 1.0,
                cv: cfg.jitter_cv,
            })
        } else {
            None
        };
        let seed = cfg.seed;
        ClusterSim {
            cfg,
            topo,
            ns: Namespace::new(3),
            engine: Engine::with_queue(calendar.0),
            rm,
            nodes,
            ams: Vec::new(),
            shuffles: Vec::new(),
            map_out: Vec::new(),
            submit_at: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            jitter,
            failing: Vec::new(),
        }
    }

    /// Register a job to be submitted at `submit_at` seconds. Writes its
    /// input file into the simulated HDFS and registers the application.
    pub fn add_job(&mut self, spec: JobSpec, submit_at: f64) -> JobId {
        spec.validate();
        let idx = self.ams.len() as u32;
        let file = self.ns.create_file(
            &self.topo,
            &DefaultPlacement,
            &format!("/job{idx}/input"),
            spec.input_bytes,
            self.cfg.block_size,
            None,
            &mut self.rng,
        );
        let splits = splits_for_file(file);
        let app = self.rm.submit_application(0);
        let reduces = spec.reduces as usize;
        self.ams
            .push(MrAppMaster::new(JobId(idx), spec, app, splits));
        self.shuffles.push(vec![ReduceShuffle::default(); reduces]);
        self.map_out.push(Vec::new());
        self.submit_at.push(submit_at);
        JobId(idx)
    }

    /// Run every registered job to completion; returns per-job results in
    /// submission order.
    pub fn run(&mut self) -> Vec<JobResult> {
        for (i, &t) in self.submit_at.iter().enumerate() {
            self.engine
                .schedule_at(SimTime::from_secs(t), Ev::Submit(i as u32));
        }
        while let Some((t, ev)) = self.engine.next() {
            let now = t.as_secs();
            match ev {
                Ev::Submit(j) => self.on_submit(now, j),
                Ev::Heartbeat(j) => self.on_heartbeat(now, j),
                Ev::ContainerStarted { job, container } => {
                    self.on_container_started(now, job, container)
                }
                Ev::ResourceTick { res, gen } => self.on_resource_tick(t, res, gen),
            }
        }
        assert!(
            self.ams.iter().all(|a| a.done),
            "simulation drained with unfinished jobs — scheduling deadlock"
        );
        self.ams
            .iter()
            .map(|am| JobResult {
                job: am.job.0,
                submitted_at: am.submitted_at,
                am_started_at: am.am_started_at,
                finished_at: am.finished_at,
                tasks: {
                    let mut recs: Vec<_> = am.records.values().cloned().collect();
                    recs.sort_by_key(|r| match r.task {
                        TaskId::Map(i) => (0u8, i),
                        TaskId::Reduce(i) => (1u8, i),
                    });
                    recs
                },
            })
            .collect()
    }

    /// Number of simulation events processed (benchmark metric).
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Extract the event calendar for reuse by a later simulation.
    pub fn take_calendar(&mut self) -> Calendar {
        Calendar(self.engine.take_queue())
    }

    /// Failed task attempts of one job (populated after `run`).
    pub fn ams_failed_attempts(&self, job: usize) -> u32 {
        self.ams[job].failed_attempts
    }

    fn jitter_factor(&mut self) -> f64 {
        match &self.jitter {
            None => 1.0,
            Some(rv) => rv.sample(&mut self.rng).max(0.05),
        }
    }

    fn on_submit(&mut self, now: f64, j: u32) {
        self.ams[j as usize].submitted_at = now;
        self.engine.schedule_in(0.0, Ev::Heartbeat(j));
    }

    fn on_heartbeat(&mut self, now: f64, j: u32) {
        if self.ams[j as usize].done {
            return;
        }
        let (asks, releases, app) = {
            let am = &mut self.ams[j as usize];
            (
                am.build_asks(now, &self.topo, &self.cfg),
                am.take_releases(),
                am.app,
            )
        };
        let resp = self.rm.allocate(app, &asks, &releases);
        for (container, _level) in resp.allocated {
            let action = self.ams[j as usize].on_grant(now, &container);
            match action {
                GrantAction::StartAm => {
                    self.engine.schedule_in(
                        self.cfg.am_startup_delay,
                        Ev::ContainerStarted {
                            job: j,
                            container: container.id,
                        },
                    );
                }
                GrantAction::StartTask(_) => {
                    self.engine.schedule_in(
                        self.cfg.container_launch_delay,
                        Ev::ContainerStarted {
                            job: j,
                            container: container.id,
                        },
                    );
                }
                GrantAction::Release => {
                    self.rm.finish_container(container.id);
                }
            }
        }
        self.engine
            .schedule_in(self.cfg.heartbeat, Ev::Heartbeat(j));
    }

    fn on_container_started(&mut self, now: f64, j: u32, container: ContainerId) {
        if self.ams[j as usize].am_container == Some(container) {
            let am = &mut self.ams[j as usize];
            am.am_started = true;
            am.am_started_at = now;
            return;
        }
        let Some(task) = self.ams[j as usize].on_task_started(now, container) else {
            return; // container of a task that no longer exists
        };
        match task {
            TaskId::Map(i) => self.start_map(now, j, i),
            TaskId::Reduce(i) => self.start_reduce(now, j, i),
        }
    }

    fn start_map(&mut self, now: f64, j: u32, i: u32) {
        let jit = self.jitter_factor();
        // Failure injection: a doomed attempt reads its split, burns part
        // of its map-function CPU, then dies; the AM retries in a fresh
        // container (wasted work is the dominant real-world failure cost).
        let fails = self.cfg.map_failure_prob > 0.0
            && rand::Rng::gen::<f64>(&mut self.rng) < self.cfg.map_failure_prob;
        if fails {
            let progress = rand::Rng::gen_range(&mut self.rng, 0.05..0.95);
            self.failing.push((j, i, progress));
        }
        let am = &self.ams[j as usize];
        let split = &am.splits[i as usize];
        let node = am.map_node[i as usize].expect("assigned map has a node");
        let local = split.hosts.contains(&node);
        let work = split.len as f64 * jit;
        let key = ResKey {
            kind: if local { ResKind::Disk } else { ResKind::Nic },
            node: node.0,
        };
        self.admit(
            now,
            key,
            Step {
                job: j,
                task: TaskId::Map(i),
                phase: Phase::Read,
            },
            work,
        );
    }

    fn start_reduce(&mut self, now: f64, j: u32, i: u32) {
        self.shuffles[j as usize][i as usize].launched = true;
        // Fetch output of every already-completed map.
        let completed: Vec<u32> = (0..self.ams[j as usize].num_maps())
            .filter(|&mi| {
                self.ams[j as usize].state_of(TaskId::Map(mi))
                    == crate::appmaster::TaskState::Completed
            })
            .collect();
        for mi in completed {
            self.admit_fetch(now, j, i, mi);
        }
        self.maybe_start_sort(now, j, i);
    }

    /// Admit the fetch flow of map `mi`'s partition into reduce `ri`.
    fn admit_fetch(&mut self, now: f64, j: u32, ri: u32, mi: u32) {
        let am = &self.ams[j as usize];
        let rnode = am.reduce_node[ri as usize].expect("launched reduce has a node");
        let mnode = am.map_node[mi as usize].expect("completed map has a node");
        let total_out = self.map_out[j as usize][mi as usize];
        let r = am.num_reduces().max(1);
        let bytes = total_out / r as u64;
        let sh = &mut self.shuffles[j as usize][ri as usize];
        sh.fetches_admitted += 1;
        sh.bytes += bytes;
        let key = ResKey {
            kind: if mnode == rnode {
                ResKind::Disk
            } else {
                ResKind::Nic
            },
            node: rnode.0,
        };
        self.admit(
            now,
            key,
            Step {
                job: j,
                task: TaskId::Reduce(ri),
                phase: Phase::Fetch(mi),
            },
            bytes as f64,
        );
    }

    /// When every fetch finished and all maps are done, move to sort.
    fn maybe_start_sort(&mut self, now: f64, j: u32, ri: u32) {
        let am = &self.ams[j as usize];
        let m = am.num_maps();
        let all_maps_done = am.maps_completed == m;
        let sh = &self.shuffles[j as usize][ri as usize];
        if !(sh.launched && all_maps_done && sh.fetches_done == m) {
            return;
        }
        let jit = self.jitter_factor();
        let am = &mut self.ams[j as usize];
        am.mark(TaskId::Reduce(ri), PhaseMark::IoDone, now);
        let node = am.reduce_node[ri as usize].unwrap();
        let bytes = self.shuffles[j as usize][ri as usize].bytes;
        let work = bytes as f64 * am.spec.sort_io_factor * jit;
        self.admit(
            now,
            ResKey {
                kind: ResKind::Disk,
                node: node.0,
            },
            Step {
                job: j,
                task: TaskId::Reduce(ri),
                phase: Phase::Sort,
            },
            work,
        );
    }

    /// Put `work` units on a resource and (re)arm its completion tick.
    fn admit(&mut self, now: f64, key: ResKey, step: Step, work: f64) {
        let t = SimTime::from_secs(now);
        let res = self.nodes[key.node as usize].get(key.kind);
        res.admit(t, step, work);
        let gen = res.generation();
        if let Some(next) = res.next_completion() {
            self.engine
                .schedule_at(next.max(t), Ev::ResourceTick { res: key, gen });
        }
    }

    fn on_resource_tick(&mut self, t: SimTime, key: ResKey, gen: u64) {
        let now = t.as_secs();
        let finished = {
            let res = self.nodes[key.node as usize].get(key.kind);
            if res.generation() != gen {
                return; // stale tick
            }
            res.collect_finished(t)
        };
        for step in finished {
            self.advance(now, key, step);
        }
        // Re-arm.
        let res = self.nodes[key.node as usize].get(key.kind);
        let gen = res.generation();
        if let Some(next) = res.next_completion() {
            self.engine
                .schedule_at(next.max(t), Ev::ResourceTick { res: key, gen });
        }
    }

    /// Advance a task past a finished step.
    fn advance(&mut self, now: f64, key: ResKey, step: Step) {
        let j = step.job;
        match (step.task, step.phase) {
            (TaskId::Map(i), Phase::Read) => {
                let jit = self.jitter_factor();
                let doomed_fraction = self
                    .failing
                    .iter()
                    .find(|&&(fj, fi, _)| fj == j && fi == i)
                    .map(|&(_, _, p)| p);
                let am = &mut self.ams[j as usize];
                am.mark(TaskId::Map(i), PhaseMark::IoDone, now);
                let split_len = am.splits[i as usize].len;
                let work = cpu_seconds(split_len, am.spec.map_cpu_s_per_mb)
                    * jit
                    * doomed_fraction.unwrap_or(1.0);
                self.admit(
                    now,
                    ResKey {
                        kind: ResKind::Cpu,
                        node: key.node,
                    },
                    Step {
                        job: j,
                        task: TaskId::Map(i),
                        phase: Phase::MapCpu,
                    },
                    work,
                );
            }
            (TaskId::Map(i), Phase::MapCpu) => {
                if let Some(pos) = self
                    .failing
                    .iter()
                    .position(|&(fj, fi, _)| fj == j && fi == i)
                {
                    self.failing.swap_remove(pos);
                    self.ams[j as usize].on_task_failed(now, TaskId::Map(i));
                    return;
                }
                let jit = self.jitter_factor();
                let am = &mut self.ams[j as usize];
                am.mark(TaskId::Map(i), PhaseMark::CpuDone, now);
                let split_len = am.splits[i as usize].len;
                let out = am.spec.map_output_bytes(split_len);
                let work = out as f64 * am.spec.spill_io_factor * jit;
                self.admit(
                    now,
                    ResKey {
                        kind: ResKind::Disk,
                        node: key.node,
                    },
                    Step {
                        job: j,
                        task: TaskId::Map(i),
                        phase: Phase::Spill,
                    },
                    work,
                );
            }
            (TaskId::Map(i), Phase::Spill) => {
                let out = {
                    let am = &self.ams[j as usize];
                    am.spec.map_output_bytes(am.splits[i as usize].len)
                };
                let outs = &mut self.map_out[j as usize];
                if outs.len() <= i as usize {
                    outs.resize(self.ams[j as usize].num_maps() as usize, 0);
                }
                outs[i as usize] = out;
                let job_done = self.ams[j as usize].on_task_finished(now, TaskId::Map(i));
                // Feed running reduces.
                let launched: Vec<u32> = (0..self.ams[j as usize].num_reduces())
                    .filter(|&ri| {
                        let sh = &self.shuffles[j as usize][ri as usize];
                        sh.launched && sh.fetches_done < self.ams[j as usize].num_maps()
                    })
                    .collect();
                for ri in launched {
                    self.admit_fetch(now, j, ri, i);
                    // A reduce whose fetches were already all done may now
                    // see all maps complete.
                    self.maybe_start_sort(now, j, ri);
                }
                if job_done {
                    self.finish_job(now, j);
                }
            }
            (TaskId::Reduce(ri), Phase::Fetch(_mi)) => {
                self.shuffles[j as usize][ri as usize].fetches_done += 1;
                self.maybe_start_sort(now, j, ri);
            }
            (TaskId::Reduce(ri), Phase::Sort) => {
                let jit = self.jitter_factor();
                let am = &self.ams[j as usize];
                let bytes = self.shuffles[j as usize][ri as usize].bytes;
                let work = cpu_seconds(bytes, am.spec.reduce_cpu_s_per_mb) * jit;
                self.admit(
                    now,
                    ResKey {
                        kind: ResKind::Cpu,
                        node: key.node,
                    },
                    Step {
                        job: j,
                        task: TaskId::Reduce(ri),
                        phase: Phase::ReduceCpu,
                    },
                    work,
                );
            }
            (TaskId::Reduce(ri), Phase::ReduceCpu) => {
                let jit = self.jitter_factor();
                let am = &mut self.ams[j as usize];
                am.mark(TaskId::Reduce(ri), PhaseMark::CpuDone, now);
                let bytes = self.shuffles[j as usize][ri as usize].bytes;
                let out = (bytes as f64 * am.spec.reduce_output_ratio).round();
                self.admit(
                    now,
                    ResKey {
                        kind: ResKind::Disk,
                        node: key.node,
                    },
                    Step {
                        job: j,
                        task: TaskId::Reduce(ri),
                        phase: Phase::Write,
                    },
                    out * jit,
                );
            }
            (TaskId::Reduce(ri), Phase::Write) => {
                let repl_bytes = {
                    let am = &self.ams[j as usize];
                    let bytes = self.shuffles[j as usize][ri as usize].bytes;
                    let out = bytes as f64 * am.spec.reduce_output_ratio;
                    out * (self.cfg.replication.saturating_sub(1)) as f64
                };
                if repl_bytes > 0.0 {
                    self.admit(
                        now,
                        ResKey {
                            kind: ResKind::Nic,
                            node: key.node,
                        },
                        Step {
                            job: j,
                            task: TaskId::Reduce(ri),
                            phase: Phase::Replicate,
                        },
                        repl_bytes,
                    );
                } else if self.ams[j as usize].on_task_finished(now, TaskId::Reduce(ri)) {
                    self.finish_job(now, j);
                }
            }
            (TaskId::Reduce(ri), Phase::Replicate) => {
                if self.ams[j as usize].on_task_finished(now, TaskId::Reduce(ri)) {
                    self.finish_job(now, j);
                }
            }
            (task, phase) => unreachable!("impossible step {task:?}/{phase:?}"),
        }
    }

    fn finish_job(&mut self, _now: f64, j: u32) {
        let app = self.ams[j as usize].app;
        self.rm.unregister_application(app);
        // Kick other AMs' pending asks: capacity freed by this job can be
        // granted at their next heartbeat (already scheduled).
        self.rm.schedule();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GB, MB};
    use crate::workload::{grep, wordcount};

    fn quiet_cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            jitter_cv: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_small_job_completes() {
        let mut sim = ClusterSim::new(quiet_cfg(2));
        sim.add_job(wordcount(256 * MB, 2), 0.0);
        let results = sim.run();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.response_time() > 0.0);
        assert_eq!(r.map_records().count(), 2);
        assert_eq!(r.reduce_records().count(), 2);
        // Phase boundaries are monotone for every task.
        for t in &r.tasks {
            assert!(t.assigned_at >= t.scheduled_at);
            assert!(t.started_at >= t.assigned_at);
            assert!(t.io_done_at >= t.started_at);
            assert!(t.finished_at >= t.io_done_at, "{t:?}");
        }
    }

    #[test]
    fn one_byte_tail_split_terminates() {
        // 256 MB + 1 byte: two full splits plus a degenerate 1-byte third
        // split. The 1-byte read used to strand a sub-ulp residual on the
        // disk fair-share late in the run, freezing the event calendar at
        // one timestamp (seeds 0 and 1 hung; seed 2 happened to pass).
        for seed in 0..3 {
            let mut sim = ClusterSim::new(SimConfig {
                seed,
                ..SimConfig::default()
            });
            sim.add_job(wordcount(256 * MB + 1, 2), 0.0);
            let results = sim.run();
            assert!(results[0].response_time() > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn map_only_job_completes() {
        let mut sim = ClusterSim::new(quiet_cfg(2));
        let mut spec = grep(256 * MB);
        spec.reduces = 0;
        sim.add_job(spec, 0.0);
        let results = sim.run();
        assert_eq!(results[0].reduce_records().count(), 0);
        assert!(results[0].response_time() > 0.0);
    }

    #[test]
    fn determinism_same_seed() {
        let run = || {
            let mut sim = ClusterSim::new(SimConfig {
                seed: 42,
                ..quiet_cfg(3)
            });
            sim.add_job(wordcount(512 * MB, 2), 0.0);
            sim.run()[0].response_time()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_changes_placement_or_jitter() {
        let run = |seed| {
            let mut sim = ClusterSim::new(SimConfig {
                seed,
                jitter_cv: 0.2,
                ..SimConfig::default()
            });
            sim.add_job(wordcount(GB, 4), 0.0);
            sim.run()[0].response_time()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn more_nodes_is_faster_for_big_jobs() {
        let resp = |nodes| {
            let mut sim = ClusterSim::new(quiet_cfg(nodes));
            sim.add_job(wordcount(2 * GB, nodes as u32), 0.0);
            sim.run()[0].response_time()
        };
        let r4 = resp(4);
        let r8 = resp(8);
        assert!(
            r8 < r4,
            "8 nodes should beat 4 nodes: r4={r4:.1}s r8={r8:.1}s"
        );
    }

    #[test]
    fn concurrent_jobs_slow_each_other() {
        let one = {
            let mut sim = ClusterSim::new(quiet_cfg(4));
            sim.add_job(wordcount(GB, 4), 0.0);
            sim.run()[0].response_time()
        };
        let four = {
            let mut sim = ClusterSim::new(quiet_cfg(4));
            for _ in 0..4 {
                sim.add_job(wordcount(GB, 4), 0.0);
            }
            let rs = {
                let mut sim_results = sim.run();
                sim_results
                    .drain(..)
                    .map(|r| r.response_time())
                    .sum::<f64>()
                    / 4.0
            };
            rs
        };
        assert!(
            four > 1.5 * one,
            "4 concurrent jobs must contend: one={one:.1}s four_avg={four:.1}s"
        );
    }

    #[test]
    fn failure_injection_retries_and_completes() {
        // 14 maps on 7 task containers: two exactly full waves, so a
        // retry cannot hide in idle capacity and must extend the job.
        let input = 14 * 128 * MB;
        let cfg = SimConfig {
            map_failure_prob: 0.3,
            ..quiet_cfg(2)
        };
        let mut sim = ClusterSim::new(cfg);
        sim.add_job(wordcount(input, 2), 0.0);
        let with_failures = sim.run()[0].response_time();
        let failed = sim.ams_failed_attempts(0);
        assert!(
            failed > 0,
            "with p=0.3 over 14 maps some attempt should fail"
        );

        let mut clean = ClusterSim::new(quiet_cfg(2));
        clean.add_job(wordcount(input, 2), 0.0);
        let without = clean.run()[0].response_time();
        assert!(
            with_failures > without,
            "retries must cost time: {with_failures:.1} vs {without:.1}"
        );
    }

    #[test]
    fn fair_scheduler_interleaves_jobs() {
        use crate::config::SchedulerPolicy;
        // Under FIFO the first job finishes far earlier than the second;
        // under fair sharing they finish close together.
        let run = |policy: SchedulerPolicy| {
            let mut sim = ClusterSim::new(SimConfig {
                scheduler: policy,
                ..quiet_cfg(2)
            });
            for _ in 0..2 {
                sim.add_job(wordcount(2 * GB, 2), 0.0);
            }
            let r = sim.run();
            (r[0].response_time(), r[1].response_time())
        };
        let (fifo_a, fifo_b) = run(SchedulerPolicy::CapacityFifo);
        let (fair_a, fair_b) = run(SchedulerPolicy::Fair);
        let fifo_gap = (fifo_b - fifo_a).abs();
        let fair_gap = (fair_b - fair_a).abs();
        assert!(
            fair_gap < fifo_gap,
            "fair should even out completions: fifo gap {fifo_gap:.1}, fair gap {fair_gap:.1}"
        );
        // Fair sharing delays the first job relative to FIFO.
        assert!(fair_a > fifo_a);
    }

    #[test]
    fn slow_start_makes_shuffle_overlap_maps() {
        // With slow start, the first reduce is assigned before the last map
        // finishes (for a job with enough maps).
        let mut sim = ClusterSim::new(quiet_cfg(2));
        sim.add_job(wordcount(2 * GB, 2), 0.0); // 16 maps on 16 containers
        let results = sim.run();
        let r = &results[0];
        let last_map_end = r
            .map_records()
            .map(|t| t.finished_at)
            .fold(0.0f64, f64::max);
        let first_reduce_assigned = r
            .reduce_records()
            .map(|t| t.assigned_at)
            .fold(f64::INFINITY, f64::min);
        assert!(
            first_reduce_assigned < last_map_end,
            "slow start should overlap shuffle with maps: reduce assigned {first_reduce_assigned:.1}, last map {last_map_end:.1}"
        );
    }
}
