//! Job specifications: the dataflow statistics of one MapReduce job.

use crate::config::MB;

/// Index of a job within a simulated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// A task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// The `i`-th map task.
    Map(u32),
    /// The `i`-th reduce task.
    Reduce(u32),
}

/// Dataflow description of a MapReduce job — the "job profile" statistics
/// the paper's model consumes, expressed per byte of input so they hold for
/// any input size.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Total input bytes (split into blocks by the cluster config).
    pub input_bytes: u64,
    /// Number of reduce tasks (user parameter in Hadoop; 0 = map-only).
    pub reduces: u32,
    /// Map function CPU cost, seconds per MB of input.
    pub map_cpu_s_per_mb: f64,
    /// Reduce function CPU cost, seconds per MB of reduce input.
    pub reduce_cpu_s_per_mb: f64,
    /// Map output bytes per input byte (after combiner, if any).
    pub map_output_ratio: f64,
    /// Disk bytes written per map-output byte during collect/spill/merge.
    pub spill_io_factor: f64,
    /// Disk bytes moved per shuffled byte during the reduce-side sort.
    pub sort_io_factor: f64,
    /// Job output bytes per reduce-input byte.
    pub reduce_output_ratio: f64,
}

impl JobSpec {
    /// Number of map tasks for a given block size (= input splits).
    pub fn num_maps(&self, block_size: u64) -> u32 {
        self.input_bytes.div_ceil(block_size) as u32
    }

    /// Bytes of map output produced by a map over `split_bytes` of input.
    pub fn map_output_bytes(&self, split_bytes: u64) -> u64 {
        (split_bytes as f64 * self.map_output_ratio).round() as u64
    }

    /// Total intermediate bytes for the whole job.
    pub fn total_shuffle_bytes(&self) -> u64 {
        (self.input_bytes as f64 * self.map_output_ratio).round() as u64
    }

    /// Mean reduce-input bytes per reduce task.
    pub fn reduce_input_bytes(&self) -> u64 {
        if self.reduces == 0 {
            0
        } else {
            self.total_shuffle_bytes() / self.reduces as u64
        }
    }

    /// Validate ranges; panics with a description on nonsense.
    pub fn validate(&self) {
        assert!(self.input_bytes > 0, "empty input");
        assert!(self.map_cpu_s_per_mb >= 0.0 && self.reduce_cpu_s_per_mb >= 0.0);
        assert!(self.map_output_ratio >= 0.0);
        assert!(self.spill_io_factor >= 0.0 && self.sort_io_factor >= 0.0);
        assert!(self.reduce_output_ratio >= 0.0);
    }
}

/// Seconds of CPU work for `bytes` at `s_per_mb`.
pub fn cpu_seconds(bytes: u64, s_per_mb: f64) -> f64 {
    bytes as f64 / MB as f64 * s_per_mb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GB;

    fn spec() -> JobSpec {
        JobSpec {
            name: "t".into(),
            input_bytes: GB,
            reduces: 4,
            map_cpu_s_per_mb: 0.5,
            reduce_cpu_s_per_mb: 0.1,
            map_output_ratio: 0.5,
            spill_io_factor: 1.0,
            sort_io_factor: 2.0,
            reduce_output_ratio: 0.5,
        }
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert_eq!(s.num_maps(128 * MB), 8);
        assert_eq!(s.num_maps(64 * MB), 16);
        assert_eq!(s.map_output_bytes(128 * MB), 64 * MB);
        assert_eq!(s.total_shuffle_bytes(), GB / 2);
        assert_eq!(s.reduce_input_bytes(), GB / 8);
        s.validate();
    }

    #[test]
    fn map_only_job() {
        let mut s = spec();
        s.reduces = 0;
        assert_eq!(s.reduce_input_bytes(), 0);
    }

    #[test]
    fn cpu_seconds_scale() {
        assert!((cpu_seconds(128 * MB, 0.5) - 64.0).abs() < 1e-9);
    }
}
