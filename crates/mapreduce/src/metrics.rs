//! Measurement records produced by a simulation run.
//!
//! These play the role of the paper's "measurements in a real Hadoop 2.x
//! setup": per-task phase boundaries and per-job response times, from which
//! job profiles (means, CVs, per-resource demands) are extracted.

use crate::job::TaskId;
use hdfs_sim::NodeId;

/// Phase boundaries of one executed task (absolute simulation seconds).
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Which task.
    pub task: TaskId,
    /// Node its container ran on.
    pub node: NodeId,
    /// When the AM put the request on the wire (scheduled, §3.4 vocabulary).
    pub scheduled_at: f64,
    /// When a container was assigned.
    pub assigned_at: f64,
    /// When the container finished launching and work began.
    pub started_at: f64,
    /// Map: end of input read. Reduce: end of shuffle (last fetch done).
    pub io_done_at: f64,
    /// Map: end of map-function CPU. Reduce: end of sort+reduce CPU.
    pub cpu_done_at: f64,
    /// Task fully complete (spill / output write done).
    pub finished_at: f64,
}

impl TaskRecord {
    /// Wall-clock duration of the task body (excludes container wait).
    pub fn duration(&self) -> f64 {
        self.finished_at - self.started_at
    }

    /// Container queueing delay: from ask to assignment.
    pub fn container_wait(&self) -> f64 {
        self.assigned_at - self.scheduled_at
    }

    /// For reduce tasks: the shuffle-sort subtask duration in the paper's
    /// decomposition (launch → shuffle complete). For maps: read phase.
    pub fn io_phase(&self) -> f64 {
        self.io_done_at - self.started_at
    }

    /// Remaining (merge / cpu+write) portion.
    pub fn tail_phase(&self) -> f64 {
        self.finished_at - self.io_done_at
    }
}

/// Outcome of one job in one simulation run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job in the workload.
    pub job: u32,
    /// Submission time.
    pub submitted_at: f64,
    /// When the AM container started.
    pub am_started_at: f64,
    /// When the last reduce (or map, for map-only jobs) finished.
    pub finished_at: f64,
    /// Per-task records, maps first.
    pub tasks: Vec<TaskRecord>,
}

impl JobResult {
    /// The paper's target metric: job response time (submission → done).
    pub fn response_time(&self) -> f64 {
        self.finished_at - self.submitted_at
    }

    /// Records of map tasks.
    pub fn map_records(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks
            .iter()
            .filter(|t| matches!(t.task, TaskId::Map(_)))
    }

    /// Records of reduce tasks.
    pub fn reduce_records(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks
            .iter()
            .filter(|t| matches!(t.task, TaskId::Reduce(_)))
    }

    /// Mean map duration.
    pub fn mean_map_duration(&self) -> f64 {
        mean(self.map_records().map(|t| t.duration()))
    }

    /// Mean reduce duration.
    pub fn mean_reduce_duration(&self) -> f64 {
        mean(self.reduce_records().map(|t| t.duration()))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut s = 0.0;
    for x in it {
        n += 1;
        s += x;
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: TaskId, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            task,
            node: NodeId(0),
            scheduled_at: start - 1.0,
            assigned_at: start - 0.5,
            started_at: start,
            io_done_at: start + 1.0,
            cpu_done_at: end - 0.5,
            finished_at: end,
        }
    }

    #[test]
    fn durations_and_means() {
        let r = JobResult {
            job: 0,
            submitted_at: 0.0,
            am_started_at: 2.0,
            finished_at: 30.0,
            tasks: vec![
                rec(TaskId::Map(0), 5.0, 15.0),
                rec(TaskId::Map(1), 5.0, 25.0),
                rec(TaskId::Reduce(0), 16.0, 30.0),
            ],
        };
        assert_eq!(r.response_time(), 30.0);
        assert_eq!(r.map_records().count(), 2);
        assert!((r.mean_map_duration() - 15.0).abs() < 1e-12);
        assert!((r.mean_reduce_duration() - 14.0).abs() < 1e-12);
        let t = &r.tasks[0];
        assert!((t.container_wait() - 0.5).abs() < 1e-12);
        assert!((t.io_phase() - 1.0).abs() < 1e-12);
    }
}
