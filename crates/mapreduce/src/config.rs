//! Cluster and simulator configuration.
//!
//! Defaults mirror the paper's testbed (§5.1): nodes with 2× Xeon E5-2630L
//! v2 (12 physical cores), 128 GB RAM, one SATA disk, gigabit Ethernet —
//! and stock Hadoop 2.x settings (8 containers of 1 GB / 1 vcore per node,
//! 5% reduce slow start, 1 s AM heartbeat).

use yarn_sim::ResourceVector;

/// Which RM scheduler the simulated cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Capacity scheduler with a single root queue — FIFO across
    /// applications; the paper's assumed configuration.
    #[default]
    CapacityFifo,
    /// Max–min fair sharing across applications.
    Fair,
}

/// Everything the simulator needs to know about the cluster and Hadoop
/// configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Worker node count (the paper sweeps 4, 6, 8).
    pub nodes: usize,
    /// Resources each NodeManager advertises. Calibrated to 4 task
    /// containers per node so that measured multi-job contention matches
    /// the paper's reported slowdowns (see EXPERIMENTS.md).
    pub node_capacity: ResourceVector,
    /// Task container size (stock: 1024 MB / 1 vcore).
    pub container_size: ResourceVector,
    /// MRAppMaster container size.
    pub am_container_size: ResourceVector,
    /// Whether the AM occupies a container (true on a real cluster; turning
    /// it off matches the analytic model's simplification).
    pub include_am_container: bool,
    /// Physical cores per node backing the CPU fair-share resource.
    pub cpu_cores: f64,
    /// Aggregate disk bandwidth per node, bytes/s.
    pub disk_bw: f64,
    /// NIC bandwidth per node, bytes/s.
    pub nic_bw: f64,
    /// HDFS replication factor.
    pub replication: usize,
    /// HDFS block size in bytes (also the input split size).
    pub block_size: u64,
    /// AM ↔ RM heartbeat period, seconds.
    pub heartbeat: f64,
    /// Container localization + JVM start latency, seconds.
    pub container_launch_delay: f64,
    /// Time from application submission to the AM's first ask, seconds.
    pub am_startup_delay: f64,
    /// Fraction of maps that must complete before reduces are requested
    /// (`mapreduce.job.reduce.slowstart.completedmaps`, default 0.05).
    pub slowstart: f64,
    /// Coefficient of variation of per-phase work jitter (0 = deterministic).
    pub jitter_cv: f64,
    /// Probability that a map attempt fails mid-read and is re-executed
    /// (YARN re-requests a container for the retry).
    pub map_failure_prob: f64,
    /// Straggler injection: node 0's CPU, disk, and NIC run this factor
    /// *slower* than the rest of the cluster (1.0 = homogeneous, the
    /// default). Tasks placed there straggle, extending job tails the
    /// way one degraded machine does on a real cluster; the analytic
    /// model assumes homogeneous nodes and ignores it.
    pub slow_node_factor: f64,
    /// RM scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// RNG seed; two runs with equal config and seed are identical.
    pub seed: u64,
}

/// Mebibyte, in bytes.
pub const MB: u64 = 1024 * 1024;
/// Gibibyte, in bytes.
pub const GB: u64 = 1024 * MB;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 4,
            node_capacity: ResourceVector::new(4096, 4),
            container_size: ResourceVector::new(1024, 1),
            am_container_size: ResourceVector::new(1024, 1),
            include_am_container: true,
            cpu_cores: 12.0,
            disk_bw: 120.0e6,
            nic_bw: 125.0e6,
            replication: 3,
            block_size: 128 * MB,
            heartbeat: 1.0,
            container_launch_delay: 2.0,
            am_startup_delay: 3.0,
            slowstart: 0.05,
            jitter_cv: 0.28,
            map_failure_prob: 0.0,
            slow_node_factor: 1.0,
            scheduler: SchedulerPolicy::default(),
            seed: 1,
        }
    }
}

impl SimConfig {
    /// Config matching the paper's testbed with `nodes` workers.
    pub fn paper_testbed(nodes: usize) -> Self {
        SimConfig {
            nodes,
            ..SimConfig::default()
        }
    }

    /// Max task containers that fit on one node (the paper's
    /// `pMaxMapsPerNode`).
    pub fn containers_per_node(&self) -> u32 {
        self.node_capacity.count_fitting(&self.container_size)
    }

    /// Total task containers in the cluster (ignoring AM overhead).
    pub fn total_containers(&self) -> u32 {
        self.containers_per_node() * self.nodes as u32
    }

    /// A sizing hint for the event calendar: roughly how many events
    /// can be pending at once with `jobs` concurrent jobs — one submit
    /// and one heartbeat per job, one tick per fair-share resource
    /// (three per node), and one start event per in-flight container.
    pub fn event_capacity_hint(&self, jobs: usize) -> usize {
        2 * jobs + 3 * self.nodes + self.total_containers() as usize
    }

    /// Sanity-check invariants; panics with a description on nonsense.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(
            self.containers_per_node() > 0,
            "containers must fit on nodes"
        );
        assert!(self.cpu_cores > 0.0 && self.disk_bw > 0.0 && self.nic_bw > 0.0);
        assert!((0.0..=1.0).contains(&self.slowstart), "slowstart in [0,1]");
        assert!(self.replication >= 1);
        assert!(self.block_size > 0);
        assert!(self.jitter_cv >= 0.0);
        assert!(
            (0.0..1.0).contains(&self.map_failure_prob),
            "failure prob in [0,1)"
        );
        assert!(
            self.slow_node_factor.is_finite() && self.slow_node_factor >= 1.0,
            "slow node factor must be a finite slowdown >= 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.containers_per_node(), 4);
        assert_eq!(c.total_containers(), 16);
    }

    #[test]
    fn containers_per_node_binds_on_min_dimension() {
        let mut c = SimConfig {
            node_capacity: ResourceVector::new(16384, 4),
            ..SimConfig::default()
        };
        assert_eq!(c.containers_per_node(), 4); // vcore-bound
        c.container_size = ResourceVector::new(4096, 1);
        assert_eq!(c.containers_per_node(), 4); // memory-bound
    }

    #[test]
    #[should_panic(expected = "slow node factor")]
    fn validate_rejects_speedup_slow_node_factor() {
        let c = SimConfig {
            slow_node_factor: 0.5,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "slowstart")]
    fn validate_rejects_bad_slowstart() {
        let c = SimConfig {
            slowstart: 1.5,
            ..SimConfig::default()
        };
        c.validate();
    }
}
