//! The MapReduce ApplicationMaster.
//!
//! Re-implements the scheduling behaviour of Hadoop's
//! `RMContainerAllocator` that the paper extracts from the source code
//! (§3.3–3.4):
//!
//! * map containers are requested at priority 20, reduce containers at
//!   priority 10 (higher numeric value served first, paper convention);
//! * map requests carry node-locality rows derived from split replica
//!   hosts plus the authoritative `*` row;
//! * reduces are *slow-started*: none are requested until the configured
//!   fraction of maps completed (default 5%); afterwards they ramp with
//!   map progress and are all requested once every map is assigned;
//! * tasks move pending → scheduled → assigned → completed (Figs. 2–3);
//! * the AM performs second-level scheduling (late binding): an arriving
//!   container is matched to whichever pending task has data closest to
//!   it, falling back from node-local to any.

use crate::config::SimConfig;
use crate::job::{JobId, JobSpec, TaskId};
use crate::metrics::TaskRecord;
use hdfs_sim::{InputSplit, NodeId, Topology};
use std::collections::HashMap;
use yarn_sim::{AppId, Container, ContainerId, Location, Priority, ResourceRequest};

/// Priority of the AM's own container (above maps).
pub const AM_PRIORITY: Priority = Priority(30);

/// Task lifecycle states — the paper's §3.4 vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Known to the AM, request not yet sent to the RM.
    Pending,
    /// Request sent to the RM, no container yet.
    Scheduled,
    /// Bound to a container.
    Assigned,
    /// Finished.
    Completed,
}

/// What the driver should do with a granted container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantAction {
    /// It is the AM's own container: start the AM.
    StartAm,
    /// Launch this task in it.
    StartTask(TaskId),
    /// Nothing to run (over-allocation): release it.
    Release,
}

/// Per-job ApplicationMaster state machine.
pub struct MrAppMaster {
    /// Workload index of this job.
    pub job: JobId,
    /// Job dataflow statistics.
    pub spec: JobSpec,
    /// YARN application id.
    pub app: AppId,
    /// Input splits (one per map).
    pub splits: Vec<InputSplit>,
    /// Submission time (set by the driver).
    pub submitted_at: f64,
    /// When the AM container came up.
    pub am_started_at: f64,
    /// The AM's own container, once granted.
    pub am_container: Option<ContainerId>,
    /// Whether the AM is up and may ask for task containers.
    pub am_started: bool,
    /// True once every reduce (or every map, if map-only) completed.
    pub done: bool,
    /// Completion time, valid when `done`.
    pub finished_at: f64,

    map_state: Vec<TaskState>,
    reduce_state: Vec<TaskState>,
    /// Completed map count.
    pub maps_completed: u32,
    /// Completed reduce count.
    pub reduces_completed: u32,
    maps_asked: bool,
    am_asked: bool,
    /// Cumulative reduce containers requested so far (ramp-up state).
    reduces_requested: u32,
    task_of: HashMap<ContainerId, TaskId>,
    container_of: HashMap<TaskId, ContainerId>,
    /// Node each map ran on (shuffle source locality).
    pub map_node: Vec<Option<NodeId>>,
    /// Node each reduce runs on.
    pub reduce_node: Vec<Option<NodeId>>,
    pending_release: Vec<ContainerId>,
    /// Timing records, filled in as tasks progress.
    pub records: HashMap<TaskId, TaskRecord>,
    /// Failed attempts per job (for metrics and tests).
    pub failed_attempts: u32,
}

impl MrAppMaster {
    /// Fresh AM for `spec` with `splits` as map inputs.
    pub fn new(job: JobId, spec: JobSpec, app: AppId, splits: Vec<InputSplit>) -> Self {
        let m = splits.len();
        let r = spec.reduces as usize;
        MrAppMaster {
            job,
            spec,
            app,
            splits,
            submitted_at: 0.0,
            am_started_at: f64::NAN,
            am_container: None,
            am_started: false,
            done: false,
            finished_at: f64::NAN,
            map_state: vec![TaskState::Pending; m],
            reduce_state: vec![TaskState::Pending; r],
            maps_completed: 0,
            reduces_completed: 0,
            maps_asked: false,
            am_asked: false,
            reduces_requested: 0,
            task_of: HashMap::new(),
            container_of: HashMap::new(),
            map_node: vec![None; m],
            reduce_node: vec![None; r],
            pending_release: Vec::new(),
            records: HashMap::new(),
            failed_attempts: 0,
        }
    }

    /// Number of map tasks.
    pub fn num_maps(&self) -> u32 {
        self.splits.len() as u32
    }

    /// Number of reduce tasks.
    pub fn num_reduces(&self) -> u32 {
        self.reduce_state.len() as u32
    }

    /// State of a task.
    pub fn state_of(&self, t: TaskId) -> TaskState {
        match t {
            TaskId::Map(i) => self.map_state[i as usize],
            TaskId::Reduce(i) => self.reduce_state[i as usize],
        }
    }

    /// Whether every map is at least assigned (the paper's trigger for
    /// requesting *all* remaining reduces).
    pub fn all_maps_assigned(&self) -> bool {
        self.map_state
            .iter()
            .all(|s| matches!(s, TaskState::Assigned | TaskState::Completed))
    }

    /// Whether the slow-start threshold has been reached.
    pub fn slowstart_met(&self, cfg: &SimConfig) -> bool {
        let m = self.num_maps();
        if m == 0 {
            return true;
        }
        let needed = (cfg.slowstart * m as f64).ceil().max(1.0) as u32;
        self.maps_completed >= needed
    }

    /// Build this heartbeat's absolute ask (YARN semantics: counts replace
    /// earlier ones). Marks newly requested tasks `Scheduled`.
    pub fn build_asks(
        &mut self,
        now: f64,
        topo: &Topology,
        cfg: &SimConfig,
    ) -> Vec<ResourceRequest> {
        let mut asks = Vec::new();

        if !self.am_asked && cfg.include_am_container {
            self.am_asked = true;
            asks.push(ResourceRequest {
                num_containers: 1,
                priority: AM_PRIORITY,
                capability: cfg.am_container_size,
                location: Location::Any,
                relax_locality: true,
            });
        }
        if !cfg.include_am_container {
            self.am_started = true;
            if self.am_started_at.is_nan() {
                self.am_started_at = now;
            }
        }
        if !self.am_started || self.done {
            return asks;
        }

        // Map ask: recomputed every heartbeat from still-waiting maps.
        if !self.maps_asked {
            self.maps_asked = true;
            for (i, s) in self.map_state.iter_mut().enumerate() {
                if *s == TaskState::Pending {
                    *s = TaskState::Scheduled;
                    self.records.insert(
                        TaskId::Map(i as u32),
                        blank_record(TaskId::Map(i as u32), now),
                    );
                }
            }
        }
        let waiting: Vec<usize> = (0..self.splits.len())
            .filter(|&i| self.map_state[i] == TaskState::Scheduled)
            .collect();
        if !waiting.is_empty() {
            let mut per_node: HashMap<NodeId, u32> = HashMap::new();
            let mut per_rack: HashMap<hdfs_sim::RackId, u32> = HashMap::new();
            for &i in &waiting {
                for &h in &self.splits[i].hosts {
                    *per_node.entry(h).or_insert(0) += 1;
                    *per_rack.entry(topo.rack_of(h)).or_insert(0) += 1;
                }
            }
            let mut nodes: Vec<_> = per_node.into_iter().collect();
            nodes.sort_by_key(|&(n, _)| n);
            for (n, c) in nodes {
                asks.push(ResourceRequest {
                    num_containers: c,
                    priority: Priority::MAP,
                    capability: cfg.container_size,
                    location: Location::Node(n),
                    relax_locality: true,
                });
            }
            let mut racks: Vec<_> = per_rack.into_iter().collect();
            racks.sort_by_key(|&(r, _)| r);
            for (r, c) in racks {
                asks.push(ResourceRequest {
                    num_containers: c,
                    priority: Priority::MAP,
                    capability: cfg.container_size,
                    location: Location::Rack(r),
                    relax_locality: true,
                });
            }
            asks.push(ResourceRequest {
                num_containers: waiting.len() as u32,
                priority: Priority::MAP,
                capability: cfg.container_size,
                location: Location::Any,
                relax_locality: true,
            });
        }

        // Reduce ask: slow start, then ramp with map progress (§4.2.2:
        // "schedule reduce tasks based on the percentage of completed map
        // tasks ... otherwise, schedule all reduce tasks"). Map output
        // locality is NOT considered: the request asks for any host.
        let r = self.num_reduces();
        if r > 0 && self.slowstart_met(cfg) {
            let m = self.num_maps();
            let target = if self.all_maps_assigned() {
                r
            } else {
                ((r as f64 * self.maps_completed as f64 / m as f64).floor() as u32).max(1)
            };
            if target > self.reduces_requested {
                for i in self.reduces_requested..target {
                    self.reduce_state[i as usize] = TaskState::Scheduled;
                    self.records
                        .insert(TaskId::Reduce(i), blank_record(TaskId::Reduce(i), now));
                }
                self.reduces_requested = target;
            }
            let waiting_reduces = (0..r as usize)
                .filter(|&i| self.reduce_state[i] == TaskState::Scheduled)
                .count() as u32;
            if waiting_reduces > 0 {
                asks.push(ResourceRequest {
                    num_containers: waiting_reduces,
                    priority: Priority::REDUCE,
                    capability: cfg.container_size,
                    location: Location::Any,
                    relax_locality: true,
                });
            }
        }
        asks
    }

    /// Containers to release on the next heartbeat.
    pub fn take_releases(&mut self) -> Vec<ContainerId> {
        std::mem::take(&mut self.pending_release)
    }

    /// Second-level scheduling: match a granted container to a task
    /// (data-local first, then any waiting task of the right type).
    pub fn on_grant(&mut self, now: f64, c: &Container) -> GrantAction {
        if c.priority == AM_PRIORITY {
            self.am_container = Some(c.id);
            return GrantAction::StartAm;
        }
        let task = if c.priority == Priority::MAP {
            let local = (0..self.splits.len()).find(|&i| {
                self.map_state[i] == TaskState::Scheduled && self.splits[i].hosts.contains(&c.node)
            });
            let any = local.or_else(|| {
                (0..self.splits.len()).find(|&i| self.map_state[i] == TaskState::Scheduled)
            });
            any.map(|i| TaskId::Map(i as u32))
        } else {
            (0..self.reduce_state.len())
                .find(|&i| self.reduce_state[i] == TaskState::Scheduled)
                .map(|i| TaskId::Reduce(i as u32))
        };
        match task {
            None => GrantAction::Release,
            Some(t) => {
                self.set_state(t, TaskState::Assigned);
                self.task_of.insert(c.id, t);
                self.container_of.insert(t, c.id);
                match t {
                    TaskId::Map(i) => self.map_node[i as usize] = Some(c.node),
                    TaskId::Reduce(i) => self.reduce_node[i as usize] = Some(c.node),
                }
                if let Some(rec) = self.records.get_mut(&t) {
                    rec.assigned_at = now;
                    rec.node = c.node;
                }
                GrantAction::StartTask(t)
            }
        }
    }

    /// The container finished launching; work begins.
    pub fn on_task_started(&mut self, now: f64, container: ContainerId) -> Option<TaskId> {
        let t = *self.task_of.get(&container)?;
        if let Some(rec) = self.records.get_mut(&t) {
            rec.started_at = now;
        }
        Some(t)
    }

    /// Record a phase boundary on a task's record.
    pub fn mark(&mut self, t: TaskId, field: PhaseMark, now: f64) {
        if let Some(rec) = self.records.get_mut(&t) {
            match field {
                PhaseMark::IoDone => rec.io_done_at = now,
                PhaseMark::CpuDone => rec.cpu_done_at = now,
            }
        }
    }

    /// A task finished; queue its container for release. Returns true if
    /// this completion finished the whole job.
    pub fn on_task_finished(&mut self, now: f64, t: TaskId) -> bool {
        self.set_state(t, TaskState::Completed);
        if let Some(rec) = self.records.get_mut(&t) {
            rec.finished_at = now;
        }
        if let Some(c) = self.container_of.remove(&t) {
            self.task_of.remove(&c);
            self.pending_release.push(c);
        }
        match t {
            TaskId::Map(_) => self.maps_completed += 1,
            TaskId::Reduce(_) => self.reduces_completed += 1,
        }
        let job_done =
            self.maps_completed == self.num_maps() && self.reduces_completed == self.num_reduces();
        if job_done {
            self.done = true;
            self.finished_at = now;
        }
        job_done
    }

    /// A task attempt failed: release its container and put the task back
    /// to `Scheduled` so the next heartbeat re-requests a container
    /// (Hadoop's task-retry path at the granularity this model needs).
    pub fn on_task_failed(&mut self, _now: f64, t: TaskId) {
        self.failed_attempts += 1;
        self.set_state(t, TaskState::Scheduled);
        match t {
            TaskId::Map(i) => self.map_node[i as usize] = None,
            TaskId::Reduce(i) => self.reduce_node[i as usize] = None,
        }
        if let Some(c) = self.container_of.remove(&t) {
            self.task_of.remove(&c);
            self.pending_release.push(c);
        }
    }

    fn set_state(&mut self, t: TaskId, s: TaskState) {
        match t {
            TaskId::Map(i) => self.map_state[i as usize] = s,
            TaskId::Reduce(i) => self.reduce_state[i as usize] = s,
        }
    }
}

/// Which record field a phase boundary updates.
#[derive(Debug, Clone, Copy)]
pub enum PhaseMark {
    /// End of read (map) / shuffle (reduce).
    IoDone,
    /// End of the CPU phase.
    CpuDone,
}

fn blank_record(task: TaskId, scheduled_at: f64) -> TaskRecord {
    TaskRecord {
        task,
        node: NodeId(0),
        scheduled_at,
        assigned_at: f64::NAN,
        started_at: f64::NAN,
        io_done_at: f64::NAN,
        cpu_done_at: f64::NAN,
        finished_at: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, MB};
    use crate::workload::wordcount;
    use yarn_sim::{ContainerState, ResourceVector};

    fn mk_am(maps: usize, reduces: u32) -> MrAppMaster {
        let spec = {
            let mut s = wordcount(maps as u64 * 128 * MB, reduces);
            s.reduces = reduces;
            s
        };
        let splits: Vec<InputSplit> = (0..maps)
            .map(|i| InputSplit {
                index: i,
                len: 128 * MB,
                hosts: vec![NodeId((i % 2) as u32)],
            })
            .collect();
        MrAppMaster::new(JobId(0), spec, AppId(0), splits)
    }

    fn grant(node: u32, p: Priority, id: u64) -> Container {
        Container {
            id: ContainerId(id),
            node: NodeId(node),
            resource: ResourceVector::new(1024, 1),
            priority: p,
            state: ContainerState::Acquired,
        }
    }

    #[test]
    fn am_asks_for_itself_first() {
        let mut am = mk_am(4, 1);
        let cfg = SimConfig::default();
        let topo = Topology::single_rack(2);
        let asks = am.build_asks(0.0, &topo, &cfg);
        assert_eq!(asks.len(), 1);
        assert_eq!(asks[0].priority, AM_PRIORITY);
        // Until the AM starts, no task asks.
        let asks2 = am.build_asks(1.0, &topo, &cfg);
        assert!(asks2.is_empty());
    }

    #[test]
    fn map_ask_carries_locality_rows() {
        let mut am = mk_am(4, 1);
        let cfg = SimConfig::default();
        let topo = Topology::single_rack(2);
        am.build_asks(0.0, &topo, &cfg);
        am.am_started = true;
        let asks = am.build_asks(1.0, &topo, &cfg);
        // 2 node rows (n0: 2 maps, n1: 2 maps) + 1 rack row + 1 any row.
        let node_rows: Vec<_> = asks
            .iter()
            .filter(|a| matches!(a.location, Location::Node(_)))
            .collect();
        assert_eq!(node_rows.len(), 2);
        assert!(node_rows.iter().all(|a| a.num_containers == 2));
        let any: Vec<_> = asks
            .iter()
            .filter(|a| a.location == Location::Any && a.priority == Priority::MAP)
            .collect();
        assert_eq!(any.len(), 1);
        assert_eq!(any[0].num_containers, 4);
        // No reduce ask yet: slow start unmet (0 maps completed).
        assert!(asks.iter().all(|a| a.priority != Priority::REDUCE));
    }

    #[test]
    fn late_binding_prefers_local_map() {
        let mut am = mk_am(4, 0);
        let cfg = SimConfig::default();
        let topo = Topology::single_rack(2);
        am.build_asks(0.0, &topo, &cfg);
        am.am_started = true;
        am.build_asks(1.0, &topo, &cfg);
        // Container on n1 → should get map 1 (first map with replica on n1).
        match am.on_grant(2.0, &grant(1, Priority::MAP, 10)) {
            GrantAction::StartTask(TaskId::Map(i)) => assert_eq!(i, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Next container on n1 → map 3.
        match am.on_grant(2.0, &grant(1, Priority::MAP, 11)) {
            GrantAction::StartTask(TaskId::Map(i)) => assert_eq!(i, 3),
            other => panic!("unexpected {other:?}"),
        }
        // Container on unknown node n5 → falls back to any waiting map.
        match am.on_grant(2.0, &grant(5, Priority::MAP, 12)) {
            GrantAction::StartTask(TaskId::Map(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn surplus_container_released() {
        let mut am = mk_am(1, 0);
        let cfg = SimConfig::default();
        let topo = Topology::single_rack(2);
        am.build_asks(0.0, &topo, &cfg);
        am.am_started = true;
        am.build_asks(1.0, &topo, &cfg);
        assert!(matches!(
            am.on_grant(2.0, &grant(0, Priority::MAP, 1)),
            GrantAction::StartTask(_)
        ));
        assert_eq!(
            am.on_grant(2.0, &grant(0, Priority::MAP, 2)),
            GrantAction::Release
        );
    }

    #[test]
    fn slowstart_gates_reduce_ask() {
        let mut am = mk_am(20, 4);
        let cfg = SimConfig::default(); // slowstart 5% → 1 map
        let topo = Topology::single_rack(2);
        am.build_asks(0.0, &topo, &cfg);
        am.am_started = true;
        am.build_asks(1.0, &topo, &cfg);
        assert!(!am.slowstart_met(&cfg));
        // Assign and complete one map.
        let action = am.on_grant(2.0, &grant(0, Priority::MAP, 1));
        let t = match action {
            GrantAction::StartTask(t) => t,
            _ => panic!(),
        };
        am.on_task_started(2.5, ContainerId(1));
        am.on_task_finished(10.0, t);
        assert!(am.slowstart_met(&cfg));
        let asks = am.build_asks(11.0, &topo, &cfg);
        let red: Vec<_> = asks
            .iter()
            .filter(|a| a.priority == Priority::REDUCE)
            .collect();
        // Ramp: 4 reduces × 1/20 completed → max(floor(0.2),1) = 1.
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].num_containers, 1);
    }

    #[test]
    fn map_only_job_completes() {
        let mut am = mk_am(2, 0);
        let cfg = SimConfig::default();
        let topo = Topology::single_rack(2);
        am.build_asks(0.0, &topo, &cfg);
        am.am_started = true;
        am.build_asks(1.0, &topo, &cfg);
        for (k, id) in [(0u64, 1u64), (1, 2)] {
            let t = match am.on_grant(2.0, &grant(k as u32, Priority::MAP, id)) {
                GrantAction::StartTask(t) => t,
                _ => panic!(),
            };
            am.on_task_started(3.0, ContainerId(id));
            let done = am.on_task_finished(20.0 + k as f64, t);
            assert_eq!(done, k == 1);
        }
        assert!(am.done);
        assert_eq!(am.take_releases().len(), 2);
    }
}
