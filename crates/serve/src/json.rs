//! Minimal hand-rolled JSON for the service's request/response types.
//!
//! The implementation lives in [`mr2_scenario::json`] — the scenario
//! engine's trace ingestion parses JSON-lines job histories with the
//! same parser — and is re-exported here so the service's modules (and
//! external users of `mr2_serve::json`) keep their paths.

pub use mr2_scenario::json::{Json, JsonError};
