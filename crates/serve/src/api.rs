//! The service's wire types: JSON decoding of estimate/scenario
//! requests into `mr2-scenario` specs, and JSON encoding of evaluated
//! results, error bands, and cache statistics.
//!
//! Decoding is strict — unknown fields are rejected — because a typo'd
//! axis name that silently falls back to a default would hand a
//! capacity planner confidently wrong numbers.

use std::collections::BTreeMap;

use mapreduce_sim::{SchedulerPolicy, GB};
use mr2_scenario::{
    error_bands, Backends, CacheStats, EstimatorKind, EvalPoint, JobKind, PointResult,
    ReducePolicy, Scenario, SweepMode, SweepResult,
};

use crate::json::Json;

/// A decoded `POST /v1/estimate` body: one fully concrete point plus
/// the backends to evaluate it with.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The point to evaluate.
    pub point: EvalPoint,
    /// Which backends to run. Defaults to the analytic model only —
    /// the online-query fast path; simulator ground truth is opt-in.
    pub backends: Backends,
}

fn parse_scheduler(s: &str) -> Result<SchedulerPolicy, String> {
    match s {
        "capacity_fifo" => Ok(SchedulerPolicy::CapacityFifo),
        "fair" => Ok(SchedulerPolicy::Fair),
        other => Err(format!(
            "unknown scheduler `{other}` (expected `capacity_fifo` or `fair`)"
        )),
    }
}

fn parse_job(s: &str) -> Result<JobKind, String> {
    match s {
        "wordcount" => Ok(JobKind::WordCount),
        "terasort" => Ok(JobKind::TeraSort),
        "grep" => Ok(JobKind::Grep),
        other => Err(format!(
            "unknown job `{other}` (expected `wordcount`, `terasort`, or `grep`)"
        )),
    }
}

fn parse_estimator(s: &str) -> Result<EstimatorKind, String> {
    EstimatorKind::ALL
        .into_iter()
        .find(|e| e.name() == s)
        .ok_or_else(|| {
            format!("unknown estimator `{s}` (expected `fork_join`, `tripathi`, `aria`, or `herodotou`)")
        })
}

/// The object's fields, after verifying every key is known.
fn known_object<'a>(
    v: &'a Json,
    what: &str,
    known: &[&str],
) -> Result<&'a BTreeMap<String, Json>, String> {
    let Json::Obj(map) = v else {
        return Err(format!("{what} must be a JSON object"));
    };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown {what} field `{key}`"));
        }
    }
    Ok(map)
}

fn field_u64(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_positive(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    let v = field_u64(map, key, default)?;
    if v == 0 {
        return Err(format!("field `{key}` must be positive"));
    }
    Ok(v)
}

/// A positive field that must also fit the narrower type it feeds —
/// out-of-range values are rejected, never silently truncated.
fn field_positive_u32(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u32,
) -> Result<u32, String> {
    let v = field_positive(map, key, default.into())?;
    u32::try_from(v).map_err(|_| format!("field `{key}` must fit 32 bits"))
}

fn field_str_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<String>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field `{key}` must be an array of strings"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!("field `{key}` must be an array of strings")),
    }
}

fn field_u64_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<u64>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("field `{key}` must be an array of positive integers"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!(
            "field `{key}` must be an array of positive integers"
        )),
    }
}

/// Decode a `backends` object; `default` fills the missing fields.
fn parse_backends(v: &Json, default: Backends) -> Result<Backends, String> {
    let map = known_object(
        v,
        "backends",
        &["analytic", "profile_calibration", "simulator"],
    )?;
    let bool_field = |key: &str, default: bool| -> Result<bool, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a boolean")),
        }
    };
    let simulator = match map.get("simulator") {
        None => default.simulator,
        Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&n| n > 0)
                .ok_or("field `simulator` must be null or a positive repetition count")?
                as usize,
        ),
    };
    Ok(Backends {
        analytic: bool_field("analytic", default.analytic)?,
        profile_calibration: bool_field("profile_calibration", default.profile_calibration)?,
        simulator,
    })
}

/// Decode a `reduces` field: the string `"per_node"` or a fixed count.
fn parse_reduces(map: &BTreeMap<String, Json>) -> Result<ReducePolicy, String> {
    match map.get("reduces") {
        None => Ok(ReducePolicy::PerNode),
        Some(Json::Str(s)) if s == "per_node" => Ok(ReducePolicy::PerNode),
        Some(v) => v
            .as_u64()
            .filter(|&n| n > 0)
            .and_then(|n| u32::try_from(n).ok())
            .map(ReducePolicy::Fixed)
            .ok_or_else(|| "field `reduces` must be `\"per_node\"` or a positive count".into()),
    }
}

/// Decode a `POST /v1/estimate` body.
pub fn parse_estimate_request(body: &str) -> Result<EstimateRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "estimate request",
        &[
            "nodes",
            "block_mb",
            "container_mb",
            "scheduler",
            "job",
            "input_bytes",
            "n_jobs",
            "estimator",
            "reduces",
            "seed",
            "backends",
        ],
    )?;
    let str_field = |key: &str| -> Result<Option<&str>, String> {
        match map.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a string")),
        }
    };
    let nodes = field_positive(map, "nodes", 4)? as usize;
    let point = EvalPoint {
        index: 0,
        nodes,
        block_mb: field_positive(map, "block_mb", 128)?,
        container_mb: field_positive_u32(map, "container_mb", 1024)?,
        scheduler: str_field("scheduler")?
            .map_or(Ok(SchedulerPolicy::CapacityFifo), parse_scheduler)?,
        job: str_field("job")?.map_or(Ok(JobKind::WordCount), parse_job)?,
        input_bytes: field_positive(map, "input_bytes", GB)?,
        n_jobs: field_positive(map, "n_jobs", 1)? as usize,
        estimator: str_field("estimator")?.map_or(Ok(EstimatorKind::ForkJoin), parse_estimator)?,
        reduces: parse_reduces(map)?.reduces(nodes),
        seed: field_u64(map, "seed", 1)?,
    };
    let backends = match map.get("backends") {
        None => Backends::analytic_only(),
        Some(v) => parse_backends(v, Backends::analytic_only())?,
    };
    if !backends.analytic && backends.simulator.is_none() {
        return Err("at least one backend must be enabled".into());
    }
    Ok(EstimateRequest { point, backends })
}

/// Decode a `POST /v1/scenario` body into a [`Scenario`] (validated
/// with [`Scenario::check`]).
pub fn parse_scenario_request(body: &str) -> Result<Scenario, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "scenario request",
        &[
            "name",
            "sweep",
            "nodes",
            "block_mb",
            "container_mb",
            "schedulers",
            "jobs",
            "input_bytes",
            "n_jobs",
            "estimators",
            "reduces",
            "backends",
            "seed",
        ],
    )?;
    let name = match map.get("name") {
        None => "adhoc".to_string(),
        Some(v) => v
            .as_str()
            .ok_or("field `name` must be a string")?
            .to_string(),
    };
    let mut s = Scenario::new(name);
    match map.get("sweep").map(|v| v.as_str()) {
        None => {}
        Some(Some("cartesian")) => s.sweep = SweepMode::Cartesian,
        Some(Some("zip")) => s.sweep = SweepMode::Zip,
        Some(_) => return Err("field `sweep` must be `\"cartesian\"` or `\"zip\"`".into()),
    }
    if let Some(v) = field_u64_list(map, "nodes")? {
        s.nodes = v.into_iter().map(|n| n as usize).collect();
    }
    if let Some(v) = field_u64_list(map, "block_mb")? {
        s.block_mb = v;
    }
    if let Some(v) = field_u64_list(map, "container_mb")? {
        s.container_mb = v
            .into_iter()
            .map(|n| {
                u32::try_from(n).map_err(|_| "field `container_mb` must fit 32 bits".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = field_str_list(map, "schedulers")? {
        s.schedulers = v
            .iter()
            .map(|x| parse_scheduler(x))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = field_str_list(map, "jobs")? {
        s.jobs = v.iter().map(|x| parse_job(x)).collect::<Result<_, _>>()?;
    }
    if let Some(v) = field_u64_list(map, "input_bytes")? {
        s.input_bytes = v;
    }
    if let Some(v) = field_u64_list(map, "n_jobs")? {
        s.n_jobs = v.into_iter().map(|n| n as usize).collect();
    }
    if let Some(v) = field_str_list(map, "estimators")? {
        s.estimators = v
            .iter()
            .map(|x| parse_estimator(x))
            .collect::<Result<_, _>>()?;
    }
    s.reduces = parse_reduces(map)?;
    if let Some(v) = map.get("backends") {
        // Scenario sweeps default to the analytic fast path too; the
        // paper methodology (simulator + profile) is opt-in per request.
        s.backends = parse_backends(v, Backends::analytic_only())?;
    } else {
        s.backends = Backends::analytic_only();
    }
    s.seed = field_u64(map, "seed", 1)?;
    s.check()?;
    Ok(s)
}

/// Encode one evaluated point.
pub fn point_json(p: &PointResult) -> Json {
    let model = p.model.map_or(Json::Null, |m| {
        Json::obj([
            ("fork_join", Json::num(m.fork_join)),
            ("tripathi", Json::num(m.tripathi)),
            ("aria", Json::num(m.aria)),
            ("herodotou", Json::num(m.herodotou)),
        ])
    });
    let sim = p.sim.as_ref().map_or(Json::Null, |s| {
        Json::obj([
            ("median_response", Json::num(s.median_response)),
            ("mean_response", Json::num(s.mean_response)),
            ("reps", s.reps.into()),
        ])
    });
    Json::obj([
        ("index", p.point.index.into()),
        ("nodes", p.point.nodes.into()),
        ("block_mb", p.point.block_mb.into()),
        ("container_mb", u64::from(p.point.container_mb).into()),
        (
            "scheduler",
            Json::str(match p.point.scheduler {
                SchedulerPolicy::CapacityFifo => "capacity_fifo",
                SchedulerPolicy::Fair => "fair",
            }),
        ),
        ("job", Json::str(p.point.job.name())),
        ("input_bytes", p.point.input_bytes.into()),
        ("n_jobs", p.point.n_jobs.into()),
        ("estimator", Json::str(p.point.estimator.name())),
        ("reduces", u64::from(p.point.reduces).into()),
        ("seed", p.point.seed.into()),
        ("model", model),
        ("sim", sim),
        ("estimate", p.estimate().map_or(Json::Null, Json::num)),
        ("measured", p.measured().map_or(Json::Null, Json::num)),
    ])
}

/// Encode a whole sweep: points in expansion order plus the per-series
/// error bands (present only when both backends ran).
pub fn sweep_json(sweep: &SweepResult) -> Json {
    let bands: Vec<Json> = error_bands(sweep)
        .into_iter()
        .map(|b| {
            Json::obj([
                ("estimator", Json::str(b.estimator.name())),
                ("min", Json::num(b.band.min)),
                ("max", Json::num(b.band.max)),
                ("mean", Json::num(b.band.mean)),
                ("points", u64::from(b.band.count).into()),
            ])
        })
        .collect();
    Json::obj([
        ("name", Json::str(sweep.name.clone())),
        ("num_points", sweep.points.len().into()),
        (
            "points",
            Json::Arr(sweep.points.iter().map(point_json).collect()),
        ),
        ("error_bands", Json::Arr(bands)),
    ])
}

/// Encode cache counters.
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("coalesced", s.coalesced.into()),
        ("evictions", s.evictions.into()),
        ("entries", s.entries.into()),
        ("capacity", s.capacity.into()),
        ("schema_version", mr2_scenario::schema_version().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_request_defaults_mirror_scenario_new() {
        let r = parse_estimate_request("{}").unwrap();
        assert_eq!(r.point.nodes, 4);
        assert_eq!(r.point.block_mb, 128);
        assert_eq!(r.point.container_mb, 1024);
        assert_eq!(r.point.scheduler, SchedulerPolicy::CapacityFifo);
        assert_eq!(r.point.job, JobKind::WordCount);
        assert_eq!(r.point.input_bytes, GB);
        assert_eq!(r.point.n_jobs, 1);
        assert_eq!(r.point.estimator, EstimatorKind::ForkJoin);
        assert_eq!(r.point.reduces, 4, "per-node default");
        assert_eq!(r.point.seed, 1);
        assert_eq!(r.backends, Backends::analytic_only());
    }

    #[test]
    fn estimate_request_decodes_every_field() {
        let r = parse_estimate_request(
            r#"{"nodes":8,"block_mb":64,"container_mb":2048,"scheduler":"fair",
                "job":"terasort","input_bytes":5368709120,"n_jobs":3,
                "estimator":"tripathi","reduces":2,"seed":9,
                "backends":{"analytic":true,"profile_calibration":true,"simulator":5}}"#,
        )
        .unwrap();
        assert_eq!(r.point.nodes, 8);
        assert_eq!(r.point.scheduler, SchedulerPolicy::Fair);
        assert_eq!(r.point.job, JobKind::TeraSort);
        assert_eq!(r.point.input_bytes, 5 * GB);
        assert_eq!(r.point.estimator, EstimatorKind::Tripathi);
        assert_eq!(r.point.reduces, 2, "fixed count overrides per-node");
        assert_eq!(r.backends.simulator, Some(5));
        assert!(r.backends.profile_calibration);
    }

    #[test]
    fn estimate_request_rejects_bad_input() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (r#"{"node":4}"#, "unknown estimate request field `node`"),
            (r#"{"nodes":0}"#, "must be positive"),
            (r#"{"nodes":-2}"#, "non-negative integer"),
            (r#"{"scheduler":"yarn"}"#, "unknown scheduler"),
            (r#"{"job":"sort"}"#, "unknown job"),
            (r#"{"estimator":"magic"}"#, "unknown estimator"),
            (r#"{"reduces":0}"#, "per_node"),
            // 2^32 + 1024: silent truncation would price 4 TiB
            // containers as 1 GiB ones.
            (r#"{"container_mb":4294968320}"#, "fit 32 bits"),
            (r#"{"reduces":4294967296}"#, "per_node"),
            (
                r#"{"backends":{"analytic":false,"simulator":null}}"#,
                "at least one backend",
            ),
            (r#"{"backends":{"sim":1}}"#, "unknown backends field"),
            ("[1,2]", "must be a JSON object"),
        ] {
            let err = parse_estimate_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn scenario_request_builds_axes() {
        let s = parse_scenario_request(
            r#"{"name":"grow","nodes":[4,8,16],"n_jobs":[1,2],
                "estimators":["fork_join","tripathi"],"jobs":["grep"],
                "input_bytes":[1073741824],"seed":7}"#,
        )
        .unwrap();
        assert_eq!(s.name, "grow");
        assert_eq!(s.nodes, vec![4, 8, 16]);
        assert_eq!(s.n_jobs, vec![1, 2]);
        assert_eq!(
            s.estimators,
            vec![EstimatorKind::ForkJoin, EstimatorKind::Tripathi]
        );
        assert_eq!(s.jobs, vec![JobKind::Grep]);
        assert_eq!(s.seed, 7);
        assert_eq!(s.num_points(), 3 * 2 * 2);
        assert_eq!(s.backends, Backends::analytic_only(), "serving default");
    }

    #[test]
    fn scenario_request_rejects_invalid_specs() {
        assert!(parse_scenario_request(r#"{"nodes":[]}"#)
            .unwrap_err()
            .contains("nodes axis is empty"));
        assert!(
            parse_scenario_request(r#"{"sweep":"zip","nodes":[1,2],"n_jobs":[1,2,3]}"#)
                .unwrap_err()
                .contains("zip axis")
        );
        assert!(parse_scenario_request(r#"{"axes":{}}"#)
            .unwrap_err()
            .contains("unknown scenario request field"));
        assert!(
            parse_scenario_request(r#"{"container_mb":[1024,4294968320]}"#)
                .unwrap_err()
                .contains("fit 32 bits")
        );
    }

    #[test]
    fn encoded_sweep_is_valid_json_with_bands() {
        use mr2_scenario::{run_scenario, ResultCache, RunnerConfig};
        let s = parse_scenario_request(
            r#"{"nodes":[2],"input_bytes":[268435456],
                "backends":{"analytic":true,"simulator":2}}"#,
        )
        .unwrap();
        let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::serial());
        let v = sweep_json(&sweep);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("num_points").unwrap().as_u64(), Some(1));
        let pt = &back.get("points").unwrap().as_arr().unwrap()[0];
        assert!(pt.get("estimate").unwrap().as_f64().unwrap() > 0.0);
        assert!(pt.get("measured").unwrap().as_f64().unwrap() > 0.0);
        assert!(!back
            .get("error_bands")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }
}
