//! The service's wire types: JSON decoding of estimate/scenario/plan
//! requests into `mr2-scenario` specs, and JSON encoding of evaluated
//! results, error bands, plans, and cache statistics.
//!
//! Decoding is strict — unknown fields are rejected — because a typo'd
//! axis name that silently falls back to a default would hand a
//! capacity planner confidently wrong numbers.
//!
//! Every JSON reply — success or failure — carries
//! `"api_version": "v1"` ([`API_VERSION`]), and every failure uses one
//! envelope ([`ApiError`]):
//!
//! ```json
//! {"api_version":"v1","error":{"code":"validation","field":"nodes","message":"…"}}
//! ```
//!
//! Codes are stable strings keyed to the HTTP status: `400 malformed`
//! (the body isn't a JSON object at all), `422 validation` (well-formed
//! but unacceptable — `field` names the offender when the message pins
//! one down), `404 not_found`, `405 method_not_allowed`,
//! `503 backpressure`, `500 internal`.

use std::collections::BTreeMap;

use mapreduce_sim::{SchedulerPolicy, GB};
use mr2_model::ModelPoint;
use mr2_scenario::{
    class_error_bands, error_bands, ArrivalSchedule, Backends, CacheStats, EstimatorKind,
    EvalPoint, JobKind, MixEntry, PlanRequest, PlanResult, PointResult, ReducePolicy,
    ResolvedEntry, Scenario, SearchSpace, SloMetric, SloSpec, SweepMode, SweepResult, WorkloadMix,
};

use crate::json::Json;

/// The wire API version stamped on every JSON reply.
pub const API_VERSION: &str = "v1";

/// A typed API failure: the HTTP status, a stable machine-readable
/// code, a human-readable message, and — when the message pins one
/// down — the offending request field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to send.
    pub status: u16,
    /// Stable error code (`malformed`, `validation`, `not_found`,
    /// `method_not_allowed`, `backpressure`, `internal`, …).
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
    /// The request field at fault, when the message names one (the
    /// decoder convention puts field names in backticks after the word
    /// "field").
    pub field: Option<String>,
}

/// The first backtick-quoted token following the word "field" in a
/// decoder message — the strict decoders' convention for naming the
/// offending key ("field `nodes` must be positive", "unknown estimate
/// request field `node`").
fn backtick_field(message: &str) -> Option<String> {
    let at = message.find("field `")? + "field `".len();
    let end = message[at..].find('`')? + at;
    (at < end).then(|| message[at..end].to_string())
}

impl ApiError {
    /// Classify a decoder/engine `Err(String)`: bodies that never
    /// parsed as JSON (or weren't UTF-8) are `400 malformed`;
    /// everything else was well-formed but unacceptable —
    /// `422 validation`, with the offending field extracted from the
    /// message when named.
    pub fn from_parse(message: String) -> ApiError {
        if message.starts_with("invalid JSON") || message.starts_with("body is not UTF-8") {
            ApiError {
                status: 400,
                code: "malformed",
                message,
                field: None,
            }
        } else {
            ApiError {
                status: 422,
                code: "validation",
                field: backtick_field(&message),
                message,
            }
        }
    }

    /// A validation failure (`422`) with an explicit field.
    pub fn validation(message: impl Into<String>) -> ApiError {
        let message = message.into();
        ApiError {
            status: 422,
            code: "validation",
            field: backtick_field(&message),
            message,
        }
    }

    /// Unknown path.
    pub fn not_found() -> ApiError {
        ApiError {
            status: 404,
            code: "not_found",
            message: "no such endpoint".into(),
            field: None,
        }
    }

    /// Known path, wrong method.
    pub fn method_not_allowed() -> ApiError {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: "method not allowed".into(),
            field: None,
        }
    }

    /// The route requires a bearer token and the request carried none,
    /// or the wrong one.
    pub fn unauthorized() -> ApiError {
        ApiError {
            status: 401,
            code: "unauthorized",
            message: "missing or invalid bearer token".into(),
            field: None,
        }
    }

    /// The worker pool's backlog is full; the response advises a retry
    /// (`Retry-After`).
    pub fn backpressure() -> ApiError {
        ApiError {
            status: 503,
            code: "backpressure",
            message: "worker queue is full; retry shortly".into(),
            field: None,
        }
    }

    /// An evaluation panicked or another invariant broke.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            code: "internal",
            message: message.into(),
            field: None,
        }
    }

    /// Wrap an HTTP framing error (bad request line, oversized body,
    /// …) in the envelope, keyed by its status.
    pub fn from_status(status: u16, message: String) -> ApiError {
        let code = match status {
            400 => "malformed",
            404 => "not_found",
            405 => "method_not_allowed",
            413 | 431 => "too_large",
            422 => "validation",
            501 => "not_implemented",
            503 => "backpressure",
            505 => "unsupported_version",
            _ => "internal",
        };
        ApiError {
            status,
            code,
            message,
            field: None,
        }
    }

    /// The rendered envelope body.
    pub fn body(&self) -> String {
        let mut error = BTreeMap::new();
        error.insert("code".to_string(), Json::str(self.code));
        error.insert("message".to_string(), Json::str(self.message.clone()));
        if let Some(f) = &self.field {
            error.insert("field".to_string(), Json::str(f.clone()));
        }
        Json::obj([
            ("api_version", Json::str(API_VERSION)),
            ("error", Json::Obj(error)),
        ])
        .render()
    }
}

/// Stamp a success reply: `api_version` always, plus a `deprecations`
/// array when the request used legacy fields (each entry names the
/// field and its replacement).
pub fn stamp_reply(body: &mut Json, deprecations: &[&'static str]) {
    if let Json::Obj(map) = body {
        map.insert("api_version".into(), Json::str(API_VERSION));
        if !deprecations.is_empty() {
            map.insert(
                "deprecations".into(),
                Json::Arr(
                    deprecations
                        .iter()
                        .map(|f| {
                            Json::str(format!(
                                "field `{f}` is deprecated; describe the workload with `mix`"
                            ))
                        })
                        .collect(),
                ),
            );
        }
    }
}

/// A decoded `POST /v1/estimate` body: one fully concrete point plus
/// the backends to evaluate it with.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The point to evaluate.
    pub point: EvalPoint,
    /// Which backends to run. Defaults to the analytic model only —
    /// the online-query fast path; simulator ground truth is opt-in.
    pub backends: Backends,
    /// Attach a per-span timing breakdown to the reply (`"debug": true`).
    pub debug: bool,
    /// Legacy single-job fields the request used (surfaced in the
    /// reply's `deprecations` array; the fields keep decoding).
    pub deprecations: Vec<&'static str>,
}

/// A decoded `POST /v1/scenario` body.
#[derive(Debug, Clone)]
pub struct ScenarioRequest {
    /// The sweep to run.
    pub scenario: Scenario,
    /// Attach a per-span timing breakdown to the reply (`"debug": true`).
    pub debug: bool,
    /// Stream results incrementally as chunked NDJSON — one line per
    /// completed point, then a summary tail — instead of one JSON
    /// document after the whole sweep (`"stream": true`).
    pub stream: bool,
}

/// Decode a `debug` field: absent means off.
fn field_debug(map: &BTreeMap<String, Json>) -> Result<bool, String> {
    match map.get("debug") {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| "field `debug` must be a boolean".to_string()),
    }
}

fn parse_scheduler(s: &str) -> Result<SchedulerPolicy, String> {
    match s {
        "capacity_fifo" => Ok(SchedulerPolicy::CapacityFifo),
        "fair" => Ok(SchedulerPolicy::Fair),
        other => Err(format!(
            "unknown scheduler `{other}` (expected `capacity_fifo` or `fair`)"
        )),
    }
}

fn parse_job(s: &str) -> Result<JobKind, String> {
    match s {
        "wordcount" => Ok(JobKind::WordCount),
        "terasort" => Ok(JobKind::TeraSort),
        "grep" => Ok(JobKind::Grep),
        other => Err(format!(
            "unknown job `{other}` (expected `wordcount`, `terasort`, or `grep`)"
        )),
    }
}

fn parse_estimator(s: &str) -> Result<EstimatorKind, String> {
    EstimatorKind::ALL
        .into_iter()
        .find(|e| e.name() == s)
        .ok_or_else(|| {
            format!("unknown estimator `{s}` (expected `fork_join`, `tripathi`, `aria`, or `herodotou`)")
        })
}

/// The object's fields, after verifying every key is known.
fn known_object<'a>(
    v: &'a Json,
    what: &str,
    known: &[&str],
) -> Result<&'a BTreeMap<String, Json>, String> {
    let Json::Obj(map) = v else {
        return Err(format!("{what} must be a JSON object"));
    };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown {what} field `{key}`"));
        }
    }
    Ok(map)
}

fn field_u64(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_positive(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    let v = field_u64(map, key, default)?;
    if v == 0 {
        return Err(format!("field `{key}` must be positive"));
    }
    Ok(v)
}

/// A positive field that must also fit the narrower type it feeds —
/// out-of-range values are rejected, never silently truncated.
fn field_positive_u32(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u32,
) -> Result<u32, String> {
    let v = field_positive(map, key, default.into())?;
    u32::try_from(v).map_err(|_| format!("field `{key}` must fit 32 bits"))
}

fn field_str_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<String>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field `{key}` must be an array of strings"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!("field `{key}` must be an array of strings")),
    }
}

fn field_u64_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<u64>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("field `{key}` must be an array of positive integers"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!(
            "field `{key}` must be an array of positive integers"
        )),
    }
}

/// Decode a `backends` object; `default` fills the missing fields.
fn parse_backends(v: &Json, default: Backends) -> Result<Backends, String> {
    let map = known_object(
        v,
        "backends",
        &["analytic", "profile_calibration", "simulator"],
    )?;
    let bool_field = |key: &str, default: bool| -> Result<bool, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a boolean")),
        }
    };
    let simulator = match map.get("simulator") {
        None => default.simulator,
        Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&n| n > 0)
                .ok_or("field `simulator` must be null or a positive repetition count")?
                as usize,
        ),
    };
    Ok(Backends {
        analytic: bool_field("analytic", default.analytic)?,
        profile_calibration: bool_field("profile_calibration", default.profile_calibration)?,
        simulator,
    })
}

/// Decode a `reduces` field: the string `"per_node"` or a fixed count.
fn parse_reduces(map: &BTreeMap<String, Json>) -> Result<ReducePolicy, String> {
    match map.get("reduces") {
        None => Ok(ReducePolicy::PerNode),
        Some(Json::Str(s)) if s == "per_node" => Ok(ReducePolicy::PerNode),
        Some(v) => v
            .as_u64()
            .filter(|&n| n > 0)
            .and_then(|n| u32::try_from(n).ok())
            .map(ReducePolicy::Fixed)
            .ok_or_else(|| "field `reduces` must be `\"per_node\"` or a positive count".into()),
    }
}

/// Decode a probability field; must be a number in `[0, 1)`.
fn field_prob(map: &BTreeMap<String, Json>, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|p| (0.0..1.0).contains(p))
            .ok_or_else(|| format!("field `{key}` must be a number in [0, 1)")),
    }
}

/// Decode a slowdown-factor field; must be a finite number ≥ 1.
fn field_slowdown(map: &BTreeMap<String, Json>, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|f| f.is_finite() && *f >= 1.0)
            .ok_or_else(|| format!("field `{key}` must be a finite number >= 1")),
    }
}

/// Decode an `arrivals` value: the string `"batch"`, a
/// `{"staggered_ms": N}` object, or a `{"trace_ms": [...]}` object with
/// one offset per job. An absent field decodes as `Batch`, so clients
/// from before arrival schedules are untouched.
fn parse_arrivals(v: &Json) -> Result<ArrivalSchedule, String> {
    const SHAPE: &str =
        "field `arrivals` must be `\"batch\"`, `{\"staggered_ms\": N}`, or `{\"trace_ms\": [...]}`";
    match v {
        Json::Str(s) if s == "batch" => Ok(ArrivalSchedule::Batch),
        Json::Obj(_) => {
            let map = known_object(v, "arrivals", &["staggered_ms", "trace_ms"])?;
            match (map.get("staggered_ms"), map.get("trace_ms")) {
                (Some(n), None) => n
                    .as_u64()
                    .map(|interval_ms| ArrivalSchedule::Staggered { interval_ms })
                    .ok_or_else(|| "field `staggered_ms` must be a non-negative integer".into()),
                (None, Some(Json::Arr(items))) => items
                    .iter()
                    .map(|o| {
                        o.as_u64().ok_or_else(|| {
                            "field `trace_ms` must be an array of non-negative integers".to_string()
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|offsets_ms| ArrivalSchedule::Trace { offsets_ms }),
                _ => Err(SHAPE.into()),
            }
        }
        _ => Err(SHAPE.into()),
    }
}

/// Encode an [`ArrivalSchedule`] in the request shape, so responses
/// echo what a client would send.
fn arrivals_json(a: &ArrivalSchedule) -> Json {
    match a {
        ArrivalSchedule::Batch => Json::str("batch"),
        ArrivalSchedule::Staggered { interval_ms } => {
            Json::obj([("staggered_ms", (*interval_ms).into())])
        }
        ArrivalSchedule::Trace { offsets_ms } => Json::obj([(
            "trace_ms",
            Json::Arr(offsets_ms.iter().map(|&o| o.into()).collect()),
        )]),
    }
}

/// Decode one `mix` entry object: a job kind (required) with input
/// size, copy count, reduce policy, and submit offset.
fn parse_mix_entry(v: &Json) -> Result<MixEntry, String> {
    let map = known_object(
        v,
        "mix entry",
        &["job", "input_bytes", "count", "reduces", "submit_offset_ms"],
    )?;
    let job = map
        .get("job")
        .ok_or("mix entry needs a `job` field")?
        .as_str()
        .ok_or_else(|| "field `job` must be a string".to_string())
        .and_then(parse_job)?;
    Ok(MixEntry {
        job,
        input_bytes: field_positive(map, "input_bytes", GB)?,
        count: field_positive(map, "count", 1)? as usize,
        reduces: parse_reduces(map)?,
        submit_offset_ms: field_u64(map, "submit_offset_ms", 0)?,
    })
}

/// Decode a `mix` array into a [`WorkloadMix`].
fn parse_mix(v: &Json) -> Result<WorkloadMix, String> {
    let Json::Arr(items) = v else {
        return Err("a mix must be an array of entry objects".into());
    };
    if items.is_empty() {
        return Err("a mix must have at least one entry".into());
    }
    Ok(WorkloadMix::new(
        items
            .iter()
            .map(parse_mix_entry)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

/// The single-job fields that conflict with an explicit mix.
const SINGLE_JOB_FIELDS: [&str; 4] = ["job", "input_bytes", "n_jobs", "reduces"];

/// A string-typed field, when present.
fn field_str<'a>(map: &'a BTreeMap<String, Json>, key: &str) -> Result<Option<&'a str>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// An optional positive finite rate (jobs/second).
fn field_rate(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<f64>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|r| r.is_finite() && *r > 0.0)
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a positive finite rate (jobs/second)")),
    }
}

/// The one shared workload decoder behind `/v1/estimate` and
/// `/v1/plan`: an explicit `mix` array of entry objects, or the legacy
/// single-job fields (`job`, `input_bytes`, `n_jobs`, `reduces`) as a
/// 1-entry mix — never both. Returns the mix plus the legacy fields
/// the request actually used, so callers can surface them as
/// `deprecations`.
fn parse_workload(
    map: &BTreeMap<String, Json>,
) -> Result<(WorkloadMix, Vec<&'static str>), String> {
    match map.get("mix") {
        Some(v) => {
            if let Some(conflict) = SINGLE_JOB_FIELDS.iter().find(|f| map.contains_key(**f)) {
                return Err(format!(
                    "field `{conflict}` conflicts with `mix`; describe the workload one way"
                ));
            }
            Ok((parse_mix(v)?, Vec::new()))
        }
        None => {
            let mix = WorkloadMix::new([MixEntry {
                job: field_str(map, "job")?.map_or(Ok(JobKind::WordCount), parse_job)?,
                input_bytes: field_positive(map, "input_bytes", GB)?,
                count: field_positive(map, "n_jobs", 1)? as usize,
                reduces: parse_reduces(map)?,
                submit_offset_ms: 0,
            }]);
            let used = SINGLE_JOB_FIELDS
                .into_iter()
                .filter(|f| map.contains_key(*f))
                .collect();
            Ok((mix, used))
        }
    }
}

/// Decode a `POST /v1/estimate` body.
///
/// The workload is either a `mix` array of entry objects or the
/// original single-job fields (`job`, `input_bytes`, `n_jobs`,
/// `reduces`), which decode as a 1-entry mix for back-compatibility
/// (surfaced in the reply's `deprecations`); mixing the two styles is
/// rejected. An `arrival_rate` makes the point an open-arrival solve —
/// it combines only with batch arrivals.
pub fn parse_estimate_request(body: &str) -> Result<EstimateRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "estimate request",
        &[
            "nodes",
            "block_mb",
            "container_mb",
            "scheduler",
            "job",
            "input_bytes",
            "n_jobs",
            "mix",
            "arrivals",
            "arrival_rate",
            "map_failure_prob",
            "slow_node_factor",
            "estimator",
            "reduces",
            "seed",
            "backends",
            "debug",
        ],
    )?;
    let nodes = field_positive(map, "nodes", 4)? as usize;
    let (mix, deprecations) = parse_workload(map)?;
    mix.check(&[nodes])?;
    let arrivals = match map.get("arrivals") {
        None => ArrivalSchedule::Batch,
        Some(v) => parse_arrivals(v)?,
    };
    arrivals.check(&mix)?;
    let arrival_rate = field_rate(map, "arrival_rate")?;
    if arrival_rate.is_some() && arrivals != ArrivalSchedule::Batch {
        return Err(
            "field `arrival_rate` combines only with batch arrivals (an open rate replaces the schedule)"
                .into(),
        );
    }
    let point = EvalPoint {
        index: 0,
        nodes,
        block_mb: field_positive(map, "block_mb", 128)?,
        container_mb: field_positive_u32(map, "container_mb", 1024)?,
        scheduler: field_str(map, "scheduler")?
            .map_or(Ok(SchedulerPolicy::CapacityFifo), parse_scheduler)?,
        mix: mix.resolve(nodes),
        arrivals,
        arrival_rate,
        map_failure_prob: field_prob(map, "map_failure_prob", 0.0)?,
        slow_node_factor: field_slowdown(map, "slow_node_factor", 1.0)?,
        estimator: field_str(map, "estimator")?
            .map_or(Ok(EstimatorKind::ForkJoin), parse_estimator)?,
        seed: field_u64(map, "seed", 1)?,
    };
    let backends = match map.get("backends") {
        None => Backends::analytic_only(),
        Some(v) => parse_backends(v, Backends::analytic_only())?,
    };
    if !backends.analytic && backends.simulator.is_none() {
        return Err("at least one backend must be enabled".into());
    }
    Ok(EstimateRequest {
        point,
        backends,
        debug: field_debug(map)?,
        deprecations,
    })
}

/// A decoded `POST /v1/plan` body.
#[derive(Debug, Clone)]
pub struct PlanApiRequest {
    /// The capacity-planning question.
    pub plan: PlanRequest,
    /// Attach a per-span timing breakdown to the reply (`"debug": true`).
    pub debug: bool,
    /// Legacy single-job fields the request used.
    pub deprecations: Vec<&'static str>,
}

/// Decode a `POST /v1/plan` body:
///
/// ```json
/// {"mix":[{"job":"wordcount"}],
///  "arrival_rate":0.1,
///  "slo":{"metric":"response","threshold":300},
///  "search":{"min_nodes":1,"max_nodes":64}}
/// ```
///
/// The workload shares `/v1/estimate`'s decoder (an explicit `mix` or
/// the legacy single-job fields); `arrival_rate` and `slo` are
/// required; `search` defaults to 1–64 nodes. Semantic validation
/// (positive rate, satisfiable threshold, non-empty range) is
/// [`PlanRequest::check`]'s, applied by the planner itself.
pub fn parse_plan_request(body: &str) -> Result<PlanApiRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "plan request",
        &[
            "mix",
            "job",
            "input_bytes",
            "n_jobs",
            "reduces",
            "arrival_rate",
            "slo",
            "search",
            "block_mb",
            "container_mb",
            "scheduler",
            "estimator",
            "seed",
            "debug",
        ],
    )?;
    let (mix, deprecations) = parse_workload(map)?;
    let arrival_rate =
        field_rate(map, "arrival_rate")?.ok_or("plan request needs an `arrival_rate` field")?;
    let slo = {
        let v = map.get("slo").ok_or("plan request needs a `slo` object")?;
        let slo = known_object(v, "slo", &["metric", "threshold"])?;
        let metric = field_str(slo, "metric")?
            .ok_or("field `metric` is required in `slo`")
            .and_then(|s| {
                SloMetric::parse(s)
                    .ok_or("field `metric` must be `response`, `makespan`, or `utilization`")
            })?;
        let threshold = slo
            .get("threshold")
            .and_then(Json::as_f64)
            .ok_or("field `threshold` must be a number")?;
        SloSpec { metric, threshold }
    };
    let search = match map.get("search") {
        None => SearchSpace::default(),
        Some(v) => {
            let s = known_object(v, "search", &["min_nodes", "max_nodes"])?;
            let default = SearchSpace::default();
            SearchSpace {
                min_nodes: field_positive(s, "min_nodes", default.min_nodes as u64)? as usize,
                max_nodes: field_positive(s, "max_nodes", default.max_nodes as u64)? as usize,
            }
        }
    };
    let mut plan = PlanRequest::new(mix, arrival_rate, slo);
    plan.search = search;
    plan.block_mb = field_positive(map, "block_mb", 128)?;
    plan.container_mb = field_positive_u32(map, "container_mb", 1024)?;
    plan.scheduler =
        field_str(map, "scheduler")?.map_or(Ok(SchedulerPolicy::CapacityFifo), parse_scheduler)?;
    plan.estimator =
        field_str(map, "estimator")?.map_or(Ok(EstimatorKind::ForkJoin), parse_estimator)?;
    plan.seed = field_u64(map, "seed", 1)?;
    Ok(PlanApiRequest {
        plan,
        debug: field_debug(map)?,
        deprecations,
    })
}

/// Decode a `POST /v1/scenario` body into a [`Scenario`] (validated
/// with [`Scenario::check`]).
///
/// The workload axis is either a `mixes` array (each element an array
/// of mix-entry objects — one axis position per mix) or the original
/// grid fields (`jobs`, `input_bytes`, `n_jobs`, `reduces`), which
/// cross into 1-entry mixes for back-compatibility; mixing the two
/// styles is rejected.
pub fn parse_scenario_request(body: &str) -> Result<ScenarioRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "scenario request",
        &[
            "name",
            "sweep",
            "nodes",
            "block_mb",
            "container_mb",
            "schedulers",
            "jobs",
            "input_bytes",
            "n_jobs",
            "mixes",
            "arrivals",
            "arrival_rate",
            "map_failure_prob",
            "slow_node_factor",
            "estimators",
            "reduces",
            "backends",
            "seed",
            "debug",
            "stream",
        ],
    )?;
    let name = match map.get("name") {
        None => "adhoc".to_string(),
        Some(v) => v
            .as_str()
            .ok_or("field `name` must be a string")?
            .to_string(),
    };
    let mut s = Scenario::new(name);
    match map.get("sweep").map(|v| v.as_str()) {
        None => {}
        Some(Some("cartesian")) => s.sweep = SweepMode::Cartesian,
        Some(Some("zip")) => s.sweep = SweepMode::Zip,
        Some(_) => return Err("field `sweep` must be `\"cartesian\"` or `\"zip\"`".into()),
    }
    if let Some(v) = field_u64_list(map, "nodes")? {
        s.nodes = v.into_iter().map(|n| n as usize).collect();
    }
    if let Some(v) = field_u64_list(map, "block_mb")? {
        s.block_mb = v;
    }
    if let Some(v) = field_u64_list(map, "container_mb")? {
        s.container_mb = v
            .into_iter()
            .map(|n| {
                u32::try_from(n).map_err(|_| "field `container_mb` must fit 32 bits".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = field_str_list(map, "schedulers")? {
        s.schedulers = v
            .iter()
            .map(|x| parse_scheduler(x))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = map.get("mixes") {
        let grid_fields = ["jobs", "input_bytes", "n_jobs", "reduces"];
        if let Some(conflict) = grid_fields.iter().find(|f| map.contains_key(**f)) {
            return Err(format!(
                "field `{conflict}` conflicts with `mixes`; describe the workload one way"
            ));
        }
        let Json::Arr(items) = v else {
            return Err("field `mixes` must be an array of mixes".into());
        };
        s = s.axis_mixes(items.iter().map(parse_mix).collect::<Result<Vec<_>, _>>()?);
    } else {
        if let Some(v) = field_str_list(map, "jobs")? {
            s = s.axis_jobs(
                v.iter()
                    .map(|x| parse_job(x))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        if let Some(v) = field_u64_list(map, "input_bytes")? {
            s = s.axis_input_bytes(v);
        }
        if let Some(v) = field_u64_list(map, "n_jobs")? {
            s = s.axis_n_jobs(v.into_iter().map(|n| n as usize).collect::<Vec<_>>());
        }
        s.reduces = parse_reduces(map)?;
    }
    match map.get("arrivals") {
        None => {}
        Some(Json::Arr(items)) => {
            s = s.axis_arrivals(
                items
                    .iter()
                    .map(parse_arrivals)
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        Some(_) => return Err("field `arrivals` must be an array of arrival schedules".into()),
    }
    match map.get("arrival_rate") {
        None => {}
        Some(Json::Arr(items)) => {
            s.arrival_rate = items
                .iter()
                .map(|v| match v {
                    Json::Null => Ok(None),
                    _ => v
                        .as_f64()
                        .filter(|r| r.is_finite() && *r > 0.0)
                        .map(Some)
                        .ok_or(
                            "field `arrival_rate` must be an array of positive finite \
                             rates (null for a closed point)",
                        ),
                })
                .collect::<Result<_, _>>()?;
        }
        Some(_) => {
            return Err(
                "field `arrival_rate` must be an array of positive finite rates \
                 (null for a closed point)"
                    .into(),
            )
        }
    }
    match map.get("map_failure_prob") {
        None => {}
        Some(Json::Arr(items)) => {
            s.map_failure_prob = items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|p| (0.0..1.0).contains(p))
                        .ok_or("field `map_failure_prob` must be an array of numbers in [0, 1)")
                })
                .collect::<Result<_, _>>()?;
        }
        Some(_) => {
            return Err("field `map_failure_prob` must be an array of numbers in [0, 1)".into())
        }
    }
    match map.get("slow_node_factor") {
        None => {}
        Some(Json::Arr(items)) => {
            s.slow_node_factor = items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|f| f.is_finite() && *f >= 1.0)
                        .ok_or("field `slow_node_factor` must be an array of numbers >= 1")
                })
                .collect::<Result<_, _>>()?;
        }
        Some(_) => return Err("field `slow_node_factor` must be an array of numbers >= 1".into()),
    }
    if let Some(v) = field_str_list(map, "estimators")? {
        s.estimators = v
            .iter()
            .map(|x| parse_estimator(x))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = map.get("backends") {
        // Scenario sweeps default to the analytic fast path too; the
        // paper methodology (simulator + profile) is opt-in per request.
        s.backends = parse_backends(v, Backends::analytic_only())?;
    } else {
        s.backends = Backends::analytic_only();
    }
    s.seed = field_u64(map, "seed", 1)?;
    s.check()?;
    let stream = match map.get("stream") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| "field `stream` must be a boolean".to_string())?,
    };
    Ok(ScenarioRequest {
        scenario: s,
        debug: field_debug(map)?,
        stream,
    })
}

/// Encode one span of a trace with its children nested under
/// `"children"` (omitted when empty).
fn span_node(trace: &mr2_obs::Trace, span: &mr2_obs::TraceSpan) -> Json {
    let children: Vec<Json> = trace
        .children(span.id)
        .into_iter()
        .map(|c| span_node(trace, c))
        .collect();
    let mut node = Json::obj([
        ("id", u64::from(span.id).into()),
        ("name", Json::str(span.name)),
        ("start_ms", Json::num(span.start.as_secs_f64() * 1e3)),
        ("duration_ms", Json::num(span.duration.as_secs_f64() * 1e3)),
    ]);
    if !children.is_empty() {
        if let Json::Obj(map) = &mut node {
            map.insert("children".into(), Json::Arr(children));
        }
    }
    node
}

/// Encode a trace's spans as a forest of root spans (sequential, so
/// root durations sum to at most the trace's wall time), children
/// nested.
fn span_forest(trace: &mr2_obs::Trace) -> Json {
    Json::Arr(
        trace
            .roots()
            .into_iter()
            .map(|r| span_node(trace, r))
            .collect(),
    )
}

/// The `/v1/trace/recent?id=…` URL for a request id — the correlation
/// hint `debug` replies and access-log readers share.
pub fn trace_url(request_id: u64) -> String {
    format!("/v1/trace/recent?id={request_id}")
}

/// Encode a finished [`mr2_obs::Trace`] as the reply's `debug` object:
/// the request id, the measured wall time, a `trace_url` for fetching
/// the retained trace later, and the span tree. Root spans are
/// sequential by construction, so *their* durations sum to at most
/// `wall_ms`.
pub fn debug_json(trace: &mr2_obs::Trace) -> Json {
    Json::obj([
        ("request_id", trace.request_id.into()),
        ("wall_ms", Json::num(trace.wall.as_secs_f64() * 1e3)),
        ("trace_url", Json::str(trace_url(trace.request_id))),
        ("spans", span_forest(trace)),
    ])
}

/// Encode one retained trace for `GET /v1/trace/recent`.
pub fn trace_json(trace: &mr2_obs::Trace) -> Json {
    Json::obj([
        ("request_id", trace.request_id.into()),
        ("label", Json::str(trace.label)),
        ("wall_ms", Json::num(trace.wall.as_secs_f64() * 1e3)),
        ("dropped_spans", u64::from(trace.dropped).into()),
        ("spans", span_forest(trace)),
    ])
}

/// Encode the in-flight (and recently finished) sweeps for
/// `GET /v1/jobs`.
pub fn jobs_json(jobs: &[crate::jobs::JobView]) -> Json {
    let entries: Vec<Json> = jobs
        .iter()
        .map(|j| {
            let per_estimator =
                Json::obj(j.per_estimator.map(|(name, done)| (name, Json::from(done))));
            Json::obj([
                ("request_id", j.request_id.into()),
                ("name", Json::str(j.name.clone())),
                (
                    "state",
                    Json::str(if j.running { "running" } else { "done" }),
                ),
                ("streaming", j.streaming.into()),
                ("points_done", j.done.into()),
                ("points_total", j.total.into()),
                ("elapsed_ms", Json::num(j.elapsed.as_secs_f64() * 1e3)),
                (
                    "eta_ms",
                    match j.eta {
                        Some(eta) => Json::num(eta.as_secs_f64() * 1e3),
                        None => Json::Null,
                    },
                ),
                ("per_estimator", per_estimator),
            ])
        })
        .collect();
    Json::obj([("jobs", Json::Arr(entries))])
}

/// Encode the profiler's merged call tree for
/// `GET /debug/profile?format=json`.
pub fn profile_json(forest: &[mr2_obs::profile::ProfileNode]) -> Json {
    Json::Arr(
        forest
            .iter()
            .map(|n| {
                let mut node = Json::obj([
                    ("name", Json::str(n.name.clone())),
                    ("self_us", Json::num(n.self_time.as_micros() as f64)),
                    ("total_us", Json::num(n.total_time.as_micros() as f64)),
                    ("count", n.count.into()),
                ]);
                if !n.children.is_empty() {
                    if let Json::Obj(map) = &mut node {
                        map.insert("children".into(), profile_json(&n.children));
                    }
                }
                node
            })
            .collect(),
    )
}

/// Encode a resolved mix as the reply's `mix` array (one object per
/// class, resolved reduce counts and submit offsets included).
fn mix_json(entries: &[ResolvedEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("job", Json::str(e.job.name())),
                    ("input_bytes", e.input_bytes.into()),
                    ("count", e.count.into()),
                    ("reduces", u64::from(e.reduces).into()),
                    ("submit_offset_ms", e.submit_offset_ms.into()),
                ])
            })
            .collect(),
    )
}

/// Encode an analytic [`ModelPoint`]: the four estimator series, the
/// makespan, per-class estimates in class order, and — for
/// open-arrival solves — an additive `open` object with the bottleneck
/// utilization and the knee/saturation rates (jobs/second).
pub fn model_json(m: &ModelPoint, entries: &[ResolvedEntry]) -> Json {
    let per_class: Vec<Json> = m
        .per_class
        .iter()
        .zip(entries)
        .map(|(c, e)| {
            Json::obj([
                ("class", Json::str(e.label())),
                ("fork_join", Json::num(c.fork_join)),
                ("tripathi", Json::num(c.tripathi)),
                ("aria", Json::num(c.aria)),
                ("herodotou", Json::num(c.herodotou)),
            ])
        })
        .collect();
    let open = m.open.map_or(Json::Null, |o| {
        Json::obj([
            (
                "bottleneck_utilization",
                Json::num(o.bottleneck_utilization),
            ),
            ("knee_rate", Json::num(o.knee_rate)),
            ("saturation_rate", Json::num(o.saturation_rate)),
        ])
    });
    Json::obj([
        ("fork_join", Json::num(m.fork_join)),
        ("tripathi", Json::num(m.tripathi)),
        ("aria", Json::num(m.aria)),
        ("herodotou", Json::num(m.herodotou)),
        ("makespan", Json::num(m.makespan)),
        ("per_class", Json::Arr(per_class)),
        ("open", open),
    ])
}

/// Encode one evaluated point. The workload is a `mix` array (one
/// object per class, resolved reduce counts and submit offsets
/// included); per-class model estimates and simulator medians ride
/// along in class order, and both backends report response time and
/// makespan separately (they diverge under non-batch arrivals).
pub fn point_json(p: &PointResult) -> Json {
    let model = p
        .model
        .as_ref()
        .map_or(Json::Null, |m| model_json(m, &p.point.mix.entries));
    let sim = p.sim.as_ref().map_or(Json::Null, |s| {
        Json::obj([
            ("median_response", Json::num(s.median_response)),
            ("mean_response", Json::num(s.mean_response)),
            ("makespan", Json::num(s.makespan)),
            (
                "per_class_median",
                Json::Arr(s.per_class_median.iter().copied().map(Json::num).collect()),
            ),
            ("reps", s.reps.into()),
        ])
    });
    Json::obj([
        ("index", p.point.index.into()),
        ("nodes", p.point.nodes.into()),
        ("block_mb", p.point.block_mb.into()),
        ("container_mb", u64::from(p.point.container_mb).into()),
        (
            "scheduler",
            Json::str(match p.point.scheduler {
                SchedulerPolicy::CapacityFifo => "capacity_fifo",
                SchedulerPolicy::Fair => "fair",
            }),
        ),
        ("mix", mix_json(&p.point.mix.entries)),
        ("total_jobs", p.point.total_jobs().into()),
        ("arrivals", arrivals_json(&p.point.arrivals)),
        (
            "arrival_rate",
            p.point.arrival_rate.map_or(Json::Null, Json::num),
        ),
        ("map_failure_prob", Json::num(p.point.map_failure_prob)),
        ("slow_node_factor", Json::num(p.point.slow_node_factor)),
        ("estimator", Json::str(p.point.estimator.name())),
        ("seed", p.point.seed.into()),
        ("model", model),
        ("sim", sim),
        ("estimate", p.estimate().map_or(Json::Null, Json::num)),
        ("measured", p.measured().map_or(Json::Null, Json::num)),
    ])
}

/// Encode a sweep's aggregate and per-class error bands (empty unless
/// both backends ran).
fn bands_json(sweep: &SweepResult) -> (Json, Json) {
    let bands: Vec<Json> = error_bands(sweep)
        .into_iter()
        .map(|b| {
            Json::obj([
                ("estimator", Json::str(b.estimator.name())),
                ("min", Json::num(b.band.min)),
                ("max", Json::num(b.band.max)),
                ("mean", Json::num(b.band.mean)),
                ("points", u64::from(b.band.count).into()),
            ])
        })
        .collect();
    let per_class: Vec<Json> = class_error_bands(sweep)
        .into_iter()
        .map(|b| {
            Json::obj([
                ("class", Json::str(b.class)),
                ("estimator", Json::str(b.estimator.name())),
                ("min", Json::num(b.band.min)),
                ("max", Json::num(b.band.max)),
                ("mean", Json::num(b.band.mean)),
                ("points", u64::from(b.band.count).into()),
            ])
        })
        .collect();
    (Json::Arr(bands), Json::Arr(per_class))
}

/// Encode a whole sweep: points in expansion order plus the aggregate
/// and per-class error bands (present only when both backends ran).
pub fn sweep_json(sweep: &SweepResult) -> Json {
    let (bands, per_class) = bands_json(sweep);
    Json::obj([
        ("name", Json::str(sweep.name.clone())),
        ("num_points", sweep.points.len().into()),
        (
            "points",
            Json::Arr(sweep.points.iter().map(point_json).collect()),
        ),
        ("error_bands", bands),
        ("class_error_bands", per_class),
    ])
}

/// The summary tail line of a streaming (`"stream": true`) scenario
/// reply: everything [`sweep_json`] carries except the per-point array
/// — those already went out as their own NDJSON lines — plus
/// `"done": true` so a client can tell a complete stream from one cut
/// short.
pub fn sweep_tail_json(sweep: &SweepResult) -> Json {
    let (bands, per_class) = bands_json(sweep);
    let mut tail = Json::obj([
        ("done", true.into()),
        ("name", Json::str(sweep.name.clone())),
        ("num_points", sweep.points.len().into()),
        ("error_bands", bands),
        ("class_error_bands", per_class),
    ]);
    stamp_reply(&mut tail, &[]);
    tail
}

/// Encode a capacity plan: whether the SLO is satisfiable inside the
/// search range, the chosen (cheapest satisfying) node count, the
/// predicted metric there, the full analytic model point at that
/// configuration — its `open` object carries the knee and saturation
/// rates — and the bisection probe trail in solve order.
pub fn plan_json(req: &PlanRequest, result: &PlanResult) -> Json {
    let probes: Vec<Json> = result
        .probes
        .iter()
        .map(|p| {
            Json::obj([
                ("nodes", p.nodes.into()),
                ("predicted", Json::num(p.predicted)),
                ("satisfies", p.satisfies.into()),
            ])
        })
        .collect();
    let resolved = req.mix.resolve(result.nodes);
    Json::obj([
        ("feasible", result.feasible.into()),
        ("nodes", result.nodes.into()),
        ("predicted", Json::num(result.predicted)),
        (
            "slo",
            Json::obj([
                ("metric", Json::str(req.slo.metric.name())),
                ("threshold", Json::num(req.slo.threshold)),
            ]),
        ),
        ("arrival_rate", Json::num(req.arrival_rate)),
        (
            "search",
            Json::obj([
                ("min_nodes", req.search.min_nodes.into()),
                ("max_nodes", req.search.max_nodes.into()),
            ]),
        ),
        ("mix", mix_json(&resolved.entries)),
        ("model", model_json(&result.point, &resolved.entries)),
        ("probes", Json::Arr(probes)),
    ])
}

/// Fraction of resolved lookups answered from a ready entry (0 when
/// the cache has seen none).
pub fn hit_ratio(s: &CacheStats) -> f64 {
    let lookups = s.hits + s.misses;
    if lookups == 0 {
        0.0
    } else {
        s.hits as f64 / lookups as f64
    }
}

/// Encode cache counters.
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("coalesced", s.coalesced.into()),
        ("evictions", s.evictions.into()),
        ("hit_ratio", Json::num(hit_ratio(s))),
        ("entries", s.entries.into()),
        ("capacity", s.capacity.into()),
        ("schema_version", mr2_scenario::schema_version().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_request_defaults_mirror_scenario_new() {
        let r = parse_estimate_request("{}").unwrap();
        assert_eq!(r.point.nodes, 4);
        assert_eq!(r.point.block_mb, 128);
        assert_eq!(r.point.container_mb, 1024);
        assert_eq!(r.point.scheduler, SchedulerPolicy::CapacityFifo);
        assert_eq!(r.point.mix.entries.len(), 1);
        assert_eq!(r.point.mix.entries[0].job, JobKind::WordCount);
        assert_eq!(r.point.mix.entries[0].input_bytes, GB);
        assert_eq!(r.point.total_jobs(), 1);
        assert_eq!(r.point.estimator, EstimatorKind::ForkJoin);
        assert_eq!(r.point.mix.entries[0].reduces, 4, "per-node default");
        assert_eq!(r.point.arrivals, ArrivalSchedule::Batch, "absent = batch");
        assert_eq!(r.point.map_failure_prob, 0.0);
        assert_eq!(r.point.slow_node_factor, 1.0);
        assert_eq!(r.point.seed, 1);
        assert_eq!(r.backends, Backends::analytic_only());
    }

    #[test]
    fn estimate_request_decodes_arrivals_and_stragglers() {
        let r = parse_estimate_request(
            r#"{"nodes":4,"n_jobs":3,"arrivals":{"staggered_ms":2000},"slow_node_factor":2.5}"#,
        )
        .unwrap();
        assert_eq!(
            r.point.arrivals,
            ArrivalSchedule::Staggered { interval_ms: 2000 }
        );
        assert_eq!(r.point.slow_node_factor, 2.5);
        assert_eq!(r.point.submit_offsets(), vec![0.0, 2.0, 4.0]);

        let r =
            parse_estimate_request(r#"{"nodes":4,"n_jobs":2,"arrivals":{"trace_ms":[0,1500]}}"#)
                .unwrap();
        assert_eq!(
            r.point.arrivals,
            ArrivalSchedule::Trace {
                offsets_ms: vec![0, 1500]
            }
        );

        // Mix entries carry their own submit offsets.
        let r = parse_estimate_request(
            r#"{"nodes":4,"mix":[
                {"job":"wordcount"},
                {"job":"grep","submit_offset_ms":30000}]}"#,
        )
        .unwrap();
        assert_eq!(r.point.mix.entries[1].submit_offset_ms, 30000);
        assert_eq!(r.point.submit_offsets(), vec![0.0, 30.0]);

        // Explicit batch still decodes.
        let r = parse_estimate_request(r#"{"arrivals":"batch"}"#).unwrap();
        assert_eq!(r.point.arrivals, ArrivalSchedule::Batch);
    }

    #[test]
    fn estimate_request_rejects_bad_arrivals_and_stragglers() {
        for (body, needle) in [
            (r#"{"arrivals":"burst"}"#, "must be `\"batch\"`"),
            (
                r#"{"arrivals":{"staggered_ms":-5}}"#,
                "non-negative integer",
            ),
            (
                r#"{"arrivals":{"staggered_ms":1,"trace_ms":[0]}}"#,
                "must be `\"batch\"`",
            ),
            (r#"{"arrivals":{"later_ms":1}}"#, "unknown arrivals field"),
            (r#"{"n_jobs":3,"arrivals":{"trace_ms":[0,5]}}"#, "2 offsets"),
            (r#"{"slow_node_factor":0.5}"#, ">= 1"),
            (r#"{"slow_node_factor":"slow"}"#, ">= 1"),
            (
                r#"{"mix":[{"job":"grep","submit_offset_ms":-1}]}"#,
                "non-negative integer",
            ),
        ] {
            let err = parse_estimate_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn estimate_request_decodes_every_single_job_field() {
        // The original single-job shape keeps decoding, as a 1-entry
        // mix.
        let r = parse_estimate_request(
            r#"{"nodes":8,"block_mb":64,"container_mb":2048,"scheduler":"fair",
                "job":"terasort","input_bytes":5368709120,"n_jobs":3,
                "estimator":"tripathi","reduces":2,"seed":9,"map_failure_prob":0.25,
                "backends":{"analytic":true,"profile_calibration":true,"simulator":5}}"#,
        )
        .unwrap();
        assert_eq!(r.point.nodes, 8);
        assert_eq!(r.point.scheduler, SchedulerPolicy::Fair);
        assert_eq!(r.point.mix.entries[0].job, JobKind::TeraSort);
        assert_eq!(r.point.mix.entries[0].input_bytes, 5 * GB);
        assert_eq!(r.point.mix.entries[0].count, 3);
        assert_eq!(r.point.estimator, EstimatorKind::Tripathi);
        assert_eq!(
            r.point.mix.entries[0].reduces, 2,
            "fixed count overrides per-node"
        );
        assert_eq!(r.point.map_failure_prob, 0.25);
        assert_eq!(r.backends.simulator, Some(5));
        assert!(r.backends.profile_calibration);
    }

    #[test]
    fn estimate_request_decodes_a_mix() {
        let r = parse_estimate_request(
            r#"{"nodes":4,"mix":[
                {"job":"wordcount","input_bytes":1073741824,"count":2},
                {"job":"terasort","input_bytes":2147483648,"reduces":3},
                {"job":"grep"}]}"#,
        )
        .unwrap();
        assert_eq!(r.point.mix.entries.len(), 3);
        assert_eq!(r.point.total_jobs(), 4);
        assert_eq!(r.point.mix.entries[0].count, 2);
        assert_eq!(r.point.mix.entries[0].reduces, 4, "per-node at 4 nodes");
        assert_eq!(r.point.mix.entries[1].reduces, 3, "fixed");
        assert_eq!(r.point.mix.entries[2].job, JobKind::Grep);
        assert_eq!(r.point.mix.entries[2].input_bytes, GB, "entry default");
    }

    #[test]
    fn estimate_request_rejects_bad_input() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (r#"{"node":4}"#, "unknown estimate request field `node`"),
            (r#"{"nodes":0}"#, "must be positive"),
            (r#"{"nodes":-2}"#, "non-negative integer"),
            (r#"{"scheduler":"yarn"}"#, "unknown scheduler"),
            (r#"{"job":"sort"}"#, "unknown job"),
            (r#"{"estimator":"magic"}"#, "unknown estimator"),
            (r#"{"reduces":0}"#, "per_node"),
            // 2^32 + 1024: silent truncation would price 4 TiB
            // containers as 1 GiB ones.
            (r#"{"container_mb":4294968320}"#, "fit 32 bits"),
            (r#"{"reduces":4294967296}"#, "per_node"),
            (
                r#"{"backends":{"analytic":false,"simulator":null}}"#,
                "at least one backend",
            ),
            (r#"{"backends":{"sim":1}}"#, "unknown backends field"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"map_failure_prob":1.0}"#, "in [0, 1)"),
            (r#"{"map_failure_prob":"high"}"#, "in [0, 1)"),
            // Mix errors.
            (r#"{"mix":[]}"#, "at least one entry"),
            (r#"{"mix":{}}"#, "array of entry objects"),
            (r#"{"mix":[{"input_bytes":1}]}"#, "needs a `job` field"),
            (r#"{"mix":[{"job":"grep","count":0}]}"#, "must be positive"),
            (
                r#"{"mix":[{"job":"grep","size":1}]}"#,
                "unknown mix entry field `size`",
            ),
            // The two workload styles don't combine.
            (
                r#"{"n_jobs":2,"mix":[{"job":"grep"}]}"#,
                "conflicts with `mix`",
            ),
        ] {
            let err = parse_estimate_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn scenario_request_builds_axes() {
        let s = parse_scenario_request(
            r#"{"name":"grow","nodes":[4,8,16],"n_jobs":[1,2],
                "estimators":["fork_join","tripathi"],"jobs":["grep"],
                "input_bytes":[1073741824],"seed":7}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.name, "grow");
        assert_eq!(s.nodes, vec![4, 8, 16]);
        let mixes = s.workload_values();
        assert_eq!(mixes.len(), 2, "jobs × input_bytes × n_jobs");
        assert_eq!(mixes[0].entries[0].job, JobKind::Grep);
        assert_eq!(mixes[1].total_jobs(), 2);
        assert_eq!(
            s.estimators,
            vec![EstimatorKind::ForkJoin, EstimatorKind::Tripathi]
        );
        assert_eq!(s.seed, 7);
        assert_eq!(s.num_points(), 3 * 2 * 2);
        assert_eq!(s.backends, Backends::analytic_only(), "serving default");
    }

    #[test]
    fn scenario_request_builds_a_mix_axis() {
        let s = parse_scenario_request(
            r#"{"name":"mixed","nodes":[4,8],
                "mixes":[[{"job":"wordcount","count":2},{"job":"grep"}],
                         [{"job":"terasort"}]],
                "map_failure_prob":[0.0,0.1]}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.num_points(), 2 * 2 * 2, "nodes × mixes × failure");
        let mixes = s.workload_values();
        assert_eq!(mixes.len(), 2);
        assert_eq!(mixes[0].entries.len(), 2);
        assert_eq!(mixes[0].total_jobs(), 3);
        assert_eq!(s.map_failure_prob, vec![0.0, 0.1]);
    }

    #[test]
    fn scenario_request_builds_arrival_and_straggler_axes() {
        let s = parse_scenario_request(
            r#"{"name":"arrivals","nodes":[4],"n_jobs":[2],
                "arrivals":["batch",{"staggered_ms":60000},{"trace_ms":[0,90000]}],
                "slow_node_factor":[1.0,4.0]}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.num_points(), 3 * 2, "arrivals × slow_node_factor");
        assert_eq!(s.arrivals.len(), 3);
        assert_eq!(
            s.arrivals[1],
            ArrivalSchedule::Staggered { interval_ms: 60000 }
        );
        assert_eq!(s.slow_node_factor, vec![1.0, 4.0]);

        // Mixes may carry per-entry offsets (trace replay through the
        // service).
        let s = parse_scenario_request(
            r#"{"nodes":[2,4],
                "mixes":[[{"job":"wordcount"},
                          {"job":"grep","submit_offset_ms":45000}]]}"#,
        )
        .unwrap()
        .scenario;
        let mixes = s.workload_values();
        assert_eq!(mixes[0].entries[1].submit_offset_ms, 45000);
    }

    #[test]
    fn scenario_request_builds_an_arrival_rate_axis() {
        let s = parse_scenario_request(
            r#"{"name":"open","nodes":[4],"n_jobs":[1],
                "arrival_rate":[null,0.001,0.002]}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.arrival_rate, vec![None, Some(0.001), Some(0.002)]);
        assert_eq!(s.num_points(), 3);
        for bad in [
            r#"{"arrival_rate":0.1}"#,
            r#"{"arrival_rate":[0.0]}"#,
            r#"{"arrival_rate":["fast"]}"#,
        ] {
            assert!(
                parse_scenario_request(bad)
                    .unwrap_err()
                    .contains("positive finite"),
                "{bad}"
            );
        }
        // The open rate replaces an arrival schedule, never overlays one.
        assert!(parse_scenario_request(
            r#"{"n_jobs":[2],"arrival_rate":[0.1],"arrivals":[{"staggered_ms":1000}]}"#
        )
        .unwrap_err()
        .contains("batch arrivals"));
    }

    #[test]
    fn scenario_request_rejects_invalid_specs() {
        assert!(parse_scenario_request(r#"{"nodes":[]}"#)
            .unwrap_err()
            .contains("nodes axis is empty"));
        assert!(
            parse_scenario_request(r#"{"sweep":"zip","nodes":[1,2],"n_jobs":[1,2,3]}"#)
                .unwrap_err()
                .contains("zip axis")
        );
        assert!(parse_scenario_request(r#"{"axes":{}}"#)
            .unwrap_err()
            .contains("unknown scenario request field"));
        assert!(
            parse_scenario_request(r#"{"container_mb":[1024,4294968320]}"#)
                .unwrap_err()
                .contains("fit 32 bits")
        );
        assert!(
            parse_scenario_request(r#"{"jobs":["grep"],"mixes":[[{"job":"grep"}]]}"#)
                .unwrap_err()
                .contains("conflicts with `mixes`")
        );
        assert!(parse_scenario_request(r#"{"mixes":[[]]}"#)
            .unwrap_err()
            .contains("at least one entry"));
        assert!(parse_scenario_request(r#"{"map_failure_prob":[2.0]}"#)
            .unwrap_err()
            .contains("in [0, 1)"));
        assert!(parse_scenario_request(r#"{"arrivals":"batch"}"#)
            .unwrap_err()
            .contains("array of arrival schedules"));
        assert!(parse_scenario_request(r#"{"slow_node_factor":[0.25]}"#)
            .unwrap_err()
            .contains(">= 1"));
        // A trace schedule must fit every mix it crosses.
        assert!(
            parse_scenario_request(r#"{"n_jobs":[1,2],"arrivals":[{"trace_ms":[0]}]}"#)
                .unwrap_err()
                .contains("1 offsets")
        );
    }

    #[test]
    fn encoded_sweep_is_valid_json_with_bands() {
        use mr2_scenario::{run_scenario, ResultCache, RunnerConfig};
        let s = parse_scenario_request(
            r#"{"nodes":[2],
                "mixes":[[{"job":"wordcount","input_bytes":268435456},
                          {"job":"grep","input_bytes":268435456}]],
                "backends":{"analytic":true,"simulator":2}}"#,
        )
        .unwrap()
        .scenario;
        let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::serial());
        let v = sweep_json(&sweep);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("num_points").unwrap().as_u64(), Some(1));
        let pt = &back.get("points").unwrap().as_arr().unwrap()[0];
        assert!(pt.get("estimate").unwrap().as_f64().unwrap() > 0.0);
        assert!(pt.get("measured").unwrap().as_f64().unwrap() > 0.0);
        let mix = pt.get("mix").unwrap().as_arr().unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].get("job").unwrap().as_str(), Some("wordcount"));
        assert_eq!(mix[0].get("reduces").unwrap().as_u64(), Some(2));
        assert_eq!(mix[0].get("submit_offset_ms").unwrap().as_u64(), Some(0));
        assert_eq!(pt.get("arrivals").unwrap().as_str(), Some("batch"));
        assert_eq!(pt.get("slow_node_factor").unwrap().as_f64(), Some(1.0));
        assert!(
            pt.get("model")
                .unwrap()
                .get("makespan")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0,
            "model makespan emitted"
        );
        assert!(
            pt.get("sim")
                .unwrap()
                .get("makespan")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0,
            "sim makespan emitted"
        );
        let per_class = pt
            .get("model")
            .unwrap()
            .get("per_class")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(per_class.len(), 2);
        assert!(per_class[1].get("fork_join").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            per_class[1].get("class").unwrap().as_str(),
            Some("grep@256MB")
        );
        assert_eq!(
            pt.get("sim")
                .unwrap()
                .get("per_class_median")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert!(!back
            .get("error_bands")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert_eq!(
            back.get("class_error_bands")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2 * 4,
            "2 classes × 4 series"
        );
    }

    #[test]
    fn api_errors_classify_damage_and_name_fields() {
        // Transport/JSON damage is 400 "malformed"…
        let e = ApiError::from_parse("invalid JSON: unexpected end".into());
        assert_eq!((e.status, e.code), (400, "malformed"));
        let e = ApiError::from_parse("body is not UTF-8".into());
        assert_eq!((e.status, e.code), (400, "malformed"));
        // …while a well-formed body failing validation is 422, with the
        // offending field lifted out of the backtick convention.
        let e = ApiError::from_parse("field `nodes` must be positive".into());
        assert_eq!((e.status, e.code), (422, "validation"));
        assert_eq!(e.field.as_deref(), Some("nodes"));
        let e = ApiError::from_parse("scenario expands to 99 points".into());
        assert_eq!(e.status, 422);
        assert_eq!(e.field, None);

        // The rendered envelope round-trips as JSON.
        let v = Json::parse(&ApiError::backpressure().body()).unwrap();
        assert_eq!(v.get("api_version").unwrap().as_str(), Some("v1"));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("backpressure"));
        assert!(err.get("field").is_none());

        // HTTP-layer statuses map onto stable codes.
        for (status, code) in [
            (413, "too_large"),
            (431, "too_large"),
            (501, "not_implemented"),
            (505, "unsupported_version"),
            (500, "internal"),
        ] {
            assert_eq!(ApiError::from_status(status, "x".into()).code, code);
        }
    }

    #[test]
    fn stamped_replies_version_and_warn() {
        let mut body = Json::obj([("estimate", Json::num(1.0))]);
        stamp_reply(&mut body, &[]);
        assert_eq!(body.get("api_version").unwrap().as_str(), Some("v1"));
        assert!(body.get("deprecations").is_none(), "no warnings unasked");

        let mut body = Json::obj([("estimate", Json::num(1.0))]);
        stamp_reply(&mut body, &["job", "n_jobs"]);
        let warnings = body.get("deprecations").unwrap().as_arr().unwrap();
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].as_str().unwrap().contains("`job`"));
        assert!(warnings[0].as_str().unwrap().contains("`mix`"));
    }

    #[test]
    fn plan_request_decodes_with_defaults_and_shares_the_workload_decoder() {
        let r = parse_plan_request(
            r#"{"mix":[{"job":"terasort","input_bytes":2147483648}],
                "arrival_rate":0.05,
                "slo":{"metric":"makespan","threshold":900},
                "search":{"min_nodes":2,"max_nodes":32},
                "scheduler":"fair","seed":9}"#,
        )
        .unwrap();
        assert_eq!(r.plan.arrival_rate, 0.05);
        assert_eq!(r.plan.slo.metric, SloMetric::Makespan);
        assert_eq!(r.plan.slo.threshold, 900.0);
        assert_eq!((r.plan.search.min_nodes, r.plan.search.max_nodes), (2, 32));
        assert_eq!(r.plan.scheduler, SchedulerPolicy::Fair);
        assert_eq!(r.plan.seed, 9);
        assert!(r.deprecations.is_empty());
        assert!(!r.debug);

        // The legacy single-job shape decodes through the same path as
        // /v1/estimate, deprecations noted; search defaults to 1–64.
        let r = parse_plan_request(
            r#"{"job":"grep","input_bytes":1073741824,"n_jobs":2,
                "arrival_rate":0.01,
                "slo":{"metric":"response","threshold":300}}"#,
        )
        .unwrap();
        assert_eq!(r.plan.mix.entries[0].job, JobKind::Grep);
        assert_eq!(r.plan.mix.total_jobs(), 2);
        assert_eq!(r.deprecations, vec!["job", "input_bytes", "n_jobs"]);
        let default = SearchSpace::default();
        assert_eq!(r.plan.search.min_nodes, default.min_nodes);
        assert_eq!(r.plan.search.max_nodes, default.max_nodes);
    }

    #[test]
    fn plan_request_rejects_bad_input() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (
                r#"{"slo":{"metric":"response","threshold":1}}"#,
                "arrival_rate",
            ),
            (r#"{"arrival_rate":0.1}"#, "`slo` object"),
            (
                r#"{"arrival_rate":"fast","slo":{"metric":"response","threshold":1}}"#,
                "positive finite rate",
            ),
            (
                r#"{"arrival_rate":0.1,"slo":{"metric":"p99","threshold":1}}"#,
                "`response`, `makespan`, or `utilization`",
            ),
            (
                r#"{"arrival_rate":0.1,"slo":{"metric":"response"}}"#,
                "`threshold` must be a number",
            ),
            (
                r#"{"arrival_rate":0.1,"slo":{"metric":"response","threshold":1},"nodes":4}"#,
                "unknown plan request field `nodes`",
            ),
            (
                r#"{"arrival_rate":0.1,"slo":{"metric":"response","threshold":1},
                    "search":{"max":8}}"#,
                "unknown search field `max`",
            ),
            (
                r#"{"arrival_rate":0.1,"slo":{"metric":"response","threshold":1},
                    "mix":[{"job":"grep"}],"n_jobs":2}"#,
                "conflicts with `mix`",
            ),
        ] {
            let err = parse_plan_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn estimate_request_decodes_an_arrival_rate() {
        let r = parse_estimate_request(r#"{"nodes":4,"arrival_rate":0.002}"#).unwrap();
        assert_eq!(r.point.arrival_rate, Some(0.002));
        assert!(
            parse_estimate_request(r#"{"arrival_rate":0}"#)
                .unwrap_err()
                .contains("positive finite rate"),
            "zero rate refused"
        );
        assert!(
            parse_estimate_request(
                r#"{"n_jobs":2,"arrival_rate":0.1,"arrivals":{"staggered_ms":1000}}"#
            )
            .unwrap_err()
            .contains("batch arrivals"),
            "an open rate replaces, not overlays, a schedule"
        );
    }
}
