//! The service's wire types: JSON decoding of estimate/scenario
//! requests into `mr2-scenario` specs, and JSON encoding of evaluated
//! results, error bands, and cache statistics.
//!
//! Decoding is strict — unknown fields are rejected — because a typo'd
//! axis name that silently falls back to a default would hand a
//! capacity planner confidently wrong numbers.

use std::collections::BTreeMap;

use mapreduce_sim::{SchedulerPolicy, GB};
use mr2_scenario::{
    class_error_bands, error_bands, ArrivalSchedule, Backends, CacheStats, EstimatorKind,
    EvalPoint, JobKind, MixEntry, PointResult, ReducePolicy, Scenario, SweepMode, SweepResult,
    WorkloadMix,
};

use crate::json::Json;

/// A decoded `POST /v1/estimate` body: one fully concrete point plus
/// the backends to evaluate it with.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The point to evaluate.
    pub point: EvalPoint,
    /// Which backends to run. Defaults to the analytic model only —
    /// the online-query fast path; simulator ground truth is opt-in.
    pub backends: Backends,
    /// Attach a per-span timing breakdown to the reply (`"debug": true`).
    pub debug: bool,
}

/// A decoded `POST /v1/scenario` body.
#[derive(Debug, Clone)]
pub struct ScenarioRequest {
    /// The sweep to run.
    pub scenario: Scenario,
    /// Attach a per-span timing breakdown to the reply (`"debug": true`).
    pub debug: bool,
}

/// Decode a `debug` field: absent means off.
fn field_debug(map: &BTreeMap<String, Json>) -> Result<bool, String> {
    match map.get("debug") {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| "field `debug` must be a boolean".to_string()),
    }
}

fn parse_scheduler(s: &str) -> Result<SchedulerPolicy, String> {
    match s {
        "capacity_fifo" => Ok(SchedulerPolicy::CapacityFifo),
        "fair" => Ok(SchedulerPolicy::Fair),
        other => Err(format!(
            "unknown scheduler `{other}` (expected `capacity_fifo` or `fair`)"
        )),
    }
}

fn parse_job(s: &str) -> Result<JobKind, String> {
    match s {
        "wordcount" => Ok(JobKind::WordCount),
        "terasort" => Ok(JobKind::TeraSort),
        "grep" => Ok(JobKind::Grep),
        other => Err(format!(
            "unknown job `{other}` (expected `wordcount`, `terasort`, or `grep`)"
        )),
    }
}

fn parse_estimator(s: &str) -> Result<EstimatorKind, String> {
    EstimatorKind::ALL
        .into_iter()
        .find(|e| e.name() == s)
        .ok_or_else(|| {
            format!("unknown estimator `{s}` (expected `fork_join`, `tripathi`, `aria`, or `herodotou`)")
        })
}

/// The object's fields, after verifying every key is known.
fn known_object<'a>(
    v: &'a Json,
    what: &str,
    known: &[&str],
) -> Result<&'a BTreeMap<String, Json>, String> {
    let Json::Obj(map) = v else {
        return Err(format!("{what} must be a JSON object"));
    };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown {what} field `{key}`"));
        }
    }
    Ok(map)
}

fn field_u64(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_positive(map: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    let v = field_u64(map, key, default)?;
    if v == 0 {
        return Err(format!("field `{key}` must be positive"));
    }
    Ok(v)
}

/// A positive field that must also fit the narrower type it feeds —
/// out-of-range values are rejected, never silently truncated.
fn field_positive_u32(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u32,
) -> Result<u32, String> {
    let v = field_positive(map, key, default.into())?;
    u32::try_from(v).map_err(|_| format!("field `{key}` must fit 32 bits"))
}

fn field_str_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<String>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field `{key}` must be an array of strings"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!("field `{key}` must be an array of strings")),
    }
}

fn field_u64_list(map: &BTreeMap<String, Json>, key: &str) -> Result<Option<Vec<u64>>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("field `{key}` must be an array of positive integers"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!(
            "field `{key}` must be an array of positive integers"
        )),
    }
}

/// Decode a `backends` object; `default` fills the missing fields.
fn parse_backends(v: &Json, default: Backends) -> Result<Backends, String> {
    let map = known_object(
        v,
        "backends",
        &["analytic", "profile_calibration", "simulator"],
    )?;
    let bool_field = |key: &str, default: bool| -> Result<bool, String> {
        match map.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a boolean")),
        }
    };
    let simulator = match map.get("simulator") {
        None => default.simulator,
        Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&n| n > 0)
                .ok_or("field `simulator` must be null or a positive repetition count")?
                as usize,
        ),
    };
    Ok(Backends {
        analytic: bool_field("analytic", default.analytic)?,
        profile_calibration: bool_field("profile_calibration", default.profile_calibration)?,
        simulator,
    })
}

/// Decode a `reduces` field: the string `"per_node"` or a fixed count.
fn parse_reduces(map: &BTreeMap<String, Json>) -> Result<ReducePolicy, String> {
    match map.get("reduces") {
        None => Ok(ReducePolicy::PerNode),
        Some(Json::Str(s)) if s == "per_node" => Ok(ReducePolicy::PerNode),
        Some(v) => v
            .as_u64()
            .filter(|&n| n > 0)
            .and_then(|n| u32::try_from(n).ok())
            .map(ReducePolicy::Fixed)
            .ok_or_else(|| "field `reduces` must be `\"per_node\"` or a positive count".into()),
    }
}

/// Decode a probability field; must be a number in `[0, 1)`.
fn field_prob(map: &BTreeMap<String, Json>, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|p| (0.0..1.0).contains(p))
            .ok_or_else(|| format!("field `{key}` must be a number in [0, 1)")),
    }
}

/// Decode a slowdown-factor field; must be a finite number ≥ 1.
fn field_slowdown(map: &BTreeMap<String, Json>, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|f| f.is_finite() && *f >= 1.0)
            .ok_or_else(|| format!("field `{key}` must be a finite number >= 1")),
    }
}

/// Decode an `arrivals` value: the string `"batch"`, a
/// `{"staggered_ms": N}` object, or a `{"trace_ms": [...]}` object with
/// one offset per job. An absent field decodes as `Batch`, so clients
/// from before arrival schedules are untouched.
fn parse_arrivals(v: &Json) -> Result<ArrivalSchedule, String> {
    const SHAPE: &str =
        "field `arrivals` must be `\"batch\"`, `{\"staggered_ms\": N}`, or `{\"trace_ms\": [...]}`";
    match v {
        Json::Str(s) if s == "batch" => Ok(ArrivalSchedule::Batch),
        Json::Obj(_) => {
            let map = known_object(v, "arrivals", &["staggered_ms", "trace_ms"])?;
            match (map.get("staggered_ms"), map.get("trace_ms")) {
                (Some(n), None) => n
                    .as_u64()
                    .map(|interval_ms| ArrivalSchedule::Staggered { interval_ms })
                    .ok_or_else(|| "field `staggered_ms` must be a non-negative integer".into()),
                (None, Some(Json::Arr(items))) => items
                    .iter()
                    .map(|o| {
                        o.as_u64().ok_or_else(|| {
                            "field `trace_ms` must be an array of non-negative integers".to_string()
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|offsets_ms| ArrivalSchedule::Trace { offsets_ms }),
                _ => Err(SHAPE.into()),
            }
        }
        _ => Err(SHAPE.into()),
    }
}

/// Encode an [`ArrivalSchedule`] in the request shape, so responses
/// echo what a client would send.
fn arrivals_json(a: &ArrivalSchedule) -> Json {
    match a {
        ArrivalSchedule::Batch => Json::str("batch"),
        ArrivalSchedule::Staggered { interval_ms } => {
            Json::obj([("staggered_ms", (*interval_ms).into())])
        }
        ArrivalSchedule::Trace { offsets_ms } => Json::obj([(
            "trace_ms",
            Json::Arr(offsets_ms.iter().map(|&o| o.into()).collect()),
        )]),
    }
}

/// Decode one `mix` entry object: a job kind (required) with input
/// size, copy count, reduce policy, and submit offset.
fn parse_mix_entry(v: &Json) -> Result<MixEntry, String> {
    let map = known_object(
        v,
        "mix entry",
        &["job", "input_bytes", "count", "reduces", "submit_offset_ms"],
    )?;
    let job = map
        .get("job")
        .ok_or("mix entry needs a `job` field")?
        .as_str()
        .ok_or_else(|| "field `job` must be a string".to_string())
        .and_then(parse_job)?;
    Ok(MixEntry {
        job,
        input_bytes: field_positive(map, "input_bytes", GB)?,
        count: field_positive(map, "count", 1)? as usize,
        reduces: parse_reduces(map)?,
        submit_offset_ms: field_u64(map, "submit_offset_ms", 0)?,
    })
}

/// Decode a `mix` array into a [`WorkloadMix`].
fn parse_mix(v: &Json) -> Result<WorkloadMix, String> {
    let Json::Arr(items) = v else {
        return Err("a mix must be an array of entry objects".into());
    };
    if items.is_empty() {
        return Err("a mix must have at least one entry".into());
    }
    Ok(WorkloadMix::new(
        items
            .iter()
            .map(parse_mix_entry)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

/// The single-job fields that conflict with an explicit mix.
const SINGLE_JOB_FIELDS: [&str; 4] = ["job", "input_bytes", "n_jobs", "reduces"];

/// Decode a `POST /v1/estimate` body.
///
/// The workload is either a `mix` array of entry objects or the
/// original single-job fields (`job`, `input_bytes`, `n_jobs`,
/// `reduces`), which decode as a 1-entry mix for back-compatibility;
/// mixing the two styles is rejected.
pub fn parse_estimate_request(body: &str) -> Result<EstimateRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "estimate request",
        &[
            "nodes",
            "block_mb",
            "container_mb",
            "scheduler",
            "job",
            "input_bytes",
            "n_jobs",
            "mix",
            "arrivals",
            "map_failure_prob",
            "slow_node_factor",
            "estimator",
            "reduces",
            "seed",
            "backends",
            "debug",
        ],
    )?;
    let str_field = |key: &str| -> Result<Option<&str>, String> {
        match map.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a string")),
        }
    };
    let nodes = field_positive(map, "nodes", 4)? as usize;
    let mix = match map.get("mix") {
        Some(v) => {
            if let Some(conflict) = SINGLE_JOB_FIELDS.iter().find(|f| map.contains_key(**f)) {
                return Err(format!(
                    "field `{conflict}` conflicts with `mix`; describe the workload one way"
                ));
            }
            parse_mix(v)?
        }
        None => WorkloadMix::new([MixEntry {
            job: str_field("job")?.map_or(Ok(JobKind::WordCount), parse_job)?,
            input_bytes: field_positive(map, "input_bytes", GB)?,
            count: field_positive(map, "n_jobs", 1)? as usize,
            reduces: parse_reduces(map)?,
            submit_offset_ms: 0,
        }]),
    };
    mix.check(&[nodes])?;
    let arrivals = match map.get("arrivals") {
        None => ArrivalSchedule::Batch,
        Some(v) => parse_arrivals(v)?,
    };
    arrivals.check(&mix)?;
    let point = EvalPoint {
        index: 0,
        nodes,
        block_mb: field_positive(map, "block_mb", 128)?,
        container_mb: field_positive_u32(map, "container_mb", 1024)?,
        scheduler: str_field("scheduler")?
            .map_or(Ok(SchedulerPolicy::CapacityFifo), parse_scheduler)?,
        mix: mix.resolve(nodes),
        arrivals,
        map_failure_prob: field_prob(map, "map_failure_prob", 0.0)?,
        slow_node_factor: field_slowdown(map, "slow_node_factor", 1.0)?,
        estimator: str_field("estimator")?.map_or(Ok(EstimatorKind::ForkJoin), parse_estimator)?,
        seed: field_u64(map, "seed", 1)?,
    };
    let backends = match map.get("backends") {
        None => Backends::analytic_only(),
        Some(v) => parse_backends(v, Backends::analytic_only())?,
    };
    if !backends.analytic && backends.simulator.is_none() {
        return Err("at least one backend must be enabled".into());
    }
    Ok(EstimateRequest {
        point,
        backends,
        debug: field_debug(map)?,
    })
}

/// Decode a `POST /v1/scenario` body into a [`Scenario`] (validated
/// with [`Scenario::check`]).
///
/// The workload axis is either a `mixes` array (each element an array
/// of mix-entry objects — one axis position per mix) or the original
/// grid fields (`jobs`, `input_bytes`, `n_jobs`, `reduces`), which
/// cross into 1-entry mixes for back-compatibility; mixing the two
/// styles is rejected.
pub fn parse_scenario_request(body: &str) -> Result<ScenarioRequest, String> {
    let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = known_object(
        &v,
        "scenario request",
        &[
            "name",
            "sweep",
            "nodes",
            "block_mb",
            "container_mb",
            "schedulers",
            "jobs",
            "input_bytes",
            "n_jobs",
            "mixes",
            "arrivals",
            "map_failure_prob",
            "slow_node_factor",
            "estimators",
            "reduces",
            "backends",
            "seed",
            "debug",
        ],
    )?;
    let name = match map.get("name") {
        None => "adhoc".to_string(),
        Some(v) => v
            .as_str()
            .ok_or("field `name` must be a string")?
            .to_string(),
    };
    let mut s = Scenario::new(name);
    match map.get("sweep").map(|v| v.as_str()) {
        None => {}
        Some(Some("cartesian")) => s.sweep = SweepMode::Cartesian,
        Some(Some("zip")) => s.sweep = SweepMode::Zip,
        Some(_) => return Err("field `sweep` must be `\"cartesian\"` or `\"zip\"`".into()),
    }
    if let Some(v) = field_u64_list(map, "nodes")? {
        s.nodes = v.into_iter().map(|n| n as usize).collect();
    }
    if let Some(v) = field_u64_list(map, "block_mb")? {
        s.block_mb = v;
    }
    if let Some(v) = field_u64_list(map, "container_mb")? {
        s.container_mb = v
            .into_iter()
            .map(|n| {
                u32::try_from(n).map_err(|_| "field `container_mb` must fit 32 bits".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = field_str_list(map, "schedulers")? {
        s.schedulers = v
            .iter()
            .map(|x| parse_scheduler(x))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = map.get("mixes") {
        let grid_fields = ["jobs", "input_bytes", "n_jobs", "reduces"];
        if let Some(conflict) = grid_fields.iter().find(|f| map.contains_key(**f)) {
            return Err(format!(
                "field `{conflict}` conflicts with `mixes`; describe the workload one way"
            ));
        }
        let Json::Arr(items) = v else {
            return Err("field `mixes` must be an array of mixes".into());
        };
        s = s.axis_mixes(items.iter().map(parse_mix).collect::<Result<Vec<_>, _>>()?);
    } else {
        if let Some(v) = field_str_list(map, "jobs")? {
            s = s.axis_jobs(
                v.iter()
                    .map(|x| parse_job(x))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        if let Some(v) = field_u64_list(map, "input_bytes")? {
            s = s.axis_input_bytes(v);
        }
        if let Some(v) = field_u64_list(map, "n_jobs")? {
            s = s.axis_n_jobs(v.into_iter().map(|n| n as usize).collect::<Vec<_>>());
        }
        s.reduces = parse_reduces(map)?;
    }
    match map.get("arrivals") {
        None => {}
        Some(Json::Arr(items)) => {
            s = s.axis_arrivals(
                items
                    .iter()
                    .map(parse_arrivals)
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        Some(_) => return Err("field `arrivals` must be an array of arrival schedules".into()),
    }
    match map.get("map_failure_prob") {
        None => {}
        Some(Json::Arr(items)) => {
            s.map_failure_prob = items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|p| (0.0..1.0).contains(p))
                        .ok_or("field `map_failure_prob` must be an array of numbers in [0, 1)")
                })
                .collect::<Result<_, _>>()?;
        }
        Some(_) => {
            return Err("field `map_failure_prob` must be an array of numbers in [0, 1)".into())
        }
    }
    match map.get("slow_node_factor") {
        None => {}
        Some(Json::Arr(items)) => {
            s.slow_node_factor = items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|f| f.is_finite() && *f >= 1.0)
                        .ok_or("field `slow_node_factor` must be an array of numbers >= 1")
                })
                .collect::<Result<_, _>>()?;
        }
        Some(_) => return Err("field `slow_node_factor` must be an array of numbers >= 1".into()),
    }
    if let Some(v) = field_str_list(map, "estimators")? {
        s.estimators = v
            .iter()
            .map(|x| parse_estimator(x))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = map.get("backends") {
        // Scenario sweeps default to the analytic fast path too; the
        // paper methodology (simulator + profile) is opt-in per request.
        s.backends = parse_backends(v, Backends::analytic_only())?;
    } else {
        s.backends = Backends::analytic_only();
    }
    s.seed = field_u64(map, "seed", 1)?;
    s.check()?;
    Ok(ScenarioRequest {
        scenario: s,
        debug: field_debug(map)?,
    })
}

/// Encode a finished [`mr2_obs::Trace`] as the reply's `debug` object:
/// the request id, the measured wall time, and the ordered top-level
/// span breakdown. Spans are sequential by construction, so their
/// durations sum to at most `wall_ms`.
pub fn debug_json(trace: &mr2_obs::Trace) -> Json {
    let spans: Vec<Json> = trace
        .spans
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::str(s.name)),
                ("start_ms", Json::num(s.start.as_secs_f64() * 1e3)),
                ("duration_ms", Json::num(s.duration.as_secs_f64() * 1e3)),
            ])
        })
        .collect();
    Json::obj([
        ("request_id", trace.request_id.into()),
        ("wall_ms", Json::num(trace.wall.as_secs_f64() * 1e3)),
        ("spans", Json::Arr(spans)),
    ])
}

/// Encode one evaluated point. The workload is a `mix` array (one
/// object per class, resolved reduce counts and submit offsets
/// included); per-class model estimates and simulator medians ride
/// along in class order, and both backends report response time and
/// makespan separately (they diverge under non-batch arrivals).
pub fn point_json(p: &PointResult) -> Json {
    let mix: Vec<Json> = p
        .point
        .mix
        .entries
        .iter()
        .map(|e| {
            Json::obj([
                ("job", Json::str(e.job.name())),
                ("input_bytes", e.input_bytes.into()),
                ("count", e.count.into()),
                ("reduces", u64::from(e.reduces).into()),
                ("submit_offset_ms", e.submit_offset_ms.into()),
            ])
        })
        .collect();
    let model = p.model.as_ref().map_or(Json::Null, |m| {
        let per_class: Vec<Json> = m
            .per_class
            .iter()
            .zip(&p.point.mix.entries)
            .map(|(c, e)| {
                Json::obj([
                    ("class", Json::str(e.label())),
                    ("fork_join", Json::num(c.fork_join)),
                    ("tripathi", Json::num(c.tripathi)),
                    ("aria", Json::num(c.aria)),
                    ("herodotou", Json::num(c.herodotou)),
                ])
            })
            .collect();
        Json::obj([
            ("fork_join", Json::num(m.fork_join)),
            ("tripathi", Json::num(m.tripathi)),
            ("aria", Json::num(m.aria)),
            ("herodotou", Json::num(m.herodotou)),
            ("makespan", Json::num(m.makespan)),
            ("per_class", Json::Arr(per_class)),
        ])
    });
    let sim = p.sim.as_ref().map_or(Json::Null, |s| {
        Json::obj([
            ("median_response", Json::num(s.median_response)),
            ("mean_response", Json::num(s.mean_response)),
            ("makespan", Json::num(s.makespan)),
            (
                "per_class_median",
                Json::Arr(s.per_class_median.iter().copied().map(Json::num).collect()),
            ),
            ("reps", s.reps.into()),
        ])
    });
    Json::obj([
        ("index", p.point.index.into()),
        ("nodes", p.point.nodes.into()),
        ("block_mb", p.point.block_mb.into()),
        ("container_mb", u64::from(p.point.container_mb).into()),
        (
            "scheduler",
            Json::str(match p.point.scheduler {
                SchedulerPolicy::CapacityFifo => "capacity_fifo",
                SchedulerPolicy::Fair => "fair",
            }),
        ),
        ("mix", Json::Arr(mix)),
        ("total_jobs", p.point.total_jobs().into()),
        ("arrivals", arrivals_json(&p.point.arrivals)),
        ("map_failure_prob", Json::num(p.point.map_failure_prob)),
        ("slow_node_factor", Json::num(p.point.slow_node_factor)),
        ("estimator", Json::str(p.point.estimator.name())),
        ("seed", p.point.seed.into()),
        ("model", model),
        ("sim", sim),
        ("estimate", p.estimate().map_or(Json::Null, Json::num)),
        ("measured", p.measured().map_or(Json::Null, Json::num)),
    ])
}

/// Encode a whole sweep: points in expansion order plus the aggregate
/// and per-class error bands (present only when both backends ran).
pub fn sweep_json(sweep: &SweepResult) -> Json {
    let bands: Vec<Json> = error_bands(sweep)
        .into_iter()
        .map(|b| {
            Json::obj([
                ("estimator", Json::str(b.estimator.name())),
                ("min", Json::num(b.band.min)),
                ("max", Json::num(b.band.max)),
                ("mean", Json::num(b.band.mean)),
                ("points", u64::from(b.band.count).into()),
            ])
        })
        .collect();
    let per_class: Vec<Json> = class_error_bands(sweep)
        .into_iter()
        .map(|b| {
            Json::obj([
                ("class", Json::str(b.class)),
                ("estimator", Json::str(b.estimator.name())),
                ("min", Json::num(b.band.min)),
                ("max", Json::num(b.band.max)),
                ("mean", Json::num(b.band.mean)),
                ("points", u64::from(b.band.count).into()),
            ])
        })
        .collect();
    Json::obj([
        ("name", Json::str(sweep.name.clone())),
        ("num_points", sweep.points.len().into()),
        (
            "points",
            Json::Arr(sweep.points.iter().map(point_json).collect()),
        ),
        ("error_bands", Json::Arr(bands)),
        ("class_error_bands", Json::Arr(per_class)),
    ])
}

/// Fraction of resolved lookups answered from a ready entry (0 when
/// the cache has seen none).
pub fn hit_ratio(s: &CacheStats) -> f64 {
    let lookups = s.hits + s.misses;
    if lookups == 0 {
        0.0
    } else {
        s.hits as f64 / lookups as f64
    }
}

/// Encode cache counters.
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj([
        ("hits", s.hits.into()),
        ("misses", s.misses.into()),
        ("coalesced", s.coalesced.into()),
        ("evictions", s.evictions.into()),
        ("hit_ratio", Json::num(hit_ratio(s))),
        ("entries", s.entries.into()),
        ("capacity", s.capacity.into()),
        ("schema_version", mr2_scenario::schema_version().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_request_defaults_mirror_scenario_new() {
        let r = parse_estimate_request("{}").unwrap();
        assert_eq!(r.point.nodes, 4);
        assert_eq!(r.point.block_mb, 128);
        assert_eq!(r.point.container_mb, 1024);
        assert_eq!(r.point.scheduler, SchedulerPolicy::CapacityFifo);
        assert_eq!(r.point.mix.entries.len(), 1);
        assert_eq!(r.point.mix.entries[0].job, JobKind::WordCount);
        assert_eq!(r.point.mix.entries[0].input_bytes, GB);
        assert_eq!(r.point.total_jobs(), 1);
        assert_eq!(r.point.estimator, EstimatorKind::ForkJoin);
        assert_eq!(r.point.mix.entries[0].reduces, 4, "per-node default");
        assert_eq!(r.point.arrivals, ArrivalSchedule::Batch, "absent = batch");
        assert_eq!(r.point.map_failure_prob, 0.0);
        assert_eq!(r.point.slow_node_factor, 1.0);
        assert_eq!(r.point.seed, 1);
        assert_eq!(r.backends, Backends::analytic_only());
    }

    #[test]
    fn estimate_request_decodes_arrivals_and_stragglers() {
        let r = parse_estimate_request(
            r#"{"nodes":4,"n_jobs":3,"arrivals":{"staggered_ms":2000},"slow_node_factor":2.5}"#,
        )
        .unwrap();
        assert_eq!(
            r.point.arrivals,
            ArrivalSchedule::Staggered { interval_ms: 2000 }
        );
        assert_eq!(r.point.slow_node_factor, 2.5);
        assert_eq!(r.point.submit_offsets(), vec![0.0, 2.0, 4.0]);

        let r =
            parse_estimate_request(r#"{"nodes":4,"n_jobs":2,"arrivals":{"trace_ms":[0,1500]}}"#)
                .unwrap();
        assert_eq!(
            r.point.arrivals,
            ArrivalSchedule::Trace {
                offsets_ms: vec![0, 1500]
            }
        );

        // Mix entries carry their own submit offsets.
        let r = parse_estimate_request(
            r#"{"nodes":4,"mix":[
                {"job":"wordcount"},
                {"job":"grep","submit_offset_ms":30000}]}"#,
        )
        .unwrap();
        assert_eq!(r.point.mix.entries[1].submit_offset_ms, 30000);
        assert_eq!(r.point.submit_offsets(), vec![0.0, 30.0]);

        // Explicit batch still decodes.
        let r = parse_estimate_request(r#"{"arrivals":"batch"}"#).unwrap();
        assert_eq!(r.point.arrivals, ArrivalSchedule::Batch);
    }

    #[test]
    fn estimate_request_rejects_bad_arrivals_and_stragglers() {
        for (body, needle) in [
            (r#"{"arrivals":"burst"}"#, "must be `\"batch\"`"),
            (
                r#"{"arrivals":{"staggered_ms":-5}}"#,
                "non-negative integer",
            ),
            (
                r#"{"arrivals":{"staggered_ms":1,"trace_ms":[0]}}"#,
                "must be `\"batch\"`",
            ),
            (r#"{"arrivals":{"later_ms":1}}"#, "unknown arrivals field"),
            (r#"{"n_jobs":3,"arrivals":{"trace_ms":[0,5]}}"#, "2 offsets"),
            (r#"{"slow_node_factor":0.5}"#, ">= 1"),
            (r#"{"slow_node_factor":"slow"}"#, ">= 1"),
            (
                r#"{"mix":[{"job":"grep","submit_offset_ms":-1}]}"#,
                "non-negative integer",
            ),
        ] {
            let err = parse_estimate_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn estimate_request_decodes_every_single_job_field() {
        // The original single-job shape keeps decoding, as a 1-entry
        // mix.
        let r = parse_estimate_request(
            r#"{"nodes":8,"block_mb":64,"container_mb":2048,"scheduler":"fair",
                "job":"terasort","input_bytes":5368709120,"n_jobs":3,
                "estimator":"tripathi","reduces":2,"seed":9,"map_failure_prob":0.25,
                "backends":{"analytic":true,"profile_calibration":true,"simulator":5}}"#,
        )
        .unwrap();
        assert_eq!(r.point.nodes, 8);
        assert_eq!(r.point.scheduler, SchedulerPolicy::Fair);
        assert_eq!(r.point.mix.entries[0].job, JobKind::TeraSort);
        assert_eq!(r.point.mix.entries[0].input_bytes, 5 * GB);
        assert_eq!(r.point.mix.entries[0].count, 3);
        assert_eq!(r.point.estimator, EstimatorKind::Tripathi);
        assert_eq!(
            r.point.mix.entries[0].reduces, 2,
            "fixed count overrides per-node"
        );
        assert_eq!(r.point.map_failure_prob, 0.25);
        assert_eq!(r.backends.simulator, Some(5));
        assert!(r.backends.profile_calibration);
    }

    #[test]
    fn estimate_request_decodes_a_mix() {
        let r = parse_estimate_request(
            r#"{"nodes":4,"mix":[
                {"job":"wordcount","input_bytes":1073741824,"count":2},
                {"job":"terasort","input_bytes":2147483648,"reduces":3},
                {"job":"grep"}]}"#,
        )
        .unwrap();
        assert_eq!(r.point.mix.entries.len(), 3);
        assert_eq!(r.point.total_jobs(), 4);
        assert_eq!(r.point.mix.entries[0].count, 2);
        assert_eq!(r.point.mix.entries[0].reduces, 4, "per-node at 4 nodes");
        assert_eq!(r.point.mix.entries[1].reduces, 3, "fixed");
        assert_eq!(r.point.mix.entries[2].job, JobKind::Grep);
        assert_eq!(r.point.mix.entries[2].input_bytes, GB, "entry default");
    }

    #[test]
    fn estimate_request_rejects_bad_input() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (r#"{"node":4}"#, "unknown estimate request field `node`"),
            (r#"{"nodes":0}"#, "must be positive"),
            (r#"{"nodes":-2}"#, "non-negative integer"),
            (r#"{"scheduler":"yarn"}"#, "unknown scheduler"),
            (r#"{"job":"sort"}"#, "unknown job"),
            (r#"{"estimator":"magic"}"#, "unknown estimator"),
            (r#"{"reduces":0}"#, "per_node"),
            // 2^32 + 1024: silent truncation would price 4 TiB
            // containers as 1 GiB ones.
            (r#"{"container_mb":4294968320}"#, "fit 32 bits"),
            (r#"{"reduces":4294967296}"#, "per_node"),
            (
                r#"{"backends":{"analytic":false,"simulator":null}}"#,
                "at least one backend",
            ),
            (r#"{"backends":{"sim":1}}"#, "unknown backends field"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"map_failure_prob":1.0}"#, "in [0, 1)"),
            (r#"{"map_failure_prob":"high"}"#, "in [0, 1)"),
            // Mix errors.
            (r#"{"mix":[]}"#, "at least one entry"),
            (r#"{"mix":{}}"#, "array of entry objects"),
            (r#"{"mix":[{"input_bytes":1}]}"#, "needs a `job` field"),
            (r#"{"mix":[{"job":"grep","count":0}]}"#, "must be positive"),
            (
                r#"{"mix":[{"job":"grep","size":1}]}"#,
                "unknown mix entry field `size`",
            ),
            // The two workload styles don't combine.
            (
                r#"{"n_jobs":2,"mix":[{"job":"grep"}]}"#,
                "conflicts with `mix`",
            ),
        ] {
            let err = parse_estimate_request(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn scenario_request_builds_axes() {
        let s = parse_scenario_request(
            r#"{"name":"grow","nodes":[4,8,16],"n_jobs":[1,2],
                "estimators":["fork_join","tripathi"],"jobs":["grep"],
                "input_bytes":[1073741824],"seed":7}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.name, "grow");
        assert_eq!(s.nodes, vec![4, 8, 16]);
        let mixes = s.workload_values();
        assert_eq!(mixes.len(), 2, "jobs × input_bytes × n_jobs");
        assert_eq!(mixes[0].entries[0].job, JobKind::Grep);
        assert_eq!(mixes[1].total_jobs(), 2);
        assert_eq!(
            s.estimators,
            vec![EstimatorKind::ForkJoin, EstimatorKind::Tripathi]
        );
        assert_eq!(s.seed, 7);
        assert_eq!(s.num_points(), 3 * 2 * 2);
        assert_eq!(s.backends, Backends::analytic_only(), "serving default");
    }

    #[test]
    fn scenario_request_builds_a_mix_axis() {
        let s = parse_scenario_request(
            r#"{"name":"mixed","nodes":[4,8],
                "mixes":[[{"job":"wordcount","count":2},{"job":"grep"}],
                         [{"job":"terasort"}]],
                "map_failure_prob":[0.0,0.1]}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.num_points(), 2 * 2 * 2, "nodes × mixes × failure");
        let mixes = s.workload_values();
        assert_eq!(mixes.len(), 2);
        assert_eq!(mixes[0].entries.len(), 2);
        assert_eq!(mixes[0].total_jobs(), 3);
        assert_eq!(s.map_failure_prob, vec![0.0, 0.1]);
    }

    #[test]
    fn scenario_request_builds_arrival_and_straggler_axes() {
        let s = parse_scenario_request(
            r#"{"name":"arrivals","nodes":[4],"n_jobs":[2],
                "arrivals":["batch",{"staggered_ms":60000},{"trace_ms":[0,90000]}],
                "slow_node_factor":[1.0,4.0]}"#,
        )
        .unwrap()
        .scenario;
        assert_eq!(s.num_points(), 3 * 2, "arrivals × slow_node_factor");
        assert_eq!(s.arrivals.len(), 3);
        assert_eq!(
            s.arrivals[1],
            ArrivalSchedule::Staggered { interval_ms: 60000 }
        );
        assert_eq!(s.slow_node_factor, vec![1.0, 4.0]);

        // Mixes may carry per-entry offsets (trace replay through the
        // service).
        let s = parse_scenario_request(
            r#"{"nodes":[2,4],
                "mixes":[[{"job":"wordcount"},
                          {"job":"grep","submit_offset_ms":45000}]]}"#,
        )
        .unwrap()
        .scenario;
        let mixes = s.workload_values();
        assert_eq!(mixes[0].entries[1].submit_offset_ms, 45000);
    }

    #[test]
    fn scenario_request_rejects_invalid_specs() {
        assert!(parse_scenario_request(r#"{"nodes":[]}"#)
            .unwrap_err()
            .contains("nodes axis is empty"));
        assert!(
            parse_scenario_request(r#"{"sweep":"zip","nodes":[1,2],"n_jobs":[1,2,3]}"#)
                .unwrap_err()
                .contains("zip axis")
        );
        assert!(parse_scenario_request(r#"{"axes":{}}"#)
            .unwrap_err()
            .contains("unknown scenario request field"));
        assert!(
            parse_scenario_request(r#"{"container_mb":[1024,4294968320]}"#)
                .unwrap_err()
                .contains("fit 32 bits")
        );
        assert!(
            parse_scenario_request(r#"{"jobs":["grep"],"mixes":[[{"job":"grep"}]]}"#)
                .unwrap_err()
                .contains("conflicts with `mixes`")
        );
        assert!(parse_scenario_request(r#"{"mixes":[[]]}"#)
            .unwrap_err()
            .contains("at least one entry"));
        assert!(parse_scenario_request(r#"{"map_failure_prob":[2.0]}"#)
            .unwrap_err()
            .contains("in [0, 1)"));
        assert!(parse_scenario_request(r#"{"arrivals":"batch"}"#)
            .unwrap_err()
            .contains("array of arrival schedules"));
        assert!(parse_scenario_request(r#"{"slow_node_factor":[0.25]}"#)
            .unwrap_err()
            .contains(">= 1"));
        // A trace schedule must fit every mix it crosses.
        assert!(
            parse_scenario_request(r#"{"n_jobs":[1,2],"arrivals":[{"trace_ms":[0]}]}"#)
                .unwrap_err()
                .contains("1 offsets")
        );
    }

    #[test]
    fn encoded_sweep_is_valid_json_with_bands() {
        use mr2_scenario::{run_scenario, ResultCache, RunnerConfig};
        let s = parse_scenario_request(
            r#"{"nodes":[2],
                "mixes":[[{"job":"wordcount","input_bytes":268435456},
                          {"job":"grep","input_bytes":268435456}]],
                "backends":{"analytic":true,"simulator":2}}"#,
        )
        .unwrap()
        .scenario;
        let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::serial());
        let v = sweep_json(&sweep);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("num_points").unwrap().as_u64(), Some(1));
        let pt = &back.get("points").unwrap().as_arr().unwrap()[0];
        assert!(pt.get("estimate").unwrap().as_f64().unwrap() > 0.0);
        assert!(pt.get("measured").unwrap().as_f64().unwrap() > 0.0);
        let mix = pt.get("mix").unwrap().as_arr().unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].get("job").unwrap().as_str(), Some("wordcount"));
        assert_eq!(mix[0].get("reduces").unwrap().as_u64(), Some(2));
        assert_eq!(mix[0].get("submit_offset_ms").unwrap().as_u64(), Some(0));
        assert_eq!(pt.get("arrivals").unwrap().as_str(), Some("batch"));
        assert_eq!(pt.get("slow_node_factor").unwrap().as_f64(), Some(1.0));
        assert!(
            pt.get("model")
                .unwrap()
                .get("makespan")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0,
            "model makespan emitted"
        );
        assert!(
            pt.get("sim")
                .unwrap()
                .get("makespan")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0,
            "sim makespan emitted"
        );
        let per_class = pt
            .get("model")
            .unwrap()
            .get("per_class")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(per_class.len(), 2);
        assert!(per_class[1].get("fork_join").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            per_class[1].get("class").unwrap().as_str(),
            Some("grep@256MB")
        );
        assert_eq!(
            pt.get("sim")
                .unwrap()
                .get("per_class_median")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert!(!back
            .get("error_bands")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert_eq!(
            back.get("class_error_bands")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2 * 4,
            "2 classes × 4 series"
        );
    }
}
