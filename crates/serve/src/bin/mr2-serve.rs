//! The `mr2-serve` binary: the capacity-planning service as a process.
//!
//! ```text
//! mr2-serve [--addr 127.0.0.1:8080] [--threads 4] [--cache-capacity 65536]
//!           [--max-points 4096] [--cache-file results/serve-cache.txt]
//!           [--persist-secs 30] [--keep-alive-requests 32] [--max-queue 1024]
//!           [--request-timeout-secs 10] [--token SECRET] [--no-access-log]
//!           [--trace-sample N] [--trace-slow-ms N] [--loop-stall-budget-ms N]
//! ```
//!
//! `--token` (or the `MR2_TOKEN` environment variable — the flag wins)
//! requires `Authorization: Bearer <token>` on every `/v1/*` route;
//! `/healthz`, `/metrics`, and `/debug/profile` stay open.
//!
//! Tracing knobs: `--trace-sample N` retains every Nth finished
//! request trace (1 keeps all), `--trace-slow-ms N` always retains
//! traces at least that slow, and `--loop-stall-budget-ms N` sets the
//! event-loop stall watchdog's budget (0 disables it).
//!
//! Smoke it with curl:
//!
//! ```text
//! curl http://127.0.0.1:8080/healthz
//! curl -X POST http://127.0.0.1:8080/v1/estimate -d '{"nodes":8,"n_jobs":2}'
//! curl -X POST http://127.0.0.1:8080/v1/plan \
//!      -d '{"mix":[{"job":"wordcount"}],"arrival_rate":0.01,
//!           "slo":{"metric":"response","threshold":300}}'
//! curl http://127.0.0.1:8080/metrics
//! curl http://127.0.0.1:8080/v1/trace/recent     # retained span trees
//! curl http://127.0.0.1:8080/v1/jobs             # in-flight sweeps
//! curl http://127.0.0.1:8080/debug/profile       # collapsed stacks
//! ```

use mr2_serve::{serve, ServeConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: mr2-serve [--addr HOST:PORT] [--threads N] [--cache-capacity N]\n\
         \x20                [--max-points N] [--cache-file PATH] [--persist-secs N]\n\
         \x20                [--keep-alive-requests N] [--max-queue N]\n\
         \x20                [--request-timeout-secs N] [--token SECRET] [--no-access-log]\n\
         \x20                [--trace-sample N] [--trace-slow-ms N] [--loop-stall-budget-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    // The environment seeds the token so process lists don't leak it;
    // an explicit --token overrides.
    let mut cfg = ServeConfig {
        token: std::env::var("MR2_TOKEN").ok().filter(|t| !t.is_empty()),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--threads" => match value("--threads").parse() {
                Ok(n) if n > 0 => cfg.threads = n,
                _ => usage(),
            },
            "--cache-capacity" => match value("--cache-capacity").parse() {
                Ok(n) => cfg.cache_capacity = n,
                _ => usage(),
            },
            "--max-points" => match value("--max-points").parse() {
                Ok(n) if n > 0 => cfg.max_points = n,
                _ => usage(),
            },
            "--cache-file" => cfg.cache_file = Some(value("--cache-file").into()),
            "--persist-secs" => match value("--persist-secs").parse::<u64>() {
                Ok(n) if n > 0 => cfg.persist_every = Duration::from_secs(n),
                _ => usage(),
            },
            "--keep-alive-requests" => match value("--keep-alive-requests").parse() {
                Ok(n) if n > 0 => cfg.keep_alive_requests = n,
                _ => usage(),
            },
            "--max-queue" => match value("--max-queue").parse() {
                Ok(n) => cfg.max_queue = n,
                _ => usage(),
            },
            "--request-timeout-secs" => match value("--request-timeout-secs").parse::<u64>() {
                Ok(n) if n > 0 => cfg.request_timeout = Duration::from_secs(n),
                _ => usage(),
            },
            "--token" => cfg.token = Some(value("--token")),
            "--no-access-log" => cfg.access_log = false,
            "--trace-sample" => match value("--trace-sample").parse() {
                Ok(n) if n > 0 => cfg.trace_sample_one_in = n,
                _ => usage(),
            },
            "--trace-slow-ms" => match value("--trace-slow-ms").parse::<u64>() {
                Ok(n) => cfg.trace_slow = Duration::from_millis(n),
                _ => usage(),
            },
            "--loop-stall-budget-ms" => match value("--loop-stall-budget-ms").parse::<u64>() {
                Ok(n) => cfg.loop_stall_budget = Duration::from_millis(n),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => {
                eprintln!("unknown flag: {flag}");
                usage()
            }
        }
    }

    match serve(cfg) {
        Ok(handle) => {
            println!("mr2-serve listening on http://{}", handle.addr);
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("mr2-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
