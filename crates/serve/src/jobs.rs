//! Live introspection of in-flight `/v1/scenario` sweeps.
//!
//! Every scenario evaluation — streaming or not — registers itself
//! here before the runner starts and reports each completed point
//! through the runner's per-point observer, so `GET /v1/jobs` can show
//! points done/total, elapsed time, an ETA extrapolated from the pace
//! so far, and a per-estimator breakdown while the sweep is still
//! running. Registration hands back an RAII [`JobGuard`]; dropping it
//! (normal return *or* unwinding) moves the entry onto a short
//! recently-finished list, so a sweep that outruns its observer is
//! still visible to the next `/v1/jobs` poll.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mr2_scenario::{EstimatorKind, PointResult};

/// Finished jobs kept for inspection after their guard drops.
const FINISHED_KEEP: usize = 8;

/// One registered sweep.
pub struct JobEntry {
    /// The request id driving the sweep (joins with access-log lines
    /// and `/v1/trace/recent?id=`).
    pub request_id: u64,
    /// The scenario's human-readable name.
    pub name: String,
    /// Points the scenario expands to.
    pub total: usize,
    /// Whether the sweep answers as a chunked NDJSON stream.
    pub streaming: bool,
    started: Instant,
    done: AtomicUsize,
    /// Completed points by the point's selected estimator series, in
    /// [`EstimatorKind::ALL`] order.
    per_estimator: [AtomicUsize; 4],
}

impl JobEntry {
    fn view(&self, running: bool) -> JobView {
        let done = self.done.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let eta = if running && done > 0 && done < self.total {
            Some(elapsed.mul_f64((self.total - done) as f64 / done as f64))
        } else {
            None
        };
        JobView {
            request_id: self.request_id,
            name: self.name.clone(),
            total: self.total,
            streaming: self.streaming,
            running,
            done,
            elapsed,
            eta,
            per_estimator: EstimatorKind::ALL.map(|k| {
                (
                    k.name(),
                    self.per_estimator[estimator_index(k)].load(Ordering::Relaxed),
                )
            }),
        }
    }
}

fn estimator_index(kind: EstimatorKind) -> usize {
    EstimatorKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("ALL covers every kind")
}

/// A point-in-time copy of one job for rendering.
#[derive(Debug, Clone)]
pub struct JobView {
    pub request_id: u64,
    pub name: String,
    pub total: usize,
    pub streaming: bool,
    /// `true` while the sweep runs; recently finished jobs report
    /// `false`.
    pub running: bool,
    pub done: usize,
    pub elapsed: Duration,
    /// Remaining time extrapolated from the pace so far; `None` before
    /// the first point completes or once the sweep is done.
    pub eta: Option<Duration>,
    /// `(estimator name, points done)` in paper order.
    pub per_estimator: [(&'static str, usize); 4],
}

/// The per-server registry of in-flight (plus recently finished)
/// sweeps.
#[derive(Default)]
pub struct Jobs {
    running: Mutex<Vec<Arc<JobEntry>>>,
    finished: Mutex<Vec<JobView>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Jobs {
    /// Register a sweep; the returned guard reports progress and
    /// unregisters on drop.
    pub fn register(
        self: &Arc<Self>,
        request_id: u64,
        name: String,
        total: usize,
        streaming: bool,
    ) -> JobGuard {
        let entry = Arc::new(JobEntry {
            request_id,
            name,
            total,
            streaming,
            started: Instant::now(),
            done: AtomicUsize::new(0),
            per_estimator: [const { AtomicUsize::new(0) }; 4],
        });
        lock(&self.running).push(Arc::clone(&entry));
        JobGuard {
            jobs: Arc::clone(self),
            entry,
        }
    }

    /// Every running sweep (registration order), then the most
    /// recently finished ones (newest first).
    pub fn snapshot(&self) -> Vec<JobView> {
        let mut out: Vec<JobView> = lock(&self.running).iter().map(|e| e.view(true)).collect();
        let finished = lock(&self.finished);
        out.extend(finished.iter().rev().cloned());
        out
    }
}

/// RAII registration of one running sweep.
pub struct JobGuard {
    jobs: Arc<Jobs>,
    entry: Arc<JobEntry>,
}

impl JobGuard {
    /// Record one completed point (the runner's per-point observer).
    pub fn point_done(&self, point: &PointResult) {
        self.entry.done.fetch_add(1, Ordering::Relaxed);
        self.entry.per_estimator[estimator_index(point.point.estimator)]
            .fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        let mut running = lock(&self.jobs.running);
        running.retain(|e| !Arc::ptr_eq(e, &self.entry));
        drop(running);
        let mut finished = lock(&self.jobs.finished);
        finished.push(self.entry.view(false));
        let overflow = finished.len().saturating_sub(FINISHED_KEEP);
        if overflow > 0 {
            finished.drain(..overflow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_progress_and_drop_lifecycle() {
        let jobs = Arc::new(Jobs::default());
        let guard = jobs.register(7, "sweep".into(), 4, true);
        let view = &jobs.snapshot()[0];
        assert_eq!(
            (view.request_id, view.done, view.total, view.running),
            (7, 0, 4, true)
        );
        assert_eq!(view.eta, None, "no pace before the first point");
        drop(guard);
        let view = &jobs.snapshot()[0];
        assert!(!view.running, "finished jobs linger for inspection");
        for _ in 0..(FINISHED_KEEP + 3) {
            drop(jobs.register(8, "later".into(), 1, false));
        }
        let snap = jobs.snapshot();
        assert_eq!(snap.len(), FINISHED_KEEP, "finished list is bounded");
        assert!(snap.iter().all(|v| v.request_id == 8));
    }
}
