//! Minimal Linux readiness primitives — `epoll` and `eventfd` via
//! direct libc calls. The crates.io-free constraint rules out mio and
//! tokio, but std already links libc, so declaring the five syscall
//! wrappers we need is enough; everything above this module is plain
//! safe Rust over `RawFd`s.
//!
//! [`Epoll`] is used level-triggered: the event loop re-reads readiness
//! every `wait` and never needs the edge-triggered drain-until-EAGAIN
//! discipline. [`EventFd`] is the wakeup channel *into* the loop —
//! worker completions and shutdown both write to one, which `wait`
//! reports like any other fd.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;

mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    // epoll_event carries a 32-bit mask and a 64-bit user token. On
    // x86_64 the kernel ABI packs it (no padding between the fields);
    // other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Debug)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
}

/// Readiness kinds reported by [`Epoll::wait`]. `READ` includes
/// hangup/error conditions — a dead peer makes the fd "readable" (read
/// returns 0 or an error), which is exactly when the loop should touch
/// it and find out.
pub const EV_READ: u32 = 0x001 | 0x008 | 0x010 | 0x2000; // EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP
/// Write-readiness (`EPOLLOUT`).
pub const EV_WRITE: u32 = 0x004;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLRDHUP: u32 = 0x2000;

/// One readiness notification: which fd (by the caller's token) and
/// what it is ready for.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token passed to [`Epoll::add`].
    pub token: u64,
    /// Bitmask of `EV_READ` / `EV_WRITE` bits.
    pub ready: u32,
}

impl Event {
    /// Readable (or hung up / errored — anything a read will surface).
    pub fn readable(&self) -> bool {
        self.ready & EV_READ != 0
    }
    /// Writable.
    pub fn writable(&self) -> bool {
        self.ready & EV_WRITE != 0
    }
}

/// An epoll instance plus a reusable event buffer.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

/// Interest bitmask helper: build the kernel-facing mask from the
/// loop-facing `EV_*` bits, always registering for peer-hangup.
fn kernel_mask(interest: u32) -> u32 {
    let mut mask = EPOLLRDHUP;
    if interest & EV_READ != 0 {
        mask |= EPOLLIN;
    }
    if interest & EV_WRITE != 0 {
        mask |= EPOLLOUT;
    }
    mask
}

impl Epoll {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    /// Register `fd` with the given token and interest (`EV_READ` /
    /// `EV_WRITE` bits).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister an fd. Closing the fd drops the registration anyway;
    /// explicit removal keeps the table tidy when a slot is recycled
    /// before close.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: kernel_mask(interest),
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Block up to `timeout_ms` for readiness (negative = forever),
    /// retrying on EINTR. Returns the ready events; an empty slice
    /// means the timeout elapsed.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<Vec<Event>> {
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.fd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            // Copy out of the (possibly packed) kernel structs before
            // touching the fields.
            return Ok(self.buf[..n as usize]
                .iter()
                .map(|e| {
                    let raw: sys::EpollEvent = *e;
                    Event {
                        token: raw.data,
                        ready: raw.events,
                    }
                })
                .collect());
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// A nonblocking eventfd: an 8-byte counter the kernel exposes as an
/// fd. [`EventFd::notify`] from any thread makes it readable;
/// [`EventFd::drain`] resets it. One fd per wakeup *reason* (worker
/// completions, shutdown) keeps the loop's dispatch trivial.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wake whoever is polling this fd. Safe from any thread; the
    /// counter saturates so repeated notifies before a drain coalesce.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(
                self.fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Consume all pending notifications (reset readability).
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            sys::read(
                self.fd,
                (&mut buf as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_notify_wakes_epoll_and_drain_resets() {
        let mut ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), 7, EV_READ).unwrap();

        // Nothing pending: a zero timeout returns no events.
        assert!(ep.wait(0).unwrap().is_empty());

        // A notify from another thread makes it readable.
        std::thread::scope(|s| {
            s.spawn(|| efd.notify());
        });
        let events = ep.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(0).unwrap().len(), 1);
        efd.drain();
        assert!(ep.wait(0).unwrap().is_empty());
    }

    #[test]
    fn epoll_reports_socket_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, EV_READ).unwrap();
        assert!(ep.wait(0).unwrap().is_empty(), "no data yet");

        client.write_all(b"hi").unwrap();
        let events = ep.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable());

        // Adding write interest: a fresh socket is instantly writable.
        ep.modify(server.as_raw_fd(), 42, EV_READ | EV_WRITE)
            .unwrap();
        let events = ep.wait(1000).unwrap();
        assert!(events[0].readable() && events[0].writable());

        // Peer close is reported as readability (read will see EOF).
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");
        ep.modify(server.as_raw_fd(), 42, EV_READ).unwrap();
        drop(client);
        let events = ep.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable());
        assert_eq!((&server).read(&mut buf).unwrap(), 0, "EOF");

        ep.delete(server.as_raw_fd()).unwrap();
        assert!(ep.wait(0).unwrap().is_empty());
    }
}
