//! A deliberately small HTTP/1.1 implementation over blocking streams —
//! just enough protocol for a JSON API behind `std::net::TcpListener`:
//! request-line + headers + `Content-Length` bodies in, status +
//! headers + body out, with connection reuse ([`Conn`]) — HTTP/1.1
//! requests keep the connection alive by default, `Connection: close`
//! (and HTTP/1.0) closes it, and bytes over-read past one request's
//! body are carried over as the start of the next.
//!
//! Limits are enforced while reading (header block ≤ 16 KiB, body ≤
//! 4 MiB) so a misbehaving client can't balloon a worker's memory, and
//! `Expect: 100-continue` is honoured because stock `curl` sends it for
//! larger bodies.

use std::io::{Read, Write};

/// Header block size limit.
const MAX_HEAD: usize = 16 * 1024;
/// Body size limit.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: an
    /// explicit `Connection` header wins, otherwise the HTTP/1.1
    /// default is keep-alive and the HTTP/1.0 default is close.
    pub keep_alive: bool,
}

/// A malformed or over-limit request, mapped to a status + message.
#[derive(Debug)]
pub struct HttpError {
    /// Response status to send.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::new(400, format!("read failed: {e}"))
    }
}

/// Find the end of the header block in `buf`: the index just past the
/// blank line, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// A connection serving a sequence of requests: the stream plus
/// whatever was over-read past the previous request's body (with
/// keep-alive, those bytes are the start of the next request and must
/// not be dropped).
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    carry: Vec<u8>,
}

impl<S> Conn<S> {
    /// Wrap a fresh stream.
    pub fn new(stream: S) -> Conn<S> {
        Conn {
            stream,
            carry: Vec::new(),
        }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutable access to the underlying stream (e.g. to write the
    /// response).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

impl<S: Read + Write> Conn<S> {
    /// Block until the next request's first bytes are available (or
    /// already carried over), up to the stream's *current* read
    /// timeout; `false` means EOF, idle timeout, or a read error — the
    /// connection is done. This separates the *idle* wait from the
    /// reads *within* a request: a server sets a short idle timeout,
    /// awaits, then restores its longer per-request timeout before
    /// calling [`Conn::read_request`].
    pub fn await_request(&mut self) -> bool {
        if !self.carry.is_empty() {
            return true;
        }
        let mut byte = [0u8; 1];
        match self.stream.read(&mut byte) {
            Ok(n) if n > 0 => {
                self.carry.extend_from_slice(&byte[..n]);
                true
            }
            _ => false,
        }
    }

    /// Read the next request from the connection. `Ok(None)` means the
    /// client closed (or went idle past the socket's read timeout)
    /// between requests — a clean end of the connection, not an error.
    ///
    /// Needs `Write` access too so it can acknowledge
    /// `Expect: 100-continue` before the client sends the body.
    pub fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        // Read in chunks until the blank line ending the header block;
        // whatever arrives past it belongs to the body (and past that,
        // to the next request on the connection).
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 1024];
        let split = loop {
            if let Some(end) = head_end(&buf) {
                break end;
            }
            if buf.len() >= MAX_HEAD {
                return Err(HttpError::new(431, "header block too large"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) if buf.is_empty() => return Ok(None),
                Ok(0) => return Err(HttpError::new(400, "connection closed mid-request")),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                // Idle timeout while waiting for the next request is a
                // clean close; mid-request it is an error.
                Err(e)
                    if buf.is_empty()
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            }
        };
        let mut early_body = buf.split_off(split);
        let head = String::from_utf8(buf).map_err(|_| HttpError::new(400, "non-UTF-8 header"))?;
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing method"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing request target"))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::new(505, format!("unsupported {version}")));
        }
        let path = target.split('?').next().unwrap_or(target).to_string();

        let mut content_length = 0usize;
        let mut expects_continue = false;
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
        let mut keep_alive = version != "HTTP/1.0";
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::new(501, "chunked bodies not supported"));
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expects_continue = true;
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        if content_length > MAX_BODY {
            return Err(HttpError::new(413, "body too large"));
        }
        if expects_continue && content_length > early_body.len() {
            self.stream
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .map_err(|e| HttpError::new(400, format!("write failed: {e}")))?;
            self.stream.flush().ok();
        }
        // The body starts with whatever was over-read past the headers;
        // anything past Content-Length is the next request's bytes.
        if early_body.len() > content_length {
            self.carry = early_body.split_off(content_length);
        }
        let mut body = early_body;
        let remaining = content_length - body.len();
        if remaining > 0 {
            let start = body.len();
            body.resize(content_length, 0);
            self.stream.read_exact(&mut body[start..])?;
        }
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive,
        }))
    }
}

/// Read one request from a stream that serves a single request (test
/// helper and one-shot paths); see [`Conn::read_request`].
pub fn read_request<S: Read + Write>(stream: &mut S) -> Result<Request, HttpError> {
    Conn::new(stream)
        .read_request()?
        .ok_or_else(|| HttpError::new(400, "connection closed mid-request"))
}

/// Canonical reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// `Content-Type` of JSON responses (every endpoint except `/metrics`).
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// `Content-Type` of the Prometheus text exposition format.
pub const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4";

/// Write a complete response and flush. `close` selects the
/// `Connection` header: `close` ends the connection after this
/// response, `keep-alive` invites the next request.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, body, content_type, close, &[])
}

/// [`write_response`] with extra headers (name, value) — e.g. the
/// `Retry-After` a 503 backpressure rejection carries.
pub fn write_response_with<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all("\r\n".as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A test stream: canned input (one segment per `read` call, the
    /// way a socket delivers data in arbitrary packets), captured
    /// output.
    struct Pipe {
        segments: std::collections::VecDeque<Vec<u8>>,
        current: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn new(input: &str) -> Pipe {
            Pipe::segmented(&[input])
        }

        fn segmented(inputs: &[&str]) -> Pipe {
            Pipe {
                segments: inputs.iter().map(|s| s.as_bytes().to_vec()).collect(),
                current: Cursor::new(Vec::new()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                let n = self.current.read(buf)?;
                if n > 0 {
                    return Ok(n);
                }
                match self.segments.pop_front() {
                    Some(next) => self.current = Cursor::new(next),
                    None => return Ok(0),
                }
            }
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_get_without_body() {
        let mut s = Pipe::new("GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz", "query string stripped");
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length() {
        let mut s = Pipe::new(
            "POST /v1/estimate HTTP/1.1\r\nContent-Type: application/json\r\ncontent-length: 7\r\n\r\n{\"a\":1}",
        );
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_header_and_version_control_keep_alive() {
        let mut s = Pipe::new("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!read_request(&mut s).unwrap().keep_alive);
        let mut s = Pipe::new("GET / HTTP/1.0\r\n\r\n");
        assert!(!read_request(&mut s).unwrap().keep_alive, "1.0 default");
        let mut s = Pipe::new("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(read_request(&mut s).unwrap().keep_alive, "explicit wins");
    }

    #[test]
    fn two_requests_on_one_connection_with_carryover() {
        // Both requests (and the second's body) arrive in one packet:
        // the bytes past the first body must carry over, not be
        // dropped.
        let mut conn = Conn::new(Pipe::new(
            "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo",
        ));
        let a = conn.read_request().unwrap().unwrap();
        assert_eq!(
            (a.path.as_str(), a.body.as_slice()),
            ("/a", b"one".as_slice())
        );
        let b = conn.read_request().unwrap().unwrap();
        assert_eq!(
            (b.path.as_str(), b.body.as_slice()),
            ("/b", b"two".as_slice())
        );
        assert!(conn.read_request().unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        let mut conn = Conn::new(Pipe::new("GET / HTTP/1.1\r\n\r\n"));
        assert!(conn.read_request().unwrap().is_some());
        assert!(conn.read_request().unwrap().is_none());
    }

    #[test]
    fn await_request_consumes_nothing_a_read_would_miss() {
        // Carried-over bytes count as a pending request without touching
        // the stream; a fresh byte from the stream lands in the carry so
        // the subsequent read_request sees the whole request.
        let mut conn = Conn::new(Pipe::new("GET /next HTTP/1.1\r\n\r\n"));
        assert!(conn.await_request(), "first byte arrived");
        assert_eq!(conn.carry, b"G", "byte is carried, not dropped");
        assert!(conn.await_request(), "carry alone is enough");
        let r = conn.read_request().unwrap().unwrap();
        assert_eq!(r.path, "/next");
        // EOF while idle is a clean end of the connection.
        assert!(!conn.await_request());
    }

    #[test]
    fn acknowledges_expect_continue() {
        // A real Expect client holds the body back until the interim
        // response arrives, so headers and body come in separate reads.
        let mut s = Pipe::segmented(&[
            "POST /v1/scenario HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n",
            "{}",
        ]);
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.body, b"{}");
        assert!(String::from_utf8_lossy(&s.output).starts_with("HTTP/1.1 100 Continue"));
    }

    #[test]
    fn body_split_across_reads_and_overread_both_work() {
        // Body delivered byte-meal after the header chunk.
        let mut s = Pipe::segmented(&[
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n",
            "{\"a\"",
            ":1}",
        ]);
        assert_eq!(read_request(&mut s).unwrap().body, b"{\"a\":1}");
        // Body over-read together with the headers (no Expect); the
        // trailing bytes past Content-Length stay in the carry buffer.
        let mut conn = Conn::new(Pipe::new(
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}junk",
        ));
        let r = conn.read_request().unwrap().unwrap();
        assert_eq!(r.body, b"{\"a\":1}");
        assert!(conn.get_ref().output.is_empty(), "no spurious 100 Continue");
        assert_eq!(conn.carry, b"junk");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 413);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GARBAGE\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GET / SPDY/9\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 505);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 501);
    }

    #[test]
    fn response_carries_length_and_connection_header() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", CONTENT_TYPE_JSON, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", CONTENT_TYPE_METRICS, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }
}
