//! A deliberately small HTTP/1.1 implementation over blocking streams —
//! just enough protocol for a JSON API behind `std::net::TcpListener`:
//! request-line + headers + `Content-Length` bodies in, status + headers
//! + body out, one request per connection (`Connection: close`).
//!
//! Limits are enforced while reading (header block ≤ 16 KiB, body ≤
//! 4 MiB) so a misbehaving client can't balloon a worker's memory, and
//! `Expect: 100-continue` is honoured because stock `curl` sends it for
//! larger bodies.

use std::io::{Read, Write};

/// Header block size limit.
const MAX_HEAD: usize = 16 * 1024;
/// Body size limit.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A malformed or over-limit request, mapped to a status + message.
#[derive(Debug)]
pub struct HttpError {
    /// Response status to send.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::new(400, format!("read failed: {e}"))
    }
}

/// Find the end of the header block in `buf`: the index just past the
/// blank line, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Read one request from `stream`. Needs `Write` access too so it can
/// acknowledge `Expect: 100-continue` before the client sends the body.
pub fn read_request<S: Read + Write>(stream: &mut S) -> Result<Request, HttpError> {
    // Read in chunks until the blank line ending the header block;
    // whatever arrives past it is the start of the body (the connection
    // serves one request, so over-reading can't swallow a next request).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let split = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() >= MAX_HEAD {
            return Err(HttpError::new(431, "header block too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::new(400, "connection closed mid-request")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e.into()),
        }
    };
    let mut early_body = buf.split_off(split);
    let head = String::from_utf8(buf).map_err(|_| HttpError::new(400, "non-UTF-8 header"))?;
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, format!("unsupported {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(501, "chunked bodies not supported"));
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::new(413, "body too large"));
    }
    if expects_continue && content_length > early_body.len() {
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(|e| HttpError::new(400, format!("write failed: {e}")))?;
        stream.flush().ok();
    }
    // The body starts with whatever was over-read past the headers.
    early_body.truncate(content_length);
    let mut body = early_body;
    let remaining = content_length - body.len();
    if remaining > 0 {
        let start = body.len();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[start..])?;
    }
    Ok(Request { method, path, body })
}

/// Canonical reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Write a complete response and flush. One response per connection.
pub fn write_response<S: Write>(stream: &mut S, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A test stream: canned input (one segment per `read` call, the
    /// way a socket delivers data in arbitrary packets), captured
    /// output.
    struct Pipe {
        segments: std::collections::VecDeque<Vec<u8>>,
        current: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn new(input: &str) -> Pipe {
            Pipe::segmented(&[input])
        }

        fn segmented(inputs: &[&str]) -> Pipe {
            Pipe {
                segments: inputs.iter().map(|s| s.as_bytes().to_vec()).collect(),
                current: Cursor::new(Vec::new()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                let n = self.current.read(buf)?;
                if n > 0 {
                    return Ok(n);
                }
                match self.segments.pop_front() {
                    Some(next) => self.current = Cursor::new(next),
                    None => return Ok(0),
                }
            }
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_get_without_body() {
        let mut s = Pipe::new("GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz", "query string stripped");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length() {
        let mut s = Pipe::new(
            "POST /v1/estimate HTTP/1.1\r\nContent-Type: application/json\r\ncontent-length: 7\r\n\r\n{\"a\":1}",
        );
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn acknowledges_expect_continue() {
        // A real Expect client holds the body back until the interim
        // response arrives, so headers and body come in separate reads.
        let mut s = Pipe::segmented(&[
            "POST /v1/scenario HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n",
            "{}",
        ]);
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.body, b"{}");
        assert!(String::from_utf8_lossy(&s.output).starts_with("HTTP/1.1 100 Continue"));
    }

    #[test]
    fn body_split_across_reads_and_overread_both_work() {
        // Body delivered byte-meal after the header chunk.
        let mut s = Pipe::segmented(&[
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n",
            "{\"a\"",
            ":1}",
        ]);
        assert_eq!(read_request(&mut s).unwrap().body, b"{\"a\":1}");
        // Body over-read together with the headers (no Expect), even
        // with trailing junk past Content-Length.
        let mut s = Pipe::new("POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}junk");
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.body, b"{\"a\":1}");
        assert!(s.output.is_empty(), "no spurious 100 Continue");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 413);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GARBAGE\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GET / SPDY/9\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 505);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 501);
    }

    #[test]
    fn response_carries_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
