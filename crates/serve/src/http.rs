//! A deliberately small HTTP/1.1 implementation — just enough protocol
//! for a JSON API: request-line + headers + `Content-Length` bodies in,
//! status + headers + body out (plus chunked transfer encoding for
//! streaming responses).
//!
//! The core is the *push-based* [`RequestParser`]: a state machine fed
//! raw bytes ([`RequestParser::feed`]) that yields complete requests
//! ([`RequestParser::try_next`]) without ever touching a socket — the
//! shape a readiness-based event loop needs, where bytes arrive
//! whenever the kernel says so, in whatever fragments the network
//! produced. The blocking [`Conn`] used by tests and one-shot paths is
//! a thin pull adapter over the same parser, so both transports parse
//! identically by construction.
//!
//! Limits are enforced while parsing (header block ≤ 16 KiB, body ≤
//! 4 MiB) so a misbehaving client can't balloon the buffer, and
//! `Expect: 100-continue` is honoured because stock `curl` sends it for
//! larger bodies. HTTP/1.1 requests keep the connection alive by
//! default, `Connection: close` (and HTTP/1.0) closes it, and bytes
//! over-read past one request's body are kept as the start of the next.

use std::io::{Read, Write};

/// Header block size limit.
const MAX_HEAD: usize = 16 * 1024;
/// Body size limit.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// The raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: an
    /// explicit `Connection` header wins, otherwise the HTTP/1.1
    /// default is keep-alive and the HTTP/1.0 default is close.
    pub keep_alive: bool,
    /// The `Authorization` header value, verbatim, when present
    /// (bearer-token auth checks it before routing).
    pub authorization: Option<String>,
}

impl Request {
    /// The first value of query parameter `name` (`?id=7&x` →
    /// `query_param("id") == Some("7")`, `query_param("x") ==
    /// Some("")`). No percent-decoding — the API's parameters are
    /// plain numbers and keywords.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (key == name).then_some(value)
        })
    }
}

/// A malformed or over-limit request, mapped to a status + message.
#[derive(Debug)]
pub struct HttpError {
    /// Response status to send.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::new(400, format!("read failed: {e}"))
    }
}

/// Find the end of the header block in `buf`: the index just past the
/// blank line, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// A parsed header block: everything known before the body arrives.
#[derive(Debug, Clone)]
struct Head {
    method: String,
    path: String,
    query: String,
    keep_alive: bool,
    content_length: usize,
    expects_continue: bool,
    authorization: Option<String>,
}

/// Parse a complete header block (request line + headers, the bytes up
/// to and including the blank line).
fn parse_head(bytes: Vec<u8>) -> Result<Head, HttpError> {
    let head = String::from_utf8(bytes).map_err(|_| HttpError::new(400, "non-UTF-8 header"))?;
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, format!("unsupported {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut expects_continue = false;
    let mut authorization = None;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(501, "chunked bodies not supported"));
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        } else if name.eq_ignore_ascii_case("authorization") {
            authorization = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::new(413, "body too large"));
    }
    Ok(Head {
        method,
        path,
        query,
        keep_alive,
        content_length,
        expects_continue,
        authorization,
    })
}

/// Which part of a request the parser is inside.
#[derive(Debug)]
enum Phase {
    /// Accumulating the header block (or idle between requests when
    /// the buffer is empty).
    Head,
    /// Header block parsed; waiting for `content_length` body bytes.
    Body(Head),
}

/// Incremental HTTP/1.1 request parser: feed it bytes as they arrive,
/// pull complete requests out. Never blocks, never touches I/O — the
/// event loop owns the socket, the parser owns the protocol.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    phase: Phase,
    /// Set when a parsed head carried `Expect: 100-continue` and its
    /// body had not fully arrived — the driver should write the interim
    /// response; cleared by [`RequestParser::take_continue`].
    needs_continue: bool,
}

impl Default for RequestParser {
    fn default() -> Self {
        RequestParser::new()
    }
}

impl RequestParser {
    /// A fresh parser (start of a connection).
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            phase: Phase::Head,
            needs_continue: false,
        }
    }

    /// Append bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes are buffered (a pipelined next
    /// request, or a partial one).
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty() || matches!(self.phase, Phase::Body(_))
    }

    /// Whether the parser is *inside* a request — a partial header
    /// block or an incomplete body. Distinguishes "client idle between
    /// requests" (a clean close) from "client stopped mid-request" (an
    /// error / hostile client) on EOF or timeout.
    pub fn mid_request(&self) -> bool {
        match self.phase {
            Phase::Head => !self.buf.is_empty(),
            Phase::Body(_) => true,
        }
    }

    /// Whether the parser is waiting for body bytes (the header block
    /// is already parsed) — the event loop's reading-body state.
    pub fn in_body(&self) -> bool {
        matches!(self.phase, Phase::Body(_))
    }

    /// True exactly once after a head with `Expect: 100-continue`
    /// parsed while its body was still outstanding; the caller writes
    /// the `100 Continue` interim response.
    pub fn take_continue(&mut self) -> bool {
        std::mem::take(&mut self.needs_continue)
    }

    /// Try to produce the next complete request from the buffered
    /// bytes. `Ok(None)` means more bytes are needed; errors poison the
    /// connection's framing (the caller answers and closes).
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        if matches!(self.phase, Phase::Head) {
            let Some(end) = head_end(&self.buf) else {
                if self.buf.len() >= MAX_HEAD {
                    return Err(HttpError::new(431, "header block too large"));
                }
                return Ok(None);
            };
            let rest = self.buf.split_off(end);
            let head_bytes = std::mem::replace(&mut self.buf, rest);
            let head = parse_head(head_bytes)?;
            if head.expects_continue && self.buf.len() < head.content_length {
                self.needs_continue = true;
            }
            self.phase = Phase::Body(head);
        }
        let Phase::Body(head) = &self.phase else {
            unreachable!("phase advanced above");
        };
        if self.buf.len() < head.content_length {
            return Ok(None);
        }
        let Phase::Body(head) = std::mem::replace(&mut self.phase, Phase::Head) else {
            unreachable!("checked above");
        };
        let rest = self.buf.split_off(head.content_length);
        let body = std::mem::replace(&mut self.buf, rest);
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            body,
            keep_alive: head.keep_alive,
            authorization: head.authorization,
        }))
    }
}

/// A blocking connection serving a sequence of requests: pulls bytes
/// from the stream and runs them through a [`RequestParser`]. Used by
/// tests, doc examples, and one-shot paths; the server's event loop
/// drives the parser directly.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    parser: RequestParser,
}

impl<S> Conn<S> {
    /// Wrap a fresh stream.
    pub fn new(stream: S) -> Conn<S> {
        Conn {
            stream,
            parser: RequestParser::new(),
        }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutable access to the underlying stream (e.g. to write the
    /// response).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

impl<S: Read + Write> Conn<S> {
    /// Block until the next request's first bytes are available (or
    /// already buffered), up to the stream's *current* read timeout;
    /// `false` means EOF, idle timeout, or a read error — the
    /// connection is done. This separates the *idle* wait from the
    /// reads *within* a request: a server sets a short idle timeout,
    /// awaits, then restores its longer per-request timeout before
    /// calling [`Conn::read_request`].
    pub fn await_request(&mut self) -> bool {
        if self.parser.has_buffered() {
            return true;
        }
        let mut byte = [0u8; 1];
        match self.stream.read(&mut byte) {
            Ok(n) if n > 0 => {
                self.parser.feed(&byte[..n]);
                true
            }
            _ => false,
        }
    }

    /// Read the next request from the connection. `Ok(None)` means the
    /// client closed (or went idle past the socket's read timeout)
    /// between requests — a clean end of the connection, not an error.
    ///
    /// Needs `Write` access too so it can acknowledge
    /// `Expect: 100-continue` before the client sends the body.
    pub fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        let mut chunk = [0u8; 1024];
        loop {
            if let Some(req) = self.parser.try_next()? {
                return Ok(Some(req));
            }
            if self.parser.take_continue() {
                self.stream
                    .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                    .map_err(|e| HttpError::new(400, format!("write failed: {e}")))?;
                self.stream.flush().ok();
            }
            match self.stream.read(&mut chunk) {
                Ok(0) if !self.parser.mid_request() => return Ok(None),
                Ok(0) => return Err(HttpError::new(400, "connection closed mid-request")),
                Ok(n) => self.parser.feed(&chunk[..n]),
                // Idle timeout while waiting for the next request is a
                // clean close; mid-request it is an error.
                Err(e)
                    if !self.parser.mid_request()
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Read one request from a stream that serves a single request (test
/// helper and one-shot paths); see [`Conn::read_request`].
pub fn read_request<S: Read + Write>(stream: &mut S) -> Result<Request, HttpError> {
    Conn::new(stream)
        .read_request()?
        .ok_or_else(|| HttpError::new(400, "connection closed mid-request"))
}

/// Canonical reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// `Content-Type` of JSON responses (every endpoint except `/metrics`
/// and streaming sweeps).
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// `Content-Type` of the Prometheus text exposition format.
pub const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4";

/// Content type of plain-text answers (`/debug/profile`'s collapsed
/// stacks).
pub const CONTENT_TYPE_TEXT: &str = "text/plain; charset=utf-8";

/// `Content-Type` of streaming NDJSON sweep responses.
pub const CONTENT_TYPE_NDJSON: &str = "application/x-ndjson";

/// Write a complete response and flush. `close` selects the
/// `Connection` header: `close` ends the connection after this
/// response, `keep-alive` invites the next request.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, body, content_type, close, &[])
}

/// [`write_response`] with extra headers (name, value) — e.g. the
/// `Retry-After` a 503 backpressure rejection carries.
pub fn write_response_with<S: Write>(
    stream: &mut S,
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    stream.write_all(&render_response(
        status,
        body,
        content_type,
        close,
        extra_headers,
    ))?;
    stream.flush()
}

/// Render a complete response into one contiguous buffer — the event
/// loop writes responses as single buffers (one `write` syscall when
/// the socket has room, and no Nagle/delayed-ACK stalls from
/// fragmented segments).
pub fn render_response(
    status: u16,
    body: &str,
    content_type: &str,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Render the head of a chunked streaming response (no
/// `Content-Length`; the body arrives as chunks, see [`chunk`]).
pub fn render_stream_head(status: u16, content_type: &str, close: bool) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        reason(status),
        if close { "close" } else { "keep-alive" },
    )
    .into_bytes()
}

/// Encode one chunk of a chunked transfer-encoded body.
pub fn chunk(data: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating chunk of a chunked body.
pub const CHUNKED_END: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A test stream: canned input (one segment per `read` call, the
    /// way a socket delivers data in arbitrary packets), captured
    /// output.
    struct Pipe {
        segments: std::collections::VecDeque<Vec<u8>>,
        current: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn new(input: &str) -> Pipe {
            Pipe::segmented(&[input])
        }

        fn segmented(inputs: &[&str]) -> Pipe {
            Pipe {
                segments: inputs.iter().map(|s| s.as_bytes().to_vec()).collect(),
                current: Cursor::new(Vec::new()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                let n = self.current.read(buf)?;
                if n > 0 {
                    return Ok(n);
                }
                match self.segments.pop_front() {
                    Some(next) => self.current = Cursor::new(next),
                    None => return Ok(0),
                }
            }
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_get_without_body() {
        let mut s = Pipe::new("GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz", "query string stripped");
        assert_eq!(r.query, "probe=1", "query string kept separately");
        assert_eq!(r.query_param("probe"), Some("1"));
        assert_eq!(r.query_param("absent"), None);
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.authorization.is_none());
    }

    #[test]
    fn parses_post_with_content_length() {
        let mut s = Pipe::new(
            "POST /v1/estimate HTTP/1.1\r\nContent-Type: application/json\r\ncontent-length: 7\r\n\r\n{\"a\":1}",
        );
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn captures_the_authorization_header() {
        let mut s =
            Pipe::new("GET /v1/cache/stats HTTP/1.1\r\nAuthorization: Bearer s3cr3t\r\n\r\n");
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.authorization.as_deref(), Some("Bearer s3cr3t"));
    }

    #[test]
    fn connection_header_and_version_control_keep_alive() {
        let mut s = Pipe::new("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!read_request(&mut s).unwrap().keep_alive);
        let mut s = Pipe::new("GET / HTTP/1.0\r\n\r\n");
        assert!(!read_request(&mut s).unwrap().keep_alive, "1.0 default");
        let mut s = Pipe::new("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(read_request(&mut s).unwrap().keep_alive, "explicit wins");
    }

    #[test]
    fn incremental_parser_handles_byte_meal_delivery() {
        // The event-loop shape: bytes arrive one at a time, the parser
        // only yields once the request is complete.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut p = RequestParser::new();
        for (i, b) in wire.iter().enumerate() {
            p.feed(std::slice::from_ref(b));
            let parsed = p.try_next().unwrap();
            if i + 1 < wire.len() {
                assert!(parsed.is_none(), "yielded early at byte {i}");
            } else {
                let r = parsed.expect("complete at the last byte");
                assert_eq!(r.body, b"abc");
            }
        }
        assert!(!p.has_buffered(), "nothing left over");
    }

    #[test]
    fn incremental_parser_reports_request_phases() {
        let mut p = RequestParser::new();
        assert!(!p.mid_request(), "fresh parser is idle");
        p.feed(b"POST /x HTTP/1.1\r\nCont");
        assert!(p.try_next().unwrap().is_none());
        assert!(p.mid_request() && !p.in_body(), "partial header");
        p.feed(b"ent-Length: 3\r\n\r\na");
        assert!(p.try_next().unwrap().is_none());
        assert!(p.in_body(), "header parsed, body outstanding");
        p.feed(b"bc");
        assert!(p.try_next().unwrap().is_some());
        assert!(!p.mid_request(), "idle again between requests");
    }

    #[test]
    fn two_requests_on_one_connection_with_carryover() {
        // Both requests (and the second's body) arrive in one packet:
        // the bytes past the first body must carry over, not be
        // dropped.
        let mut conn = Conn::new(Pipe::new(
            "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo",
        ));
        let a = conn.read_request().unwrap().unwrap();
        assert_eq!(
            (a.path.as_str(), a.body.as_slice()),
            ("/a", b"one".as_slice())
        );
        let b = conn.read_request().unwrap().unwrap();
        assert_eq!(
            (b.path.as_str(), b.body.as_slice()),
            ("/b", b"two".as_slice())
        );
        assert!(conn.read_request().unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        let mut conn = Conn::new(Pipe::new("GET / HTTP/1.1\r\n\r\n"));
        assert!(conn.read_request().unwrap().is_some());
        assert!(conn.read_request().unwrap().is_none());
    }

    #[test]
    fn await_request_consumes_nothing_a_read_would_miss() {
        // Buffered bytes count as a pending request without touching
        // the stream; a fresh byte from the stream lands in the parser
        // so the subsequent read_request sees the whole request.
        let mut conn = Conn::new(Pipe::new("GET /next HTTP/1.1\r\n\r\n"));
        assert!(conn.await_request(), "first byte arrived");
        assert!(conn.parser.has_buffered(), "byte is buffered, not dropped");
        assert!(conn.await_request(), "buffered byte alone is enough");
        let r = conn.read_request().unwrap().unwrap();
        assert_eq!(r.path, "/next");
        // EOF while idle is a clean end of the connection.
        assert!(!conn.await_request());
    }

    #[test]
    fn acknowledges_expect_continue() {
        // A real Expect client holds the body back until the interim
        // response arrives, so headers and body come in separate reads.
        let mut s = Pipe::segmented(&[
            "POST /v1/scenario HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n",
            "{}",
        ]);
        let r = read_request(&mut s).unwrap();
        assert_eq!(r.body, b"{}");
        assert!(String::from_utf8_lossy(&s.output).starts_with("HTTP/1.1 100 Continue"));
    }

    #[test]
    fn body_split_across_reads_and_overread_both_work() {
        // Body delivered byte-meal after the header chunk.
        let mut s = Pipe::segmented(&[
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n",
            "{\"a\"",
            ":1}",
        ]);
        assert_eq!(read_request(&mut s).unwrap().body, b"{\"a\":1}");
        // Body over-read together with the headers (no Expect); the
        // trailing bytes past Content-Length stay buffered.
        let mut conn = Conn::new(Pipe::new(
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}junk",
        ));
        let r = conn.read_request().unwrap().unwrap();
        assert_eq!(r.body, b"{\"a\":1}");
        assert!(conn.get_ref().output.is_empty(), "no spurious 100 Continue");
        assert!(conn.parser.has_buffered(), "trailing bytes kept");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 413);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GARBAGE\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 400);
        let mut s = Pipe::new("GET / SPDY/9\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 505);
        let mut s = Pipe::new("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(read_request(&mut s).unwrap_err().status, 501);
    }

    #[test]
    fn oversized_header_block_fails_without_the_terminator() {
        // A slow-loris that drips an endless header block hits the
        // size limit even though the blank line never arrives.
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'x'; MAX_HEAD];
        p.feed(&filler);
        assert_eq!(p.try_next().unwrap_err().status, 431);
    }

    #[test]
    fn response_carries_length_and_connection_header() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", CONTENT_TYPE_JSON, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", CONTENT_TYPE_METRICS, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
    }

    #[test]
    fn chunked_encoding_round_trips() {
        let head = String::from_utf8(render_stream_head(200, CONTENT_TYPE_NDJSON, false)).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Transfer-Encoding: chunked\r\n"));
        assert!(head.contains("Content-Type: application/x-ndjson\r\n"));
        assert!(!head.contains("Content-Length"), "chunked replaces length");

        assert_eq!(chunk(b"{\"i\":0}\n"), b"8\r\n{\"i\":0}\n\r\n");
        assert_eq!(chunk(&[b'x'; 26]), {
            let mut v = b"1a\r\n".to_vec();
            v.extend_from_slice(&[b'x'; 26]);
            v.extend_from_slice(b"\r\n");
            v
        });
        assert_eq!(CHUNKED_END, b"0\r\n\r\n");
    }
}
