//! # mr2-serve — online capacity planning over the scenario engine
//!
//! The paper's models exist to answer capacity-planning questions —
//! "how long will this job mix take on that cluster?" — and this crate
//! answers them online: a long-running, dependency-free HTTP/1.1
//! service (`std::net` + a fixed thread pool, hand-rolled JSON — the
//! build environment has no crates.io access) wrapping
//! [`mr2_scenario`]'s batch runner with its
//! [`mr2_scenario::ResultCache`] as shared state.
//!
//! * [`serve`] / [`ServeConfig`] (module [`server`]): the service —
//!   `POST /v1/estimate` (one point, open-arrival λ supported),
//!   `POST /v1/scenario` (a full declarative sweep, answered by the
//!   parallel batch runner), `POST /v1/plan` (the *inverse* question:
//!   the cheapest node count meeting an SLO at a given arrival rate,
//!   solved by bisection over cached point evaluations),
//!   `GET /v1/cache/stats`, `GET /healthz`;
//! * [`json`]: minimal RFC 8259 encode/decode;
//! * [`http`]: just-enough HTTP/1.1 over blocking streams;
//! * [`api`]: the wire types — strict request decoding into
//!   [`mr2_scenario::Scenario`] / [`mr2_scenario::EvalPoint`] /
//!   [`mr2_scenario::PlanRequest`], response encoding of sweeps, error
//!   bands, plans, and cache counters, and the unified versioned
//!   envelope: every reply carries `"api_version"`, every failure is
//!   `{"error": {"code", "message", "field"?}}` ([`api::ApiError`]),
//!   and legacy request shapes draw a `"deprecations"` list.
//!
//! The shared cache is schema-versioned, LRU-bounded, and coalesces
//! in-flight evaluations, so concurrent identical queries cost exactly
//! one model solve (or simulator run), and a configured snapshot file
//! makes warm answers survive restarts.
//!
//! ```
//! use mr2_serve::{serve, ServeConfig};
//! use std::io::{Read, Write};
//!
//! let handle = serve(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let mut conn = std::net::TcpStream::connect(handle.addr).unwrap();
//! write!(conn, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.contains("\"status\":\"ok\""));
//! handle.shutdown();
//! ```

pub mod api;
pub mod http;
pub mod jobs;
pub mod json;
pub mod net;
pub mod server;

pub use json::{Json, JsonError};
pub use server::{serve, ServeConfig, ServerHandle};
