//! The long-running service: a `TcpListener` accept loop feeding a
//! fixed pool of worker threads, routing to the scenario engine with
//! the shared [`ResultCache`] as state, plus a persistence thread that
//! periodically snapshots the cache to disk.
//!
//! Endpoints (one row of [`ROUTES`] each):
//!
//! | method | path | body | answer |
//! |---|---|---|---|
//! | `GET`  | `/healthz` | — | liveness + uptime + request count |
//! | `GET`  | `/metrics` | — | Prometheus text exposition of the process registry |
//! | `GET`  | `/v1/cache/stats` | — | shared-cache counters |
//! | `POST` | `/v1/estimate` | point spec | one evaluated point |
//! | `POST` | `/v1/scenario` | scenario spec | full sweep + error bands |
//! | `POST` | `/v1/plan` | SLO + search range | cheapest satisfying node count |
//!
//! Every JSON reply — success or failure — carries `"api_version"`,
//! and every failure is the one envelope
//! `{"error": {"code", "message", "field"?}}` (see [`api::ApiError`]):
//! 400 for malformed transport/JSON, 422 for well-formed requests that
//! fail validation, 405/404 for routing, 503 (with `Retry-After`) when
//! the accept queue is over [`ServeConfig::max_queue`].
//!
//! Concurrent identical queries cost one evaluation: the cache
//! coalesces in-flight computations, so a thundering herd of the same
//! what-if question does the model solve (or simulator run) once and
//! fans the record out. `/v1/plan` rides the same cache: every probe
//! of its bisection is a cached point evaluation, so re-planning after
//! a warm-up answers from memory.
//!
//! Every request is observable three ways: per-route counters and
//! latency histograms in the `mr2-obs` registry (scraped via
//! `GET /metrics`), one structured access-log line on stderr
//! ([`ServeConfig::access_log`]), and — when a request body carries
//! `"debug": true` — a per-span timing breakdown attached to the reply.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mr2_obs as obs;
use mr2_scenario::{evaluate_point, run_scenario, PointResult, ResultCache, RunnerConfig};

use crate::api::{self, ApiError};
use crate::http::{
    write_response, write_response_with, Conn, HttpError, Request, CONTENT_TYPE_JSON,
    CONTENT_TYPE_METRICS,
};
use crate::json::Json;

/// Socket read/write budget while a request or response is in flight
/// (the keep-alive *idle* wait between requests is configured
/// separately, [`ServeConfig::keep_alive_idle`]).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks one).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Shared-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Upper bound on points a single `/v1/scenario` may expand to.
    pub max_points: usize,
    /// Upper bound on concurrent jobs one point's workload mix may
    /// carry (entry counts sum). `max_points` bounds the axis product
    /// only; without this a single `{"count": 10^12}` entry would make
    /// one evaluation allocate per-job state until the process dies.
    pub max_jobs_per_point: usize,
    /// Snapshot the cache here (loaded at startup when present).
    pub cache_file: Option<PathBuf>,
    /// How often the persistence thread snapshots a dirty cache.
    pub persist_every: Duration,
    /// Requests served per kept-alive connection before the service
    /// closes it (bounds how long one client can pin a worker; 0 is
    /// treated as 1).
    pub keep_alive_requests: usize,
    /// How long an idle kept-alive connection may sit between requests
    /// before the service closes it.
    pub keep_alive_idle: Duration,
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor sheds load: at this backlog depth new connections are
    /// answered 503 (`Retry-After: 1`) and closed instead of queued,
    /// so an overloaded service degrades with an explicit signal
    /// rather than unbounded queueing delay.
    pub max_queue: usize,
    /// Runner knobs for scenario sweeps (worker-thread count of the
    /// *evaluation* pool, not the HTTP pool).
    pub runner: RunnerConfig,
    /// Write one structured line per request to stderr (request id,
    /// method, path, status, response bytes, latency).
    pub access_log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            threads: 4,
            cache_capacity: 65_536,
            max_points: 4_096,
            max_jobs_per_point: 256,
            cache_file: None,
            persist_every: Duration::from_secs(30),
            keep_alive_requests: 32,
            keep_alive_idle: Duration::from_secs(5),
            max_queue: 1_024,
            runner: RunnerConfig::default(),
            access_log: true,
        }
    }
}

/// Request-layer metric handles. Per-route series go through the
/// registry's read-lock lookup on each request (negligible next to an
/// evaluation); unlabelled series are cached in `OnceLock` statics.
mod metrics {
    use super::obs;

    pub fn requests(method: &str, path: &str, status: u16) -> obs::Counter {
        obs::counter_with(
            "mr2_http_requests_total",
            "HTTP requests served, by method, route, and status.",
            &[
                ("method", method),
                ("path", path),
                ("status", &status.to_string()),
            ],
        )
    }

    pub fn latency(path: &str) -> obs::Histogram {
        obs::histogram_with(
            "mr2_http_request_seconds",
            "Request handling latency, parse to response built, by route.",
            &[("path", path)],
            obs::Buckets::TIME,
        )
    }

    pub fn requests_served() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_requests_total",
                "HTTP requests served, all routes (the /healthz aggregate).",
            )
        })
    }

    pub fn queue_depth() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_queue_depth",
                "Accepted connections waiting for a worker thread.",
            )
        })
    }

    pub fn shed() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_shed_total",
                "Connections answered 503 at accept because the worker queue was full.",
            )
        })
    }

    pub fn queue_wait() -> &'static obs::Histogram {
        static H: std::sync::OnceLock<obs::Histogram> = std::sync::OnceLock::new();
        H.get_or_init(|| {
            obs::histogram(
                "mr2_serve_queue_wait_seconds",
                "Time an accepted connection waited for a worker thread.",
                obs::Buckets::TIME,
            )
        })
    }

    pub fn uptime() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_uptime_seconds",
                "Seconds since the service started (set at scrape time).",
            )
        })
    }

    pub fn cache_entries() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_cache_entries",
                "Entries resident in the service's shared result cache (set at scrape time).",
            )
        })
    }

    pub fn cache_hit_ratio() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_cache_hit_ratio",
                "hits / (hits + misses) of the service's shared result cache (set at scrape time).",
            )
        })
    }
}

/// Shared state of all workers.
struct State {
    cache: ResultCache,
    cfg: ServeConfig,
    started: Instant,
    /// Cache mutation stamp at the last successful snapshot, so clean
    /// caches aren't rewritten. The *count* would go stale once the LRU
    /// bound makes insert+evict churn under a constant entry count.
    persisted_stamp: AtomicU64,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Stop accepting, drain the workers, snapshot the cache one last
    /// time, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        persist(&self.state);
    }

    /// The shared cache's counters (for tests and embedding).
    pub fn cache_stats(&self) -> mr2_scenario::CacheStats {
        self.state.cache.stats()
    }
}

/// Bind and start the service; returns once the listener is live.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    let cache = ResultCache::with_capacity(cfg.cache_capacity);
    if let Some(path) = &cfg.cache_file {
        match cache.load(path) {
            Ok(n) if n > 0 => eprintln!("mr2-serve: warmed {n} cache entries from {path:?}"),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("mr2-serve: cache load failed ({path:?}): {e}"),
        }
    }
    let state = Arc::new(State {
        persisted_stamp: AtomicU64::new(cache.mutation_count()),
        cache,
        cfg: cfg.clone(),
        started: Instant::now(),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Fixed worker pool over one shared receiver. Each queued socket
    // carries its enqueue time so the pool's backlog is measurable.
    let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..cfg.threads.max(1) {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name(format!("mr2-serve-worker-{i}"))
                .spawn(move || loop {
                    let next = rx.lock().unwrap().recv();
                    match next {
                        Ok((stream, queued_at)) => {
                            metrics::queue_depth().dec();
                            metrics::queue_wait().observe(queued_at.elapsed().as_secs_f64());
                            handle_connection(stream, &state)
                        }
                        Err(_) => break, // acceptor gone: drain complete
                    }
                })
                .expect("spawn worker"),
        );
    }

    // Acceptor: hands sockets to the pool until shutdown, shedding
    // load with a 503 once the backlog hits `max_queue`.
    {
        let stop = Arc::clone(&stop);
        let max_queue = cfg.max_queue;
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(mut stream) = stream {
                            // Slow or stalled clients time out instead of
                            // pinning a worker forever.
                            let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
                            let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
                            if metrics::queue_depth().value() >= max_queue as f64 {
                                // Reject before queueing: an explicit
                                // retry signal beats unbounded wait.
                                metrics::shed().inc();
                                let err = ApiError::backpressure();
                                let _ = write_response_with(
                                    &mut stream,
                                    err.status,
                                    &err.body(),
                                    CONTENT_TYPE_JSON,
                                    true,
                                    &[("Retry-After", "1")],
                                );
                                continue;
                            }
                            metrics::queue_depth().inc();
                            if tx.send((stream, Instant::now())).is_err() {
                                metrics::queue_depth().dec();
                                break;
                            }
                        }
                    }
                    // Dropping `tx` here lets the workers drain and exit.
                })
                .expect("spawn acceptor"),
        );
    }

    // Persistence: snapshot the cache while it keeps growing.
    if state.cfg.cache_file.is_some() {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-persist".into())
                .spawn(move || {
                    let tick = Duration::from_millis(200);
                    let mut elapsed = Duration::ZERO;
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed >= state.cfg.persist_every {
                            elapsed = Duration::ZERO;
                            persist(&state);
                        }
                    }
                })
                .expect("spawn persister"),
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        stop,
        threads,
    })
}

/// Snapshot the cache if its content changed since the last successful
/// snapshot. The stamp is read *before* saving (a save racing new
/// inserts re-saves on the next tick) and advanced only on success (a
/// failed save stays dirty and retries).
fn persist(state: &State) {
    let Some(path) = &state.cfg.cache_file else {
        return;
    };
    let stamp = state.cache.mutation_count();
    if stamp == state.persisted_stamp.load(Ordering::SeqCst) {
        return;
    }
    match state.cache.save(path) {
        Ok(()) => state.persisted_stamp.store(stamp, Ordering::SeqCst),
        Err(e) => eprintln!("mr2-serve: cache save failed ({path:?}): {e}"),
    }
}

/// Serve one connection: up to `keep_alive_requests` requests when the
/// client asks for keep-alive, closing on protocol errors, an explicit
/// `Connection: close`, the request cap, or `keep_alive_idle` of
/// silence between requests.
fn handle_connection(stream: TcpStream, state: &State) {
    let max_requests = state.cfg.keep_alive_requests.max(1);
    let mut conn = Conn::new(stream);
    for served in 0..max_requests {
        if served > 0 {
            // Between requests the socket waits at most the idle
            // timeout; once the next request's first bytes arrive, the
            // longer per-request timeout is restored so a slow body
            // upload on a reused connection gets the same budget as on
            // a fresh one.
            let _ = conn
                .get_ref()
                .set_read_timeout(Some(state.cfg.keep_alive_idle));
            let pending = conn.await_request();
            let _ = conn.get_ref().set_read_timeout(Some(REQUEST_TIMEOUT));
            if !pending {
                return;
            }
        }
        let (resp, close) = match conn.read_request() {
            Ok(Some(req)) => {
                let request_id = obs::next_request_id();
                let started = Instant::now();
                // A panicking evaluation must cost a 500, not a worker.
                let resp =
                    std::panic::catch_unwind(AssertUnwindSafe(|| route(&req, state, request_id)))
                        .unwrap_or_else(|_| {
                            // A panicked debug request may strand its
                            // thread-local trace; clear it so later
                            // requests on this worker start clean.
                            let _ = obs::end_trace();
                            Response::error(ApiError::internal(
                                "internal error: evaluation panicked",
                            ))
                        });
                let latency = started.elapsed();
                let path = canonical_path(&req.path);
                metrics::requests(&req.method, path, resp.status).inc();
                metrics::latency(path).observe(latency.as_secs_f64());
                metrics::requests_served().inc();
                if state.cfg.access_log {
                    eprintln!(
                        "mr2-serve: request id={request_id} method={} path={} status={} bytes={} micros={}",
                        req.method,
                        req.path,
                        resp.status,
                        resp.body.len(),
                        latency.as_micros(),
                    );
                }
                (resp, !req.keep_alive || served + 1 == max_requests)
            }
            // Client closed (or idled out) between requests.
            Ok(None) => return,
            // Protocol errors poison the framing; always close.
            Err(HttpError { status, message }) => (
                Response::error(ApiError::from_status(status, message)),
                true,
            ),
        };
        let ok = write_response(
            conn.stream_mut(),
            resp.status,
            &resp.body,
            resp.content_type,
            close,
        );
        if ok.is_err() || close {
            return;
        }
    }
}

/// A routed response: status, body, and the body's content type
/// (everything but `/metrics` is JSON).
struct Response {
    status: u16,
    body: String,
    content_type: &'static str,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: CONTENT_TYPE_JSON,
        }
    }

    /// Render an [`ApiError`] as the unified error envelope.
    fn error(err: ApiError) -> Response {
        Response::json(err.status, err.body())
    }

    /// Render a success reply, stamping the versioned envelope fields
    /// (`api_version`, plus `deprecations` when the request leaned on
    /// deprecated fields) onto the body first.
    fn ok(mut body: Json, deprecations: &[&'static str]) -> Response {
        api::stamp_reply(&mut body, deprecations);
        Response::json(200, body.render())
    }
}

fn jobs_bound_error(jobs: usize, state: &State) -> ApiError {
    ApiError::validation(format!(
        "workload mix carries {jobs} concurrent jobs, above the service bound of {}",
        state.cfg.max_jobs_per_point
    ))
}

/// The service's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Healthz,
    Metrics,
    CacheStats,
    Estimate,
    Scenario,
    Plan,
}

/// The route table: dispatch, the 405 fallback, and the metric path
/// labels all read these rows, so adding an endpoint is one new row
/// (replacing the hand-maintained 405 path list that had to be kept in
/// sync with the dispatch match).
const ROUTES: &[(&str, &str, Endpoint)] = &[
    ("GET", "/healthz", Endpoint::Healthz),
    ("GET", "/metrics", Endpoint::Metrics),
    ("GET", "/v1/cache/stats", Endpoint::CacheStats),
    ("POST", "/v1/estimate", Endpoint::Estimate),
    ("POST", "/v1/scenario", Endpoint::Scenario),
    ("POST", "/v1/plan", Endpoint::Plan),
];

/// The canonical route path used as the metric label — known paths
/// stay themselves, everything else collapses to `other` so a client
/// probing random paths can't mint unbounded label values.
fn canonical_path(path: &str) -> &'static str {
    ROUTES
        .iter()
        .find(|(_, p, _)| *p == path)
        .map(|&(_, p, _)| p)
        .unwrap_or("other")
}

fn route(req: &Request, state: &State, request_id: u64) -> Response {
    let hit = ROUTES
        .iter()
        .find(|(m, p, _)| *m == req.method && *p == req.path);
    let Some(&(_, _, endpoint)) = hit else {
        // Same path under another method is a 405, unknown path a 404.
        return if ROUTES.iter().any(|(_, p, _)| *p == req.path) {
            Response::error(ApiError::method_not_allowed())
        } else {
            Response::error(ApiError::not_found())
        };
    };
    match endpoint {
        Endpoint::Healthz => Response::ok(
            Json::obj([
                ("status", Json::str("ok")),
                (
                    "uptime_secs",
                    Json::num(state.started.elapsed().as_secs_f64()),
                ),
                ("requests_total", metrics::requests_served().value().into()),
            ]),
            &[],
        ),
        Endpoint::Metrics => metrics_response(state),
        Endpoint::CacheStats => Response::ok(api::cache_stats_json(&state.cache.stats()), &[]),
        Endpoint::Estimate => estimate_response(req, state, request_id),
        Endpoint::Scenario => scenario_response(req, state, request_id),
        Endpoint::Plan => plan_response(req, state, request_id),
    }
}

/// Render the process registry, refreshing the scrape-time gauges
/// (uptime, cache entries, hit ratio) first. The cache's monotonic
/// counters are incremented live by the cache itself.
fn metrics_response(state: &State) -> Response {
    metrics::uptime().set(state.started.elapsed().as_secs_f64());
    let stats = state.cache.stats();
    metrics::cache_entries().set(stats.entries as f64);
    metrics::cache_hit_ratio().set(api::hit_ratio(&stats));
    Response {
        status: 200,
        body: obs::render(),
        content_type: CONTENT_TYPE_METRICS,
    }
}

/// Insert the trace breakdown into a reply object under `"debug"`.
fn attach_debug(body: &mut Json, trace: &obs::Trace) {
    if let Json::Obj(map) = body {
        map.insert("debug".into(), api::debug_json(trace));
    }
}

fn estimate_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_estimate_request)
    {
        Ok(r) => {
            let jobs = r.point.total_jobs();
            if jobs > state.cfg.max_jobs_per_point {
                return Response::error(jobs_bound_error(jobs, state));
            }
            // With `"debug": true` the evaluation runs under a trace
            // context: the runner's top-level spans (point.model,
            // point.sim) and the encode span below form the breakdown.
            let traced = r.debug && obs::begin_trace(request_id);
            let result: PointResult = evaluate_point(&r.point, &r.backends, &state.cache);
            let mut body = {
                let _enc = obs::span("response.encode");
                api::point_json(&result)
            };
            if traced {
                if let Some(trace) = obs::end_trace() {
                    attach_debug(&mut body, &trace);
                }
            }
            Response::ok(body, &r.deprecations)
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}

fn scenario_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_scenario_request)
    {
        Ok(r) => {
            let scenario = &r.scenario;
            let n = scenario.num_points();
            if n > state.cfg.max_points {
                return Response::error(ApiError::validation(format!(
                    "scenario expands to {n} points, above the service bound of {}",
                    state.cfg.max_points
                )));
            }
            // `max_points` bounds the axis product; each mix value
            // must also keep its job total within the per-point
            // bound.
            if let Some(jobs) = scenario
                .workload_values()
                .iter()
                .map(|m| m.total_jobs())
                .find(|&jobs| jobs > state.cfg.max_jobs_per_point)
            {
                return Response::error(jobs_bound_error(jobs, state));
            }
            // The sweep's own point spans run on the runner's pool
            // threads, which deliberately don't inherit the trace; the
            // breakdown shows the sequential phases this thread saw.
            let traced = r.debug && obs::begin_trace(request_id);
            let sweep = {
                let _run = obs::span("scenario.run");
                run_scenario(scenario, &state.cache, &state.cfg.runner)
            };
            let mut body = {
                let _enc = obs::span("response.encode");
                api::sweep_json(&sweep)
            };
            if traced {
                if let Some(trace) = obs::end_trace() {
                    attach_debug(&mut body, &trace);
                }
            }
            Response::ok(body, &[])
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}

fn plan_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_plan_request)
    {
        Ok(r) => {
            let jobs = r.plan.mix.total_jobs();
            if jobs > state.cfg.max_jobs_per_point {
                return Response::error(jobs_bound_error(jobs, state));
            }
            // Each bisection probe is a cached analytic point
            // evaluation; under a trace the probes show up as the
            // plan.solve span.
            let traced = r.debug && obs::begin_trace(request_id);
            let result = {
                let _solve = obs::span("plan.solve");
                mr2_scenario::plan(&r.plan, &state.cache)
            };
            match result {
                Ok(result) => {
                    let mut body = {
                        let _enc = obs::span("response.encode");
                        api::plan_json(&r.plan, &result)
                    };
                    if traced {
                        if let Some(trace) = obs::end_trace() {
                            attach_debug(&mut body, &trace);
                        }
                    }
                    Response::ok(body, &r.deprecations)
                }
                Err(e) => {
                    if traced {
                        let _ = obs::end_trace();
                    }
                    Response::error(ApiError::validation(e))
                }
            }
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}
