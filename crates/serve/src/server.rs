//! The long-running service: a readiness-based event loop (raw `epoll`
//! over non-blocking sockets, module [`crate::net`]) owning every
//! connection, with a fixed pool of worker threads strictly for
//! CPU-bound evaluation behind a bounded job queue. A kept-alive idle
//! connection costs one file descriptor and a few KB of parser buffer
//! — not a thread — so concurrent connections scale past the worker
//! count by orders of magnitude.
//!
//! ```text
//!                        ┌────────────────────────────┐   job queue    ┌──────────┐
//!  clients ──accept──▶   │  event loop (1 thread)     │ ──(bounded)──▶ │ worker 0 │
//!     ▲                  │  epoll: listener, eventfds,│                │ worker 1 │
//!     │                  │  N connection fds          │ ◀─completions─ │  …       │
//!     └──────responses── │  per-conn state machine    │    (eventfd)   └──────────┘
//!                        └────────────────────────────┘        evaluate via cache
//! ```
//!
//! Each connection is an explicit state machine — `read_head` →
//! `read_body` → `waiting` (for a worker) → `writing` → `idle`
//! (keep-alive), plus `streaming` for chunked sweeps — driven only by
//! readiness events, worker completions, and deadlines. Cheap `GET`
//! routes are answered inline on the loop; `POST` evaluations are
//! dispatched to the pool, and the loop keeps serving other sockets
//! while they run. Responses render into one contiguous buffer and are
//! written opportunistically (usually a single `write`), so small
//! answers never stall on Nagle/delayed-ACK interaction.
//!
//! Endpoints (one row of [`ROUTES`] each):
//!
//! | method | path | body | answer |
//! |---|---|---|---|
//! | `GET`  | `/healthz` | — | liveness + uptime + request count |
//! | `GET`  | `/metrics` | — | Prometheus text exposition of the process registry |
//! | `GET`  | `/v1/cache/stats` | — | shared-cache counters |
//! | `POST` | `/v1/estimate` | point spec | one evaluated point |
//! | `POST` | `/v1/scenario` | scenario spec | full sweep + error bands, or NDJSON stream |
//! | `POST` | `/v1/plan` | SLO + search range | cheapest satisfying node count |
//!
//! `POST /v1/scenario` with `"stream": true` answers with chunked
//! NDJSON: one line per completed point as the runner's workers finish
//! them (completion order), then a summary tail line with the error
//! bands — first results leave the process while the rest of the grid
//! is still computing. Non-streaming replies are unchanged.
//!
//! Every JSON reply — success or failure — carries `"api_version"`,
//! and every failure is the one envelope
//! `{"error": {"code", "message", "field"?}}` (see [`api::ApiError`]):
//! 400 for malformed transport/JSON, 401 when a configured bearer
//! token ([`ServeConfig::token`]) is missing or wrong on a `/v1/*`
//! route, 422 for well-formed requests that fail validation, 405/404
//! for routing, 503 (with `Retry-After`) when the job queue is over
//! [`ServeConfig::max_queue`] — checked both at accept and at dispatch.
//!
//! Concurrent identical queries cost one evaluation: the cache
//! coalesces in-flight computations, so a thundering herd of the same
//! what-if question does the model solve (or simulator run) once and
//! fans the record out. `/v1/plan` rides the same cache.
//!
//! Observability: per-route counters/latency histograms, the
//! connection-level `mr2_serve_open_connections` gauge and per-state
//! `mr2_serve_connection_states{state=…}` gauges (with
//! `mr2_serve_connection_state_seconds` duration histograms), one
//! structured access-log line per request on stderr
//! ([`ServeConfig::access_log`]), and per-span timing breakdowns on
//! `"debug": true` requests.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mr2_obs as obs;
use mr2_scenario::{
    evaluate_point, run_scenario_streaming, PointResult, ResultCache, RunnerConfig,
};

use crate::api::{self, ApiError};
use crate::http::{
    chunk, render_response, render_stream_head, HttpError, Request, RequestParser, CHUNKED_END,
    CONTENT_TYPE_JSON, CONTENT_TYPE_METRICS, CONTENT_TYPE_NDJSON, CONTENT_TYPE_TEXT,
};
use crate::json::Json;
use crate::net::{Epoll, Event, EventFd, EV_READ, EV_WRITE};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks one).
    pub addr: String,
    /// Worker threads evaluating requests (the event loop is its own
    /// additional thread).
    pub threads: usize,
    /// Shared-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Upper bound on points a single `/v1/scenario` may expand to.
    pub max_points: usize,
    /// Upper bound on concurrent jobs one point's workload mix may
    /// carry (entry counts sum). `max_points` bounds the axis product
    /// only; without this a single `{"count": 10^12}` entry would make
    /// one evaluation allocate per-job state until the process dies.
    pub max_jobs_per_point: usize,
    /// Snapshot the cache here (loaded at startup when present).
    pub cache_file: Option<PathBuf>,
    /// How often the persistence thread snapshots a dirty cache.
    pub persist_every: Duration,
    /// Requests served per kept-alive connection before the service
    /// closes it (0 is treated as 1).
    pub keep_alive_requests: usize,
    /// How long an idle kept-alive connection may sit between requests
    /// before the service closes it.
    pub keep_alive_idle: Duration,
    /// Jobs allowed to wait for a worker before the service sheds
    /// load: over this backlog depth, new connections (at accept) and
    /// new evaluation requests (at dispatch) are answered 503
    /// (`Retry-After: 1`) instead of queued, so an overloaded service
    /// degrades with an explicit signal rather than unbounded queueing
    /// delay.
    pub max_queue: usize,
    /// Runner knobs for scenario sweeps (worker-thread count of the
    /// *evaluation* pool, not the HTTP pool).
    pub runner: RunnerConfig,
    /// Write one structured line per request to stderr (request id,
    /// method, path, status, response bytes, latency).
    pub access_log: bool,
    /// Bearer token required on every `/v1/*` route when set
    /// (`Authorization: Bearer <token>`); `/healthz` and `/metrics`
    /// stay open for probes and scrapes.
    pub token: Option<String>,
    /// Inactivity budget while a request or response is in flight: a
    /// connection that makes no progress (no bytes read or written)
    /// for this long mid-request is closed. The keep-alive *idle* wait
    /// between requests is configured separately
    /// ([`ServeConfig::keep_alive_idle`]).
    pub request_timeout: Duration,
    /// Trace head-sampling rate: every `1-in-N`th finished request
    /// trace is retained in the recent-trace ring (1 keeps all).
    pub trace_sample_one_in: u64,
    /// Tail-keep threshold: traces at least this slow are always
    /// retained, regardless of sampling.
    pub trace_slow: Duration,
    /// Event-loop stall watchdog: an iteration whose *work* phase
    /// (event dispatch + deadline sweep, excluding the epoll wait)
    /// exceeds this budget increments `mr2_serve_loop_stalls_total`
    /// and logs the offending connection states. Zero disables the
    /// watchdog.
    pub loop_stall_budget: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            threads: 4,
            cache_capacity: 65_536,
            max_points: 4_096,
            max_jobs_per_point: 256,
            cache_file: None,
            persist_every: Duration::from_secs(30),
            keep_alive_requests: 32,
            keep_alive_idle: Duration::from_secs(5),
            max_queue: 1_024,
            runner: RunnerConfig::default(),
            access_log: true,
            token: None,
            request_timeout: Duration::from_secs(10),
            trace_sample_one_in: 16,
            trace_slow: Duration::from_millis(250),
            loop_stall_budget: Duration::from_millis(100),
        }
    }
}

/// Request-layer metric handles. Per-route and per-state series go
/// through the registry's read-lock lookup on each touch (negligible
/// next to an evaluation); unlabelled series are cached in `OnceLock`
/// statics.
mod metrics {
    use super::obs;

    pub fn requests(method: &str, path: &str, status: u16) -> obs::Counter {
        obs::counter_with(
            "mr2_http_requests_total",
            "HTTP requests served, by method, route, and status.",
            &[
                ("method", method),
                ("path", path),
                ("status", &status.to_string()),
            ],
        )
    }

    pub fn latency(path: &str) -> obs::Histogram {
        obs::histogram_with(
            "mr2_http_request_seconds",
            "Request handling latency, parse to response built, by route.",
            &[("path", path)],
            obs::Buckets::TIME,
        )
    }

    pub fn requests_served() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_requests_total",
                "HTTP requests served, all routes (the /healthz aggregate).",
            )
        })
    }

    pub fn queue_depth() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_queue_depth",
                "Evaluation jobs waiting for a worker thread.",
            )
        })
    }

    pub fn shed() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_shed_total",
                "Requests answered 503 because the worker queue was full.",
            )
        })
    }

    pub fn queue_wait() -> &'static obs::Histogram {
        static H: std::sync::OnceLock<obs::Histogram> = std::sync::OnceLock::new();
        H.get_or_init(|| {
            obs::histogram(
                "mr2_serve_queue_wait_seconds",
                "Time an evaluation job waited for a worker thread.",
                obs::Buckets::TIME,
            )
        })
    }

    pub fn open_connections() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_open_connections",
                "Connections currently registered with the event loop.",
            )
        })
    }

    pub fn conn_state(state: &str) -> obs::Gauge {
        obs::gauge_with(
            "mr2_serve_connection_states",
            "Open connections by state machine state.",
            &[("state", state)],
        )
    }

    pub fn conn_state_seconds(state: &str) -> obs::Histogram {
        obs::histogram_with(
            "mr2_serve_connection_state_seconds",
            "Time connections spent in each state before transitioning.",
            &[("state", state)],
            obs::Buckets::TIME,
        )
    }

    pub fn workers_total() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_workers_total",
                "Worker threads in the evaluation pool.",
            )
        })
    }

    pub fn workers_busy() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_workers_busy",
                "Worker threads currently executing an evaluation job.",
            )
        })
    }

    pub fn loop_iterations() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_loop_iterations_total",
                "Event-loop iterations (one epoll wait plus dispatch).",
            )
        })
    }

    pub fn loop_stalls() -> &'static obs::Counter {
        static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
        C.get_or_init(|| {
            obs::counter(
                "mr2_serve_loop_stalls_total",
                "Event-loop iterations whose work phase exceeded the stall budget.",
            )
        })
    }

    pub fn loop_wait() -> &'static obs::Histogram {
        static H: std::sync::OnceLock<obs::Histogram> = std::sync::OnceLock::new();
        H.get_or_init(|| {
            obs::histogram(
                "mr2_serve_loop_wait_seconds",
                "Time each event-loop iteration spent blocked in epoll_wait.",
                obs::Buckets::TIME,
            )
        })
    }

    pub fn loop_work() -> &'static obs::Histogram {
        static H: std::sync::OnceLock<obs::Histogram> = std::sync::OnceLock::new();
        H.get_or_init(|| {
            obs::histogram(
                "mr2_serve_loop_work_seconds",
                "Time each event-loop iteration spent dispatching events and sweeping deadlines.",
                obs::Buckets::TIME,
            )
        })
    }

    pub fn uptime() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_serve_uptime_seconds",
                "Seconds since the service started (set at scrape time).",
            )
        })
    }

    pub fn cache_entries() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_cache_entries",
                "Entries resident in the service's shared result cache (set at scrape time).",
            )
        })
    }

    pub fn cache_hit_ratio() -> &'static obs::Gauge {
        static G: std::sync::OnceLock<obs::Gauge> = std::sync::OnceLock::new();
        G.get_or_init(|| {
            obs::gauge(
                "mr2_cache_hit_ratio",
                "hits / (hits + misses) of the service's shared result cache (set at scrape time).",
            )
        })
    }
}

/// Shared state of the event loop and all workers.
struct State {
    cache: ResultCache,
    cfg: ServeConfig,
    started: Instant,
    /// Evaluation jobs dispatched but not yet picked up by a worker —
    /// the backlog the shed decision reads. Per-instance (unlike the
    /// process-global gauge), so embedded servers don't shed on each
    /// other's load.
    queued: AtomicUsize,
    /// Cache mutation stamp at the last successful snapshot, so clean
    /// caches aren't rewritten. The *count* would go stale once the LRU
    /// bound makes insert+evict churn under a constant entry count.
    persisted_stamp: AtomicU64,
    /// In-flight (and recently finished) scenario sweeps, for
    /// `GET /v1/jobs`.
    jobs: Arc<crate::jobs::Jobs>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    shutdown_fd: Arc<EventFd>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Stop the event loop (via its shutdown eventfd — no timeouts or
    /// dummy connections involved), drain the workers, snapshot the
    /// cache one last time, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.shutdown_fd.notify();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        persist(&self.state);
    }

    /// The shared cache's counters (for tests and embedding).
    pub fn cache_stats(&self) -> mr2_scenario::CacheStats {
        self.state.cache.stats()
    }
}

/// One evaluation request handed to the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    endpoint: Endpoint,
    req: Request,
    /// Close the connection after this response (request or cap said so).
    close: bool,
    queued_at: Instant,
}

/// What a worker hands back to the event loop. Bytes are complete wire
/// fragments; the loop only appends them to the connection's output
/// buffer (stale generations are dropped — the slot was reused).
enum Completion {
    /// A whole rendered response; the request is done.
    Done {
        slot: usize,
        generation: u64,
        bytes: Vec<u8>,
        close: bool,
    },
    /// A fragment of a streaming response (head or chunk); more follow.
    Chunk {
        slot: usize,
        generation: u64,
        bytes: Vec<u8>,
    },
    /// The final fragment of a streaming response.
    End {
        slot: usize,
        generation: u64,
        bytes: Vec<u8>,
        close: bool,
    },
}

impl Completion {
    fn ids(&self) -> (usize, u64) {
        match self {
            Completion::Done {
                slot, generation, ..
            }
            | Completion::Chunk {
                slot, generation, ..
            }
            | Completion::End {
                slot, generation, ..
            } => (*slot, *generation),
        }
    }
}

/// The workers' side of the completion path: send a fragment, wake the
/// event loop. Send errors mean the loop is gone (shutdown) — dropped.
#[derive(Clone)]
struct CompletionTx {
    tx: mpsc::Sender<Completion>,
    wakeup: Arc<EventFd>,
}

impl CompletionTx {
    fn send(&self, c: Completion) {
        if self.tx.send(c).is_ok() {
            self.wakeup.notify();
        }
    }
}

/// Bind and start the service; returns once the listener is live.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let cache = ResultCache::with_capacity(cfg.cache_capacity);
    if let Some(path) = &cfg.cache_file {
        match cache.load(path) {
            Ok(n) if n > 0 => eprintln!("mr2-serve: warmed {n} cache entries from {path:?}"),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("mr2-serve: cache load failed ({path:?}): {e}"),
        }
    }
    let state = Arc::new(State {
        persisted_stamp: AtomicU64::new(cache.mutation_count()),
        cache,
        cfg: cfg.clone(),
        started: Instant::now(),
        queued: AtomicUsize::new(0),
        jobs: Arc::new(crate::jobs::Jobs::default()),
    });
    obs::configure_tracing(cfg.trace_sample_one_in, cfg.trace_slow);
    metrics::workers_total().set(cfg.threads.max(1) as f64);
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Fail fast if the readiness primitives are unavailable: create
    // them here, move them into the event-loop thread.
    let epoll = Epoll::new()?;
    let shutdown_fd = Arc::new(EventFd::new()?);
    let completion_fd = Arc::new(EventFd::new()?);

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
    let done = CompletionTx {
        tx: completion_tx,
        wakeup: Arc::clone(&completion_fd),
    };

    // Worker pool: strictly CPU-bound evaluation, never socket I/O.
    let job_rx = Arc::new(Mutex::new(job_rx));
    for i in 0..cfg.threads.max(1) {
        let job_rx = Arc::clone(&job_rx);
        let state = Arc::clone(&state);
        let done = done.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("mr2-serve-worker-{i}"))
                .spawn(move || loop {
                    let next = job_rx.lock().unwrap().recv();
                    let Ok(job) = next else {
                        break; // event loop gone: drain complete
                    };
                    state.queued.fetch_sub(1, Ordering::SeqCst);
                    metrics::queue_depth().dec();
                    metrics::queue_wait().observe(job.queued_at.elapsed().as_secs_f64());
                    metrics::workers_busy().inc();
                    serve_job(job, &state, &done);
                    metrics::workers_busy().dec();
                })
                .expect("spawn worker"),
        );
    }

    // The event loop: owns the listener and every connection.
    {
        let mut el = EventLoop {
            epoll,
            listener,
            state: Arc::clone(&state),
            job_tx,
            completions: completion_rx,
            completion_fd,
            shutdown_fd: Arc::clone(&shutdown_fd),
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        };
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-eventloop".into())
                .spawn(move || el.run())
                .expect("spawn event loop"),
        );
    }

    // Persistence: snapshot the cache while it keeps growing.
    if state.cfg.cache_file.is_some() {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-persist".into())
                .spawn(move || {
                    let tick = Duration::from_millis(200);
                    let mut elapsed = Duration::ZERO;
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed >= state.cfg.persist_every {
                            elapsed = Duration::ZERO;
                            persist(&state);
                        }
                    }
                })
                .expect("spawn persister"),
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        stop,
        shutdown_fd,
        threads,
    })
}

/// Snapshot the cache if its content changed since the last successful
/// snapshot. The stamp is read *before* saving (a save racing new
/// inserts re-saves on the next tick) and advanced only on success (a
/// failed save stays dirty and retries).
fn persist(state: &State) {
    let Some(path) = &state.cfg.cache_file else {
        return;
    };
    let stamp = state.cache.mutation_count();
    if stamp == state.persisted_stamp.load(Ordering::SeqCst) {
        return;
    }
    match state.cache.save(path) {
        Ok(()) => state.persisted_stamp.store(stamp, Ordering::SeqCst),
        Err(e) => eprintln!("mr2-serve: cache save failed ({path:?}): {e}"),
    }
}

/// Epoll token of the listener fd.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the shutdown eventfd.
const TOKEN_SHUTDOWN: u64 = u64::MAX - 1;
/// Epoll token of the worker-completion eventfd.
const TOKEN_COMPLETION: u64 = u64::MAX - 2;
/// How long one `epoll_wait` may block; bounds deadline-sweep latency.
const TICK_MS: i32 = 50;
/// Read buffer size per readiness event.
const READ_CHUNK: usize = 16 * 1024;

/// Connection state machine states (the `state` label on
/// `mr2_serve_connection_states`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for / reading the next request's header block.
    ReadHead,
    /// Header parsed, body bytes outstanding.
    ReadBody,
    /// Request dispatched; a worker is evaluating it.
    Waiting,
    /// Response bytes buffered, draining to the socket.
    Writing,
    /// A chunked NDJSON sweep is in flight: fragments arrive from the
    /// worker as points complete and drain to the socket as they come.
    Streaming,
    /// Kept alive between requests, nothing buffered either way.
    Idle,
}

fn state_name(s: ConnState) -> &'static str {
    match s {
        ConnState::ReadHead => "read_head",
        ConnState::ReadBody => "read_body",
        ConnState::Waiting => "waiting",
        ConnState::Writing => "writing",
        ConnState::Streaming => "streaming",
        ConnState::Idle => "idle",
    }
}

const ALL_STATES: [ConnState; 6] = [
    ConnState::ReadHead,
    ConnState::ReadBody,
    ConnState::Waiting,
    ConnState::Writing,
    ConnState::Streaming,
    ConnState::Idle,
];

/// One client connection owned by the event loop.
struct Connection {
    stream: TcpStream,
    parser: RequestParser,
    state: ConnState,
    state_since: Instant,
    /// Guards worker completions against slot reuse: a completion whose
    /// generation doesn't match the slot's current occupant is stale.
    generation: u64,
    /// Pending output (rendered responses / stream fragments).
    out: Vec<u8>,
    out_pos: usize,
    /// Requests served on this connection (keep-alive cap).
    served: usize,
    /// Close once `out` drains (protocol error, `Connection: close`,
    /// keep-alive cap, or peer EOF).
    close_after_write: bool,
    /// Read side saw EOF; stop reading, finish writing, then close.
    peer_closed: bool,
    /// Inactivity deadline; `None` while a worker owns the request.
    deadline: Option<Instant>,
    /// Currently registered epoll interest (EV_* bits).
    interest: u32,
}

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    state: Arc<State>,
    job_tx: mpsc::Sender<Job>,
    completions: mpsc::Receiver<Completion>,
    completion_fd: Arc<EventFd>,
    shutdown_fd: Arc<EventFd>,
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_generation: u64,
}

impl EventLoop {
    fn run(&mut self) {
        if self
            .epoll
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, EV_READ)
            .and_then(|()| {
                self.epoll
                    .add(self.shutdown_fd.raw(), TOKEN_SHUTDOWN, EV_READ)
            })
            .and_then(|()| {
                self.epoll
                    .add(self.completion_fd.raw(), TOKEN_COMPLETION, EV_READ)
            })
            .is_err()
        {
            eprintln!("mr2-serve: event loop registration failed; not serving");
            return;
        }
        // Touch every state series so a scrape sees the full family
        // from the first request on.
        for s in ALL_STATES {
            metrics::conn_state(state_name(s)).add(0.0);
        }
        let stall_budget = self.state.cfg.loop_stall_budget;
        'events: loop {
            let wait_started = Instant::now();
            let Ok(events) = self.epoll.wait(TICK_MS) else {
                break;
            };
            metrics::loop_wait().observe(wait_started.elapsed().as_secs_f64());
            let work_started = Instant::now();
            let dispatched = events.len();
            for ev in events {
                match ev.token {
                    TOKEN_SHUTDOWN => break 'events,
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_COMPLETION => self.drain_completions(),
                    slot => self.conn_event(slot as usize, ev),
                }
            }
            self.sweep_deadlines();
            let worked = work_started.elapsed();
            metrics::loop_work().observe(worked.as_secs_f64());
            metrics::loop_iterations().inc();
            if !stall_budget.is_zero() && worked > stall_budget {
                metrics::loop_stalls().inc();
                eprintln!(
                    "mr2-serve: event-loop stall: {:.1}ms work (budget {:.0}ms), \
                     {dispatched} events, conns {}",
                    worked.as_secs_f64() * 1e3,
                    stall_budget.as_secs_f64() * 1e3,
                    self.conn_state_summary(),
                );
            }
        }
        for slot in 0..self.conns.len() {
            self.close_slot(slot);
        }
        // Dropping `job_tx` (with self at thread exit) lets the workers
        // drain and exit; `shutdown` joins them after this thread.
    }

    /// `state=count` pairs for every open connection, for the stall
    /// watchdog's log line (e.g. `waiting=3 streaming=1`).
    fn conn_state_summary(&self) -> String {
        let mut counts = [0usize; ALL_STATES.len()];
        for conn in self.conns.iter().flatten() {
            if let Some(i) = ALL_STATES.iter().position(|s| *s == conn.state) {
                counts[i] += 1;
            }
        }
        let parts: Vec<String> = ALL_STATES
            .iter()
            .zip(counts)
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| format!("{}={n}", state_name(*s)))
            .collect();
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join(" ")
        }
    }

    /// Accept everything the backlog holds; shed with an immediate 503
    /// when the job queue is over the bound.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    if self.state.queued.load(Ordering::SeqCst) >= self.state.cfg.max_queue {
                        metrics::shed().inc();
                        let err = ApiError::backpressure();
                        let bytes = render_response(
                            err.status,
                            &err.body(),
                            CONTENT_TYPE_JSON,
                            true,
                            &[("Retry-After", "1")],
                        );
                        // Best-effort: a fresh socket's send buffer is
                        // empty, so this lands in one write.
                        let _ = (&stream).write_all(&bytes);
                        continue; // drop = close
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let fd = stream.as_raw_fd();
        if self.epoll.add(fd, slot as u64, EV_READ).is_err() {
            self.free.push(slot);
            return;
        }
        self.next_generation += 1;
        let now = Instant::now();
        self.conns[slot] = Some(Connection {
            stream,
            parser: RequestParser::new(),
            state: ConnState::ReadHead,
            state_since: now,
            generation: self.next_generation,
            out: Vec::new(),
            out_pos: 0,
            served: 0,
            close_after_write: false,
            peer_closed: false,
            deadline: Some(now + self.state.cfg.request_timeout),
            interest: EV_READ,
        });
        metrics::open_connections().inc();
        metrics::conn_state(state_name(ConnState::ReadHead)).inc();
    }

    fn close_slot(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        metrics::conn_state(state_name(conn.state)).dec();
        metrics::conn_state_seconds(state_name(conn.state))
            .observe(conn.state_since.elapsed().as_secs_f64());
        metrics::open_connections().dec();
        self.free.push(slot);
        // `conn.stream` drops here, closing the fd.
    }

    /// Record a state transition on the per-state gauges/histograms.
    fn enter(&mut self, slot: usize, new: ConnState) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.state == new {
            return;
        }
        metrics::conn_state(state_name(conn.state)).dec();
        metrics::conn_state_seconds(state_name(conn.state))
            .observe(conn.state_since.elapsed().as_secs_f64());
        metrics::conn_state(state_name(new)).inc();
        conn.state = new;
        conn.state_since = Instant::now();
    }

    /// Readiness on a connection: pull bytes, then make progress.
    fn conn_event(&mut self, slot: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if ev.readable() && !conn.peer_closed {
            let mut scratch = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.feed(&scratch[..n]);
                        if n < scratch.len() {
                            break; // drained; level-triggered epoll re-reports otherwise
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close_slot(slot);
                        return;
                    }
                }
            }
        }
        self.progress(slot);
    }

    /// Drive one connection as far as it can go right now: parse and
    /// answer/dispatch buffered requests, drain output, then settle
    /// into the resting state (deadline + epoll interest).
    fn progress(&mut self, slot: usize) {
        self.advance_parser(slot);
        if !self.flush(slot) {
            return; // closed on write error
        }
        self.settle(slot);
    }

    /// Parse every complete buffered request, answering inline or
    /// dispatching to the pool, until input runs dry, a worker takes
    /// over, or the connection is marked for close. Pipelined requests
    /// are answered strictly in order: responses append to `out` as
    /// requests complete, and parsing halts while a worker owns one.
    fn advance_parser(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if matches!(conn.state, ConnState::Waiting | ConnState::Streaming)
                || conn.close_after_write
            {
                return;
            }
            match conn.parser.try_next() {
                Err(HttpError { status, message }) => {
                    // Protocol errors poison the framing; always close.
                    let err = ApiError::from_status(status, message);
                    let bytes =
                        render_response(err.status, &err.body(), CONTENT_TYPE_JSON, true, &[]);
                    conn.out.extend_from_slice(&bytes);
                    conn.close_after_write = true;
                    return;
                }
                Ok(None) => {
                    if conn.parser.take_continue() {
                        conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                    }
                    return;
                }
                Ok(Some(req)) => self.handle_request(slot, req),
            }
        }
    }

    /// Answer or dispatch one parsed request.
    fn handle_request(&mut self, slot: usize, req: Request) {
        let max_requests = self.state.cfg.keep_alive_requests.max(1);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.served += 1;
        let close = !req.keep_alive || conn.served >= max_requests;
        if close {
            // Stop parsing past this request; the response carries
            // `Connection: close` and the drain closes the socket.
            conn.close_after_write = true;
        }
        let generation = conn.generation;

        if !authorized(&req, &self.state.cfg) {
            let resp = Response::error(ApiError::unauthorized());
            self.respond_inline(slot, &req, resp, close, &[]);
            return;
        }

        let endpoint = ROUTES
            .iter()
            .find(|(m, p, _)| *m == req.method && *p == req.path)
            .map(|&(_, _, e)| e);
        match endpoint {
            Some(endpoint @ (Endpoint::Estimate | Endpoint::Scenario | Endpoint::Plan)) => {
                if self.state.queued.load(Ordering::SeqCst) >= self.state.cfg.max_queue {
                    metrics::shed().inc();
                    let resp = Response::error(ApiError::backpressure());
                    self.respond_inline(slot, &req, resp, close, &[("Retry-After", "1")]);
                    return;
                }
                self.state.queued.fetch_add(1, Ordering::SeqCst);
                metrics::queue_depth().inc();
                let job = Job {
                    slot,
                    generation,
                    endpoint,
                    req,
                    close,
                    queued_at: Instant::now(),
                };
                if self.job_tx.send(job).is_err() {
                    // Workers gone (shutdown underway).
                    self.state.queued.fetch_sub(1, Ordering::SeqCst);
                    metrics::queue_depth().dec();
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        conn.close_after_write = true;
                    }
                    return;
                }
                self.enter(slot, ConnState::Waiting);
            }
            // Cheap GET routes, 404s, and 405s are answered inline on
            // the loop — no queue round-trip.
            _ => {
                let request_id = obs::next_request_id();
                let started = Instant::now();
                let resp = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    route(&req, &self.state, request_id)
                }))
                .unwrap_or_else(|_| {
                    let _ = obs::end_trace();
                    Response::error(ApiError::internal("internal error: evaluation panicked"))
                });
                finish_request(&req, &resp, request_id, started, &self.state);
                self.append_response(slot, resp, close, &[]);
            }
        }
    }

    /// Instrument and buffer an inline (non-worker) response.
    fn respond_inline(
        &mut self,
        slot: usize,
        req: &Request,
        resp: Response,
        close: bool,
        extra_headers: &[(&str, &str)],
    ) {
        finish_request(
            req,
            &resp,
            obs::next_request_id(),
            Instant::now(),
            &self.state,
        );
        self.append_response(slot, resp, close, extra_headers);
    }

    fn append_response(
        &mut self,
        slot: usize,
        resp: Response,
        close: bool,
        extra_headers: &[(&str, &str)],
    ) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            let bytes = render_response(
                resp.status,
                &resp.body,
                resp.content_type,
                close,
                extra_headers,
            );
            conn.out.extend_from_slice(&bytes);
        }
    }

    /// Drain the connection's output buffer as far as the socket
    /// accepts. Returns `false` when the connection was closed (write
    /// error / peer reset).
    fn flush(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return false;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_slot(slot);
                    return false;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_slot(slot);
                    return false;
                }
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        true
    }

    /// Put a connection to rest after activity: close it if it's done,
    /// otherwise pick its state, inactivity deadline, and epoll
    /// interest. Deadlines measure inactivity — any read/write progress
    /// re-arms them.
    fn settle(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let drained = conn.out.is_empty();
        let busy = matches!(conn.state, ConnState::Waiting | ConnState::Streaming);
        if drained && !busy && (conn.close_after_write || conn.peer_closed) {
            self.close_slot(slot);
            return;
        }
        let new_state = if busy {
            conn.state
        } else if !drained {
            ConnState::Writing
        } else if conn.parser.in_body() {
            ConnState::ReadBody
        } else if conn.parser.mid_request() || conn.served == 0 {
            ConnState::ReadHead
        } else {
            ConnState::Idle
        };
        self.enter(slot, new_state);
        let cfg = &self.state.cfg;
        let (keep_alive_idle, request_timeout) = (cfg.keep_alive_idle, cfg.request_timeout);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.deadline = match new_state {
            // The evaluation's duration is the worker's business, and a
            // streaming sweep produces chunks at its own pace.
            ConnState::Waiting | ConnState::Streaming if drained => None,
            ConnState::Idle => Some(Instant::now() + keep_alive_idle),
            _ => Some(Instant::now() + request_timeout),
        };
        let mut interest = 0;
        if !conn.peer_closed {
            interest |= EV_READ;
        }
        if !drained {
            interest |= EV_WRITE;
        }
        if interest != conn.interest {
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, slot as u64, interest);
            conn.interest = interest;
        }
    }

    /// Apply worker completions: append rendered bytes to the right
    /// connection (dropping stale generations) and make progress.
    fn drain_completions(&mut self) {
        self.completion_fd.drain();
        while let Ok(c) = self.completions.try_recv() {
            let (slot, generation) = c.ids();
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                continue; // connection closed while the worker ran
            };
            if conn.generation != generation {
                continue; // slot reused; response belongs to a dead conn
            }
            match c {
                Completion::Done { bytes, close, .. } | Completion::End { bytes, close, .. } => {
                    conn.out.extend_from_slice(&bytes);
                    if close {
                        conn.close_after_write = true;
                    }
                    self.enter(slot, ConnState::Writing);
                }
                Completion::Chunk { bytes, .. } => {
                    conn.out.extend_from_slice(&bytes);
                    self.enter(slot, ConnState::Streaming);
                }
            }
            // `Writing` re-opens the parser: pipelined requests queued
            // behind the finished one are answered now, in order.
            self.progress(slot);
        }
    }

    /// Close connections whose inactivity deadline expired (slow-loris
    /// headers, stalled bodies, idle keep-alives, wedged writes).
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let expired = self.conns[slot]
                .as_ref()
                .and_then(|c| c.deadline)
                .is_some_and(|d| now >= d);
            if expired {
                self.close_slot(slot);
            }
        }
    }
}

/// Bearer-token check: `/v1/*` routes require the configured token;
/// `/healthz` and `/metrics` stay open (liveness probes and scrapes
/// shouldn't need secrets). The scheme is case-insensitive, the token
/// itself is not.
fn authorized(req: &Request, cfg: &ServeConfig) -> bool {
    let Some(token) = &cfg.token else {
        return true;
    };
    if !req.path.starts_with("/v1/") {
        return true;
    }
    let Some(auth) = &req.authorization else {
        return false;
    };
    match auth.split_once(' ') {
        Some((scheme, value)) => scheme.eq_ignore_ascii_case("bearer") && value.trim() == token,
        None => false,
    }
}

/// Per-request bookkeeping shared by the inline and worker paths:
/// route metrics, the request-served aggregate, and the access log.
fn finish_request(
    req: &Request,
    resp: &Response,
    request_id: u64,
    started: Instant,
    state: &State,
) {
    let latency = started.elapsed();
    let path = canonical_path(&req.path);
    metrics::requests(&req.method, path, resp.status).inc();
    metrics::latency(path).observe(latency.as_secs_f64());
    metrics::requests_served().inc();
    if state.cfg.access_log {
        eprintln!(
            "mr2-serve: request id={request_id} method={} path={} status={} bytes={} micros={}",
            req.method,
            req.path,
            resp.status,
            resp.body.len(),
            latency.as_micros(),
        );
    }
}

/// Evaluate one dispatched request on a worker thread and hand the
/// rendered response (or stream fragments) back to the event loop.
fn serve_job(job: Job, state: &State, done: &CompletionTx) {
    let request_id = obs::next_request_id();
    let started = Instant::now();

    // `"stream": true` scenarios take the chunked NDJSON path; every
    // other request — including scenario parse errors, which re-parse
    // below — is a single rendered response, byte-identical to the
    // blocking server's.
    if job.endpoint == Endpoint::Scenario {
        if let Ok(r) = std::str::from_utf8(&job.req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(api::parse_scenario_request)
        {
            if r.stream {
                return stream_scenario(job, r, state, done, request_id, started);
            }
        }
    }

    let resp = std::panic::catch_unwind(AssertUnwindSafe(|| route(&job.req, state, request_id)))
        .unwrap_or_else(|_| {
            // A panicked debug request may strand its thread-local
            // trace; clear it so later requests start clean.
            let _ = obs::end_trace();
            Response::error(ApiError::internal("internal error: evaluation panicked"))
        });
    finish_request(&job.req, &resp, request_id, started, state);
    let bytes = render_response(resp.status, &resp.body, resp.content_type, job.close, &[]);
    done.send(Completion::Done {
        slot: job.slot,
        generation: job.generation,
        bytes,
        close: job.close,
    });
}

/// Run a `"stream": true` scenario: validation errors are ordinary
/// one-shot responses; past validation, the response head goes out
/// immediately and every completed point follows as its own NDJSON
/// chunk, with the error-band summary as the tail line. The `debug`
/// trace breakdown only applies to non-streaming replies (there is no
/// single reply object to attach it to).
fn stream_scenario(
    job: Job,
    r: api::ScenarioRequest,
    state: &State,
    done: &CompletionTx,
    request_id: u64,
    started: Instant,
) {
    let scenario = &r.scenario;
    if let Some(resp) = scenario_bounds_error(scenario, state) {
        finish_request(&job.req, &resp, request_id, started, state);
        let bytes = render_response(resp.status, &resp.body, resp.content_type, job.close, &[]);
        done.send(Completion::Done {
            slot: job.slot,
            generation: job.generation,
            bytes,
            close: job.close,
        });
        return;
    }

    done.send(Completion::Chunk {
        slot: job.slot,
        generation: job.generation,
        bytes: render_stream_head(200, CONTENT_TYPE_NDJSON, job.close),
    });
    // The stream traces like any other request (visible in
    // /v1/trace/recent when retained) and registers with the jobs
    // registry so /v1/jobs shows its progress while chunks flow.
    let traced = obs::begin_trace(request_id, "/v1/scenario");
    let progress = state.jobs.register(
        request_id,
        scenario.name.clone(),
        scenario.num_points(),
        true,
    );
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let _root = obs::span("serve.request");
        let _run = obs::span("scenario.run");
        run_scenario_streaming(
            scenario,
            &state.cache,
            &state.cfg.runner,
            &|pr: PointResult| {
                progress.point_done(&pr);
                let mut line = api::point_json(&pr).render();
                line.push('\n');
                done.send(Completion::Chunk {
                    slot: job.slot,
                    generation: job.generation,
                    bytes: chunk(line.as_bytes()),
                });
            },
        )
    }));
    drop(progress);
    if traced {
        let _ = obs::finish_trace();
    }
    let (mut tail_line, status, close) = match &result {
        Ok(sweep) => (api::sweep_tail_json(sweep).render(), 200, job.close),
        // The head (a 200) is on the wire; all that's left is to make
        // the failure explicit in-band and close.
        Err(_) => (
            ApiError::internal("internal error: evaluation panicked").body(),
            200,
            true,
        ),
    };
    tail_line.push('\n');
    let mut bytes = chunk(tail_line.as_bytes());
    bytes.extend_from_slice(CHUNKED_END);
    let resp = Response {
        status,
        body: tail_line,
        content_type: CONTENT_TYPE_NDJSON,
    };
    finish_request(&job.req, &resp, request_id, started, state);
    done.send(Completion::End {
        slot: job.slot,
        generation: job.generation,
        bytes,
        close,
    });
}

/// A routed response: status, body, and the body's content type
/// (everything but `/metrics` is JSON).
struct Response {
    status: u16,
    body: String,
    content_type: &'static str,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: CONTENT_TYPE_JSON,
        }
    }

    /// Render an [`ApiError`] as the unified error envelope.
    fn error(err: ApiError) -> Response {
        Response::json(err.status, err.body())
    }

    /// Render a success reply, stamping the versioned envelope fields
    /// (`api_version`, plus `deprecations` when the request leaned on
    /// deprecated fields) onto the body first.
    fn ok(mut body: Json, deprecations: &[&'static str]) -> Response {
        api::stamp_reply(&mut body, deprecations);
        Response::json(200, body.render())
    }
}

fn jobs_bound_error(jobs: usize, state: &State) -> ApiError {
    ApiError::validation(format!(
        "workload mix carries {jobs} concurrent jobs, above the service bound of {}",
        state.cfg.max_jobs_per_point
    ))
}

/// The scenario-level resource bounds shared by the streaming and
/// non-streaming paths.
fn scenario_bounds_error(scenario: &mr2_scenario::Scenario, state: &State) -> Option<Response> {
    let n = scenario.num_points();
    if n > state.cfg.max_points {
        return Some(Response::error(ApiError::validation(format!(
            "scenario expands to {n} points, above the service bound of {}",
            state.cfg.max_points
        ))));
    }
    // `max_points` bounds the axis product; each mix value must also
    // keep its job total within the per-point bound.
    scenario
        .workload_values()
        .iter()
        .map(|m| m.total_jobs())
        .find(|&jobs| jobs > state.cfg.max_jobs_per_point)
        .map(|jobs| Response::error(jobs_bound_error(jobs, state)))
}

/// The service's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Healthz,
    Metrics,
    CacheStats,
    TraceRecent,
    JobsList,
    Profile,
    Estimate,
    Scenario,
    Plan,
}

/// The route table: dispatch, the 405 fallback, and the metric path
/// labels all read these rows, so adding an endpoint is one new row
/// (replacing the hand-maintained 405 path list that had to be kept in
/// sync with the dispatch match).
const ROUTES: &[(&str, &str, Endpoint)] = &[
    ("GET", "/healthz", Endpoint::Healthz),
    ("GET", "/metrics", Endpoint::Metrics),
    ("GET", "/v1/cache/stats", Endpoint::CacheStats),
    ("GET", "/v1/trace/recent", Endpoint::TraceRecent),
    ("GET", "/v1/jobs", Endpoint::JobsList),
    ("GET", "/debug/profile", Endpoint::Profile),
    ("POST", "/v1/estimate", Endpoint::Estimate),
    ("POST", "/v1/scenario", Endpoint::Scenario),
    ("POST", "/v1/plan", Endpoint::Plan),
];

/// The canonical route path used as the metric label — known paths
/// stay themselves, everything else collapses to `other` so a client
/// probing random paths can't mint unbounded label values.
fn canonical_path(path: &str) -> &'static str {
    ROUTES
        .iter()
        .find(|(_, p, _)| *p == path)
        .map(|&(_, p, _)| p)
        .unwrap_or("other")
}

fn route(req: &Request, state: &State, request_id: u64) -> Response {
    let hit = ROUTES
        .iter()
        .find(|(m, p, _)| *m == req.method && *p == req.path);
    let Some(&(_, _, endpoint)) = hit else {
        // Same path under another method is a 405, unknown path a 404.
        return if ROUTES.iter().any(|(_, p, _)| *p == req.path) {
            Response::error(ApiError::method_not_allowed())
        } else {
            Response::error(ApiError::not_found())
        };
    };
    match endpoint {
        Endpoint::Healthz => Response::ok(
            Json::obj([
                ("status", Json::str("ok")),
                (
                    "uptime_secs",
                    Json::num(state.started.elapsed().as_secs_f64()),
                ),
                ("requests_total", metrics::requests_served().value().into()),
            ]),
            &[],
        ),
        Endpoint::Metrics => metrics_response(state),
        Endpoint::CacheStats => Response::ok(api::cache_stats_json(&state.cache.stats()), &[]),
        Endpoint::TraceRecent => trace_recent_response(req),
        Endpoint::JobsList => Response::ok(api::jobs_json(&state.jobs.snapshot()), &[]),
        Endpoint::Profile => profile_response(req),
        Endpoint::Estimate => estimate_response(req, state, request_id),
        Endpoint::Scenario => scenario_response(req, state, request_id),
        Endpoint::Plan => plan_response(req, state, request_id),
    }
}

/// Render the process registry, refreshing the scrape-time gauges
/// (uptime, cache entries, hit ratio) first. The cache's monotonic
/// counters are incremented live by the cache itself.
fn metrics_response(state: &State) -> Response {
    metrics::uptime().set(state.started.elapsed().as_secs_f64());
    let stats = state.cache.stats();
    metrics::cache_entries().set(stats.entries as f64);
    metrics::cache_hit_ratio().set(api::hit_ratio(&stats));
    Response {
        status: 200,
        body: obs::render(),
        content_type: CONTENT_TYPE_METRICS,
    }
}

/// `GET /v1/trace/recent` — retained request traces as span trees.
/// With `?id=<request_id>` returns just the matching trace (an empty
/// list when it wasn't retained — still a 200, absence is an answer);
/// without it, the sampling knobs, the newest retained traces, and the
/// all-time slowest.
fn trace_recent_response(req: &Request) -> Response {
    if let Some(id) = req.query_param("id") {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(ApiError::validation("`id` must be an unsigned integer"));
        };
        let traces: Vec<Json> = obs::find_trace(id)
            .iter()
            .map(|t| api::trace_json(t))
            .collect();
        return Response::ok(Json::obj([("traces", Json::Arr(traces))]), &[]);
    }
    let (one_in, slow) = obs::tracing_config();
    let render = |traces: Vec<std::sync::Arc<obs::Trace>>| {
        Json::Arr(traces.iter().map(|t| api::trace_json(t)).collect())
    };
    Response::ok(
        Json::obj([
            (
                "sampling",
                Json::obj([
                    ("one_in", one_in.into()),
                    ("slow_ms", Json::num(slow.as_secs_f64() * 1e3)),
                ]),
            ),
            ("recent", render(obs::recent_traces(16))),
            ("slowest", render(obs::slowest_traces())),
        ]),
        &[],
    )
}

/// `GET /debug/profile` — the span-path continuous profiler. The
/// default render is collapsed-stack lines (`a;b;c <self_micros>`)
/// that pipe straight into `flamegraph.pl`; `?format=json` renders the
/// merged call tree instead, and `?reset=1` clears the aggregate.
fn profile_response(req: &Request) -> Response {
    if req.query_param("reset") == Some("1") {
        obs::profile::reset();
        return Response {
            status: 200,
            body: "profile reset\n".into(),
            content_type: CONTENT_TYPE_TEXT,
        };
    }
    if req.query_param("format") == Some("json") {
        let forest = obs::profile::tree();
        return Response::ok(Json::obj([("profile", api::profile_json(&forest))]), &[]);
    }
    Response {
        status: 200,
        body: obs::profile::render_collapsed(),
        content_type: CONTENT_TYPE_TEXT,
    }
}

/// Insert the trace breakdown into a reply object under `"debug"`.
fn attach_debug(body: &mut Json, trace: &obs::Trace) {
    if let Json::Obj(map) = body {
        map.insert("debug".into(), api::debug_json(trace));
    }
}

fn estimate_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_estimate_request)
    {
        Ok(r) => {
            let jobs = r.point.total_jobs();
            if jobs > state.cfg.max_jobs_per_point {
                return Response::error(jobs_bound_error(jobs, state));
            }
            // Every evaluation runs under a trace context (retention
            // decides what survives); the root serve.request span
            // nests the evaluation spans (point.model, point.sim) and
            // the encode span into the breakdown tree.
            let traced = obs::begin_trace(request_id, "/v1/estimate");
            let mut body = {
                let _root = obs::span("serve.request");
                let result: PointResult = evaluate_point(&r.point, &r.backends, &state.cache);
                let _enc = obs::span("response.encode");
                api::point_json(&result)
            };
            if let Some(trace) = traced.then(obs::finish_trace).flatten() {
                if r.debug {
                    attach_debug(&mut body, &trace);
                }
            }
            Response::ok(body, &r.deprecations)
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}

fn scenario_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_scenario_request)
    {
        Ok(r) => {
            let scenario = &r.scenario;
            if let Some(resp) = scenario_bounds_error(scenario, state) {
                return resp;
            }
            // The sweep's own point spans run on the runner's pool
            // threads, which deliberately don't inherit the trace; the
            // breakdown shows the sequential phases this thread saw.
            // The sweep also registers with the jobs registry so
            // GET /v1/jobs can watch its progress mid-flight.
            let traced = obs::begin_trace(request_id, "/v1/scenario");
            let mut body = {
                let _root = obs::span("serve.request");
                let progress = state.jobs.register(
                    request_id,
                    scenario.name.clone(),
                    scenario.num_points(),
                    false,
                );
                let sweep = {
                    let _run = obs::span("scenario.run");
                    run_scenario_streaming(scenario, &state.cache, &state.cfg.runner, &|pr| {
                        progress.point_done(&pr)
                    })
                };
                drop(progress);
                let _enc = obs::span("response.encode");
                api::sweep_json(&sweep)
            };
            if let Some(trace) = traced.then(obs::finish_trace).flatten() {
                if r.debug {
                    attach_debug(&mut body, &trace);
                }
            }
            Response::ok(body, &[])
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}

fn plan_response(req: &Request, state: &State, request_id: u64) -> Response {
    match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(api::parse_plan_request)
    {
        Ok(r) => {
            let jobs = r.plan.mix.total_jobs();
            if jobs > state.cfg.max_jobs_per_point {
                return Response::error(jobs_bound_error(jobs, state));
            }
            // Each bisection probe is a cached analytic point
            // evaluation; under the trace the probes show up inside
            // the plan.solve span.
            let traced = obs::begin_trace(request_id, "/v1/plan");
            let root = obs::span("serve.request");
            let result = {
                let _solve = obs::span("plan.solve");
                mr2_scenario::plan(&r.plan, &state.cache)
            };
            match result {
                Ok(result) => {
                    let mut body = {
                        let _enc = obs::span("response.encode");
                        api::plan_json(&r.plan, &result)
                    };
                    drop(root);
                    if let Some(trace) = traced.then(obs::finish_trace).flatten() {
                        if r.debug {
                            attach_debug(&mut body, &trace);
                        }
                    }
                    Response::ok(body, &r.deprecations)
                }
                Err(e) => {
                    drop(root);
                    if traced {
                        let _ = obs::finish_trace();
                    }
                    Response::error(ApiError::validation(e))
                }
            }
        }
        Err(e) => Response::error(ApiError::from_parse(e)),
    }
}
