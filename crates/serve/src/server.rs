//! The long-running service: a `TcpListener` accept loop feeding a
//! fixed pool of worker threads, routing to the scenario engine with
//! the shared [`ResultCache`] as state, plus a persistence thread that
//! periodically snapshots the cache to disk.
//!
//! Endpoints:
//!
//! | method | path | body | answer |
//! |---|---|---|---|
//! | `GET`  | `/healthz` | — | liveness + uptime |
//! | `GET`  | `/v1/cache/stats` | — | shared-cache counters |
//! | `POST` | `/v1/estimate` | point spec | one evaluated point |
//! | `POST` | `/v1/scenario` | scenario spec | full sweep + error bands |
//!
//! Concurrent identical queries cost one evaluation: the cache
//! coalesces in-flight computations, so a thundering herd of the same
//! what-if question does the model solve (or simulator run) once and
//! fans the record out.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mr2_scenario::{evaluate_point, run_scenario, PointResult, ResultCache, RunnerConfig};

use crate::api;
use crate::http::{write_response, Conn, HttpError, Request};
use crate::json::Json;

/// Socket read/write budget while a request or response is in flight
/// (the keep-alive *idle* wait between requests is configured
/// separately, [`ServeConfig::keep_alive_idle`]).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks one).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Shared-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Upper bound on points a single `/v1/scenario` may expand to.
    pub max_points: usize,
    /// Upper bound on concurrent jobs one point's workload mix may
    /// carry (entry counts sum). `max_points` bounds the axis product
    /// only; without this a single `{"count": 10^12}` entry would make
    /// one evaluation allocate per-job state until the process dies.
    pub max_jobs_per_point: usize,
    /// Snapshot the cache here (loaded at startup when present).
    pub cache_file: Option<PathBuf>,
    /// How often the persistence thread snapshots a dirty cache.
    pub persist_every: Duration,
    /// Requests served per kept-alive connection before the service
    /// closes it (bounds how long one client can pin a worker; 0 is
    /// treated as 1).
    pub keep_alive_requests: usize,
    /// How long an idle kept-alive connection may sit between requests
    /// before the service closes it.
    pub keep_alive_idle: Duration,
    /// Runner knobs for scenario sweeps (worker-thread count of the
    /// *evaluation* pool, not the HTTP pool).
    pub runner: RunnerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            threads: 4,
            cache_capacity: 65_536,
            max_points: 4_096,
            max_jobs_per_point: 256,
            cache_file: None,
            persist_every: Duration::from_secs(30),
            keep_alive_requests: 32,
            keep_alive_idle: Duration::from_secs(5),
            runner: RunnerConfig::default(),
        }
    }
}

/// Shared state of all workers.
struct State {
    cache: ResultCache,
    cfg: ServeConfig,
    started: Instant,
    /// Cache mutation stamp at the last successful snapshot, so clean
    /// caches aren't rewritten. The *count* would go stale once the LRU
    /// bound makes insert+evict churn under a constant entry count.
    persisted_stamp: AtomicU64,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Stop accepting, drain the workers, snapshot the cache one last
    /// time, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        persist(&self.state);
    }

    /// The shared cache's counters (for tests and embedding).
    pub fn cache_stats(&self) -> mr2_scenario::CacheStats {
        self.state.cache.stats()
    }
}

/// Bind and start the service; returns once the listener is live.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    let cache = ResultCache::with_capacity(cfg.cache_capacity);
    if let Some(path) = &cfg.cache_file {
        match cache.load(path) {
            Ok(n) if n > 0 => eprintln!("mr2-serve: warmed {n} cache entries from {path:?}"),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!("mr2-serve: cache load failed ({path:?}): {e}"),
        }
    }
    let state = Arc::new(State {
        persisted_stamp: AtomicU64::new(cache.mutation_count()),
        cache,
        cfg: cfg.clone(),
        started: Instant::now(),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Fixed worker pool over one shared receiver.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..cfg.threads.max(1) {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name(format!("mr2-serve-worker-{i}"))
                .spawn(move || loop {
                    let next = rx.lock().unwrap().recv();
                    match next {
                        Ok(stream) => handle_connection(stream, &state),
                        Err(_) => break, // acceptor gone: drain complete
                    }
                })
                .expect("spawn worker"),
        );
    }

    // Acceptor: hands sockets to the pool until shutdown.
    {
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            // Slow or stalled clients time out instead of
                            // pinning a worker forever.
                            let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
                            let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                    // Dropping `tx` here lets the workers drain and exit.
                })
                .expect("spawn acceptor"),
        );
    }

    // Persistence: snapshot the cache while it keeps growing.
    if state.cfg.cache_file.is_some() {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("mr2-serve-persist".into())
                .spawn(move || {
                    let tick = Duration::from_millis(200);
                    let mut elapsed = Duration::ZERO;
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        elapsed += tick;
                        if elapsed >= state.cfg.persist_every {
                            elapsed = Duration::ZERO;
                            persist(&state);
                        }
                    }
                })
                .expect("spawn persister"),
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        stop,
        threads,
    })
}

/// Snapshot the cache if its content changed since the last successful
/// snapshot. The stamp is read *before* saving (a save racing new
/// inserts re-saves on the next tick) and advanced only on success (a
/// failed save stays dirty and retries).
fn persist(state: &State) {
    let Some(path) = &state.cfg.cache_file else {
        return;
    };
    let stamp = state.cache.mutation_count();
    if stamp == state.persisted_stamp.load(Ordering::SeqCst) {
        return;
    }
    match state.cache.save(path) {
        Ok(()) => state.persisted_stamp.store(stamp, Ordering::SeqCst),
        Err(e) => eprintln!("mr2-serve: cache save failed ({path:?}): {e}"),
    }
}

/// Serve one connection: up to `keep_alive_requests` requests when the
/// client asks for keep-alive, closing on protocol errors, an explicit
/// `Connection: close`, the request cap, or `keep_alive_idle` of
/// silence between requests.
fn handle_connection(stream: TcpStream, state: &State) {
    let max_requests = state.cfg.keep_alive_requests.max(1);
    let mut conn = Conn::new(stream);
    for served in 0..max_requests {
        if served > 0 {
            // Between requests the socket waits at most the idle
            // timeout; once the next request's first bytes arrive, the
            // longer per-request timeout is restored so a slow body
            // upload on a reused connection gets the same budget as on
            // a fresh one.
            let _ = conn
                .get_ref()
                .set_read_timeout(Some(state.cfg.keep_alive_idle));
            let pending = conn.await_request();
            let _ = conn.get_ref().set_read_timeout(Some(REQUEST_TIMEOUT));
            if !pending {
                return;
            }
        }
        let (status, body, close) = match conn.read_request() {
            Ok(Some(req)) => {
                // A panicking evaluation must cost a 500, not a worker.
                let (status, body) =
                    std::panic::catch_unwind(AssertUnwindSafe(|| route(&req, state)))
                        .unwrap_or_else(|_| {
                            (500, error_json("internal error: evaluation panicked"))
                        });
                (status, body, !req.keep_alive || served + 1 == max_requests)
            }
            // Client closed (or idled out) between requests.
            Ok(None) => return,
            // Protocol errors poison the framing; always close.
            Err(HttpError { status, message }) => (status, error_json(&message), true),
        };
        if write_response(conn.stream_mut(), status, &body, close).is_err() || close {
            return;
        }
    }
}

fn error_json(message: &str) -> String {
    Json::obj([("error", Json::str(message))]).render()
}

fn jobs_bound_message(jobs: usize, state: &State) -> String {
    format!(
        "workload mix carries {jobs} concurrent jobs, above the service bound of {}",
        state.cfg.max_jobs_per_point
    )
}

fn route(req: &Request, state: &State) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            Json::obj([
                ("status", Json::str("ok")),
                (
                    "uptime_secs",
                    Json::num(state.started.elapsed().as_secs_f64()),
                ),
            ])
            .render(),
        ),
        ("GET", "/v1/cache/stats") => (200, api::cache_stats_json(&state.cache.stats()).render()),
        ("POST", "/v1/estimate") => match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(api::parse_estimate_request)
        {
            Ok(r) => {
                let jobs = r.point.total_jobs();
                if jobs > state.cfg.max_jobs_per_point {
                    return (400, error_json(&jobs_bound_message(jobs, state)));
                }
                let result: PointResult = evaluate_point(&r.point, &r.backends, &state.cache);
                (200, api::point_json(&result).render())
            }
            Err(e) => (400, error_json(&e)),
        },
        ("POST", "/v1/scenario") => match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(api::parse_scenario_request)
        {
            Ok(scenario) => {
                let n = scenario.num_points();
                if n > state.cfg.max_points {
                    return (
                        400,
                        error_json(&format!(
                            "scenario expands to {n} points, above the service bound of {}",
                            state.cfg.max_points
                        )),
                    );
                }
                // `max_points` bounds the axis product; each mix value
                // must also keep its job total within the per-point
                // bound.
                if let Some(jobs) = scenario
                    .workload_values()
                    .iter()
                    .map(|m| m.total_jobs())
                    .find(|&jobs| jobs > state.cfg.max_jobs_per_point)
                {
                    return (400, error_json(&jobs_bound_message(jobs, state)));
                }
                let sweep = run_scenario(&scenario, &state.cache, &state.cfg.runner);
                (200, api::sweep_json(&sweep).render())
            }
            Err(e) => (400, error_json(&e)),
        },
        (_, "/healthz") | (_, "/v1/cache/stats") | (_, "/v1/estimate") | (_, "/v1/scenario") => {
            (405, error_json("method not allowed"))
        }
        _ => (404, error_json("no such endpoint")),
    }
}
