//! End-to-end tests of the capacity-planning service over real TCP:
//! round-trips for every endpoint (including heterogeneous workload
//! mixes), HTTP keep-alive, error statuses, cache persistence across
//! restarts, and the coalescing guarantee — concurrent identical
//! scenario queries cost exactly one underlying evaluation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;

use mr2_serve::{serve, Json, ServeConfig};

/// Send one request on an open connection without closing it.
fn send_request(conn: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
}

/// Read exactly one response off the connection (framed by
/// `Content-Length`, so the socket can stay open); returns
/// (status, body, connection-header value).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {status_line:?}"));
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        String::from_utf8(body).expect("utf-8 body"),
        connection,
    )
}

/// One HTTP/1.1 request over a fresh connection (`Connection: close`);
/// returns (status, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    send_request(&mut conn, method, path, body, true);
    let mut reader = BufReader::new(conn);
    let (status, payload, connection) = read_response(&mut reader);
    assert_eq!(connection, "close", "the service honors Connection: close");
    // And the server actually closes: the stream drains to EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "no bytes past the framed response");
    (status, payload)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 6,
        ..ServeConfig::default()
    }
}

#[test]
fn healthz_and_stats_round_trip() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(handle.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let v = Json::parse(&body).expect("health body is JSON");
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert!(v.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);

    let (status, body) = request(handle.addr, "GET", "/v1/cache/stats", "");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("entries").unwrap().as_u64(), Some(0));
    assert_eq!(
        v.get("schema_version").unwrap().as_u64(),
        Some(mr2_scenario::schema_version())
    );
    handle.shutdown();
}

#[test]
fn estimate_round_trip_matches_direct_evaluation() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":4,"input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let served = v
        .get("model")
        .unwrap()
        .get("fork_join")
        .unwrap()
        .as_f64()
        .unwrap();

    // The same point evaluated directly through the engine.
    let req = r#"{"nodes":4,"input_bytes":268435456,"n_jobs":2}"#;
    let parsed = mr2_serve::api::parse_estimate_request(req).unwrap();
    let direct = mr2_scenario::evaluate_point(
        &parsed.point,
        &parsed.backends,
        &mr2_scenario::ResultCache::new(),
    );
    assert_eq!(
        served.to_bits(),
        direct.model.unwrap().fork_join.to_bits(),
        "served estimate is bit-identical to a direct evaluation"
    );
    assert_eq!(v.get("sim"), Some(&Json::Null), "simulator is opt-in");
    assert!(v.get("estimate").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn scenario_round_trip_reports_points_and_bands() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/scenario",
        r#"{"name":"grow","nodes":[2,3],"input_bytes":[268435456],
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("num_points").unwrap().as_u64(), Some(2));
    let points = v.get("points").unwrap().as_arr().unwrap();
    assert_eq!(points.len(), 2);
    assert_eq!(points[0].get("nodes").unwrap().as_u64(), Some(2));
    assert_eq!(points[1].get("nodes").unwrap().as_u64(), Some(3));
    for p in points {
        assert!(p.get("estimate").unwrap().as_f64().unwrap() > 0.0);
        assert!(p.get("measured").unwrap().as_f64().unwrap() > 0.0);
    }
    assert!(
        !v.get("error_bands").unwrap().as_arr().unwrap().is_empty(),
        "both backends ran, so bands are present"
    );
    handle.shutdown();
}

#[test]
fn arrivals_round_trip_reports_makespans_while_old_requests_decode_unchanged() {
    let handle = serve(test_config()).unwrap();
    // An arrivals-bearing estimate: two staggered jobs, both backends.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456,"n_jobs":2,
            "arrivals":{"staggered_ms":60000},
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(
        v.get("arrivals")
            .unwrap()
            .get("staggered_ms")
            .unwrap()
            .as_u64(),
        Some(60000),
        "the reply echoes the schedule"
    );
    let response = v.get("measured").unwrap().as_f64().unwrap();
    let makespan = v
        .get("sim")
        .unwrap()
        .get("makespan")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        makespan > response && makespan > 60.0,
        "staggered arrivals split makespan from response: {makespan} vs {response}"
    );
    assert!(
        v.get("model")
            .unwrap()
            .get("makespan")
            .unwrap()
            .as_f64()
            .unwrap()
            > 60.0
    );

    // An arrivals-free request (the PR 3 client shape) still decodes —
    // absent field means batch.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("arrivals").unwrap().as_str(), Some("batch"));
    assert!(v.get("estimate").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn keep_alive_serves_two_requests_on_one_socket() {
    let handle = serve(test_config()).unwrap();
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    send_request(&mut conn, "GET", "/healthz", "", false);
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let (status, body, connection) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(connection, "keep-alive");

    // Second request on the very same socket.
    send_request(
        &mut conn,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":134217728}"#,
        false,
    );
    let (status, body, connection) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(connection, "keep-alive");
    assert!(Json::parse(&body).unwrap().get("estimate").is_some());

    // A final Connection: close request ends the connection.
    send_request(&mut conn, "GET", "/healthz", "", true);
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    let handle = serve(ServeConfig {
        keep_alive_requests: 2,
        ..test_config()
    })
    .unwrap();
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    send_request(&mut conn, "GET", "/healthz", "", false);
    let (_, _, connection) = read_response(&mut reader);
    assert_eq!(connection, "keep-alive", "first request under the cap");
    send_request(&mut conn, "GET", "/healthz", "", false);
    let (_, _, connection) = read_response(&mut reader);
    assert_eq!(connection, "close", "cap reached: the service closes");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "socket is closed after the cap");
    handle.shutdown();
}

#[test]
fn mix_round_trip_reports_per_class_estimates() {
    let handle = serve(test_config()).unwrap();
    // A heterogeneous mix through /v1/scenario, both backends.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/scenario",
        r#"{"name":"mixed","nodes":[2],
            "mixes":[[{"job":"wordcount","input_bytes":268435456,"count":2},
                      {"job":"grep","input_bytes":268435456}]],
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let pt = &v.get("points").unwrap().as_arr().unwrap()[0];
    assert_eq!(pt.get("total_jobs").unwrap().as_u64(), Some(3));
    let per_class = pt
        .get("model")
        .unwrap()
        .get("per_class")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(per_class.len(), 2, "per-class estimates in the reply");
    assert!(per_class[0].get("fork_join").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        pt.get("sim")
            .unwrap()
            .get("per_class_median")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );
    assert!(
        !v.get("class_error_bands")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty(),
        "per-class bands present when both backends ran"
    );

    // The old single-job request shape still decodes on /v1/estimate.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"job":"grep","input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let mix = v.get("mix").unwrap().as_arr().unwrap();
    assert_eq!(mix.len(), 1, "decoded as a 1-entry mix");
    assert_eq!(mix[0].get("job").unwrap().as_str(), Some("grep"));
    assert_eq!(mix[0].get("count").unwrap().as_u64(), Some(2));
    handle.shutdown();
}

#[test]
fn error_statuses_are_mapped() {
    let handle = serve(ServeConfig {
        max_points: 8,
        ..test_config()
    })
    .unwrap();
    let cases = [
        ("GET", "/nope", "", 404),
        ("DELETE", "/healthz", "", 405),
        ("POST", "/v1/estimate", "{not json", 400),
        ("POST", "/v1/estimate", r#"{"nodes":0}"#, 400),
        ("POST", "/v1/scenario", r#"{"nodes":[]}"#, 400),
        // Expanding past the service bound must be refused, not run.
        (
            "POST",
            "/v1/scenario",
            r#"{"nodes":[2,3,4],"n_jobs":[1,2,3]}"#,
            400,
        ),
        // A single point carrying an absurd job total must be refused
        // before any per-job state is allocated — `max_points` can't
        // see it, the per-point jobs bound must.
        (
            "POST",
            "/v1/estimate",
            r#"{"mix":[{"job":"grep","count":1000000000000}]}"#,
            400,
        ),
        (
            "POST",
            "/v1/scenario",
            r#"{"nodes":[2],"n_jobs":[1000000]}"#,
            400,
        ),
    ];
    for (method, path, body, expected) in cases {
        let (status, reply) = request(handle.addr, method, path, body);
        assert_eq!(status, expected, "{method} {path}: {reply}");
        assert!(
            Json::parse(&reply).unwrap().get("error").is_some(),
            "errors carry a message: {reply}"
        );
    }
    handle.shutdown();
}

#[test]
fn concurrent_identical_scenarios_cost_one_evaluation() {
    // The acceptance criterion: ≥4 concurrent clients posting the same
    // scenario must trigger exactly one underlying evaluation. The
    // shared cache coalesces in-flight requests, so whatever the
    // interleaving — all four racing, or any of them arriving after the
    // record is ready — the miss counter (one per executed compute
    // closure) ends at exactly the number of distinct records: here 1
    // (a single analytic solve, no profiling, no simulator).
    const CLIENTS: usize = 6;
    let handle = serve(test_config()).unwrap();
    let body = r#"{"name":"herd","nodes":[6],"input_bytes":[1073741824],"n_jobs":[4],
        "backends":{"analytic":true,"profile_calibration":false,"simulator":null}}"#;

    let barrier = Barrier::new(CLIENTS);
    let replies: Vec<(u16, String)> = std::thread::scope(|s| {
        (0..CLIENTS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    request(handle.addr, "POST", "/v1/scenario", body)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    for (status, reply) in &replies {
        assert_eq!(*status, 200, "{reply}");
        assert_eq!(
            reply, &replies[0].1,
            "every client sees the identical answer"
        );
    }

    let stats = handle.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "exactly one evaluation under {CLIENTS} concurrent clients: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.coalesced,
        (CLIENTS - 1) as u64,
        "everyone else was served the shared record: {stats:?}"
    );

    // And the stats endpoint reports the same numbers.
    let (_, body) = request(handle.addr, "GET", "/v1/cache/stats", "");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("entries").unwrap().as_u64(), Some(1));
    handle.shutdown();
}

#[test]
fn cache_snapshot_survives_restart() {
    let dir = std::env::temp_dir().join(format!("mr2-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_file = dir.join("serve-cache.txt");

    let cfg = ServeConfig {
        cache_file: Some(cache_file.clone()),
        ..test_config()
    };
    let handle = serve(cfg.clone()).unwrap();
    let body = r#"{"nodes":3,"input_bytes":268435456}"#;
    let (status, first) = request(handle.addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200);
    handle.shutdown(); // final snapshot happens here
    assert!(cache_file.exists(), "shutdown persisted the cache");

    // A fresh process-equivalent: same snapshot file, new server.
    let handle = serve(cfg).unwrap();
    assert_eq!(
        handle.cache_stats().entries,
        1,
        "restart warmed the cache from disk"
    );
    let (status, second) = request(handle.addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "warm answer is bit-identical");
    let stats = handle.cache_stats();
    assert_eq!(stats.misses, 0, "no re-evaluation after restart");
    assert_eq!(stats.hits, 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
