//! End-to-end tests of the capacity-planning service over real TCP:
//! round-trips for every endpoint (including heterogeneous workload
//! mixes), HTTP keep-alive, error statuses, cache persistence across
//! restarts, the coalescing guarantee — concurrent identical scenario
//! queries cost exactly one underlying evaluation — and observability:
//! the `/metrics` exposition spans every instrumented layer and
//! `"debug": true` replies carry a span breakdown bounded by wall time.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use mr2_scenario::RunnerConfig;
use mr2_serve::{serve, Json, ServeConfig};

/// Send one request on an open connection without closing it.
fn send_request(conn: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
}

/// Read exactly one response off the connection (framed by
/// `Content-Length`, so the socket can stay open); returns
/// (status, body, connection-header value).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {status_line:?}"));
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        String::from_utf8(body).expect("utf-8 body"),
        connection,
    )
}

/// One HTTP/1.1 request over a fresh connection (`Connection: close`);
/// returns (status, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    send_request(&mut conn, method, path, body, true);
    let mut reader = BufReader::new(conn);
    let (status, payload, connection) = read_response(&mut reader);
    assert_eq!(connection, "close", "the service honors Connection: close");
    // And the server actually closes: the stream drains to EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "no bytes past the framed response");
    (status, payload)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 6,
        access_log: false,
        ..ServeConfig::default()
    }
}

/// Value of the first sample line starting with `series` (family name
/// plus any labels, exactly as rendered) in a `/metrics` body; 0 when
/// the series is absent.
fn metric_value(metrics: &str, series: &str) -> f64 {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .unwrap_or(0.0)
}

#[test]
fn healthz_and_stats_round_trip() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(handle.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let v = Json::parse(&body).expect("health body is JSON");
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert!(v.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);
    assert!(
        v.get("requests_total").unwrap().as_u64().is_some(),
        "health reply carries the served-request aggregate"
    );

    let (status, body) = request(handle.addr, "GET", "/v1/cache/stats", "");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("entries").unwrap().as_u64(), Some(0));
    assert_eq!(
        v.get("schema_version").unwrap().as_u64(),
        Some(mr2_scenario::schema_version())
    );
    assert_eq!(
        v.get("hit_ratio").unwrap().as_f64(),
        Some(0.0),
        "no lookups yet: the derived ratio is 0, not NaN"
    );
    handle.shutdown();
}

#[test]
fn estimate_round_trip_matches_direct_evaluation() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":4,"input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let served = v
        .get("model")
        .unwrap()
        .get("fork_join")
        .unwrap()
        .as_f64()
        .unwrap();

    // The same point evaluated directly through the engine.
    let req = r#"{"nodes":4,"input_bytes":268435456,"n_jobs":2}"#;
    let parsed = mr2_serve::api::parse_estimate_request(req).unwrap();
    let direct = mr2_scenario::evaluate_point(
        &parsed.point,
        &parsed.backends,
        &mr2_scenario::ResultCache::new(),
    );
    assert_eq!(
        served.to_bits(),
        direct.model.unwrap().fork_join.to_bits(),
        "served estimate is bit-identical to a direct evaluation"
    );
    assert_eq!(v.get("sim"), Some(&Json::Null), "simulator is opt-in");
    assert!(v.get("estimate").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn scenario_round_trip_reports_points_and_bands() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/scenario",
        r#"{"name":"grow","nodes":[2,3],"input_bytes":[268435456],
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("num_points").unwrap().as_u64(), Some(2));
    let points = v.get("points").unwrap().as_arr().unwrap();
    assert_eq!(points.len(), 2);
    assert_eq!(points[0].get("nodes").unwrap().as_u64(), Some(2));
    assert_eq!(points[1].get("nodes").unwrap().as_u64(), Some(3));
    for p in points {
        assert!(p.get("estimate").unwrap().as_f64().unwrap() > 0.0);
        assert!(p.get("measured").unwrap().as_f64().unwrap() > 0.0);
    }
    assert!(
        !v.get("error_bands").unwrap().as_arr().unwrap().is_empty(),
        "both backends ran, so bands are present"
    );
    handle.shutdown();
}

#[test]
fn arrivals_round_trip_reports_makespans_while_old_requests_decode_unchanged() {
    let handle = serve(test_config()).unwrap();
    // An arrivals-bearing estimate: two staggered jobs, both backends.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456,"n_jobs":2,
            "arrivals":{"staggered_ms":60000},
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(
        v.get("arrivals")
            .unwrap()
            .get("staggered_ms")
            .unwrap()
            .as_u64(),
        Some(60000),
        "the reply echoes the schedule"
    );
    let response = v.get("measured").unwrap().as_f64().unwrap();
    let makespan = v
        .get("sim")
        .unwrap()
        .get("makespan")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        makespan > response && makespan > 60.0,
        "staggered arrivals split makespan from response: {makespan} vs {response}"
    );
    assert!(
        v.get("model")
            .unwrap()
            .get("makespan")
            .unwrap()
            .as_f64()
            .unwrap()
            > 60.0
    );

    // An arrivals-free request (the PR 3 client shape) still decodes —
    // absent field means batch.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("arrivals").unwrap().as_str(), Some("batch"));
    assert!(v.get("estimate").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

#[test]
fn keep_alive_serves_two_requests_on_one_socket() {
    let handle = serve(test_config()).unwrap();
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    send_request(&mut conn, "GET", "/healthz", "", false);
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let (status, body, connection) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(connection, "keep-alive");

    // Second request on the very same socket.
    send_request(
        &mut conn,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":134217728}"#,
        false,
    );
    let (status, body, connection) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert_eq!(connection, "keep-alive");
    assert!(Json::parse(&body).unwrap().get("estimate").is_some());

    // A final Connection: close request ends the connection.
    send_request(&mut conn, "GET", "/healthz", "", true);
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    let handle = serve(ServeConfig {
        keep_alive_requests: 2,
        ..test_config()
    })
    .unwrap();
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    send_request(&mut conn, "GET", "/healthz", "", false);
    let (_, _, connection) = read_response(&mut reader);
    assert_eq!(connection, "keep-alive", "first request under the cap");
    send_request(&mut conn, "GET", "/healthz", "", false);
    let (_, _, connection) = read_response(&mut reader);
    assert_eq!(connection, "close", "cap reached: the service closes");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "socket is closed after the cap");
    handle.shutdown();
}

#[test]
fn metrics_scrape_spans_all_layers_and_counts_keep_alive_requests() {
    let handle = serve(test_config()).unwrap();
    // Drive every instrumented layer: a scenario through both backends
    // (analytic solver + simulator + runner + a cache miss), then the
    // identical body again for a cache hit.
    let body = r#"{"name":"obs","nodes":[2],"input_bytes":[268435456],
        "backends":{"analytic":true,"simulator":1}}"#;
    let (status, reply) = request(handle.addr, "POST", "/v1/scenario", body);
    assert_eq!(status, 200, "{reply}");
    let (status, _) = request(handle.addr, "POST", "/v1/scenario", body);
    assert_eq!(status, 200);

    // Two scrapes on ONE kept-alive socket.
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    send_request(&mut conn, "GET", "/metrics", "", false);
    let (status, first, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    send_request(&mut conn, "GET", "/metrics", "", true);
    let (status, second, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    // Exposition shape: HELP/TYPE preambles and a healthy family count.
    assert!(first.starts_with("# HELP "), "{first}");
    let families = first.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert!(families >= 8, "only {families} families:\n{first}");

    // All four instrumented layers are represented.
    for family in [
        "mr2_http_requests_total",     // serve: per-route counters
        "mr2_http_request_seconds",    // serve: latency histogram
        "mr2_serve_queue_depth",       // serve: worker backlog gauge
        "mr2_points_evaluated_total",  // runner
        "mr2_cache_hits_total",        // result cache
        "mr2_cache_misses_total",      // result cache
        "mr2_solver_iterations_total", // analytic solver
        "mr2_sim_events_total",        // simulator
        "mr2_sim_event_heap_depth",    // simulator
        "mr2_span_seconds",            // phase timings
    ] {
        assert!(
            first.contains(&format!("# TYPE {family} ")),
            "family {family} missing:\n{first}"
        );
    }
    // The repeated scenario body was answered from the cache.
    assert!(metric_value(&first, "mr2_cache_hits_total") >= 1.0);

    // The metrics route counts itself: a request is recorded after its
    // response is built, so the second scrape on the same socket sees
    // the first one (the registry is process-wide and other tests race
    // it, hence monotonic `>=`, not equality).
    let series = "mr2_http_requests_total{method=\"GET\",path=\"/metrics\",status=\"200\"}";
    let (v1, v2) = (metric_value(&first, series), metric_value(&second, series));
    assert!(
        v2 >= v1 + 1.0,
        "second scrape counts the first: {v1} -> {v2}\n{second}"
    );
    handle.shutdown();
}

/// Collect every span name in a span forest, depth first, asserting
/// each node's timings are sane along the way.
fn collect_span_names(spans: &[Json], names: &mut Vec<String>) {
    for s in spans {
        names.push(s.get("name").unwrap().as_str().unwrap().to_string());
        let start = s.get("start_ms").unwrap().as_f64().unwrap();
        let duration = s.get("duration_ms").unwrap().as_f64().unwrap();
        assert!(start >= 0.0 && duration >= 0.0);
        if let Some(children) = s.get("children") {
            collect_span_names(children.as_arr().unwrap(), names);
        }
    }
}

/// Assert the shape of a `"debug"` breakdown: a request id, a
/// `trace_url` correlation hint, a span *tree* containing
/// `expect_span` and the encode phase somewhere, and root durations
/// summing to at most the measured wall time (roots are sequential;
/// children overlap their parents by construction).
fn assert_debug_breakdown(v: &Json, expect_span: &str) {
    let debug = v.get("debug").expect("debug object attached");
    let request_id = debug.get("request_id").unwrap().as_u64().unwrap();
    assert!(request_id >= 1);
    assert_eq!(
        debug.get("trace_url").unwrap().as_str().unwrap(),
        format!("/v1/trace/recent?id={request_id}")
    );
    let wall = debug.get("wall_ms").unwrap().as_f64().unwrap();
    let roots = debug.get("spans").unwrap().as_arr().unwrap();
    assert!(!roots.is_empty(), "breakdown has spans");
    let root_sum: f64 = roots
        .iter()
        .map(|s| s.get("duration_ms").unwrap().as_f64().unwrap())
        .sum();
    let mut names = Vec::new();
    collect_span_names(roots, &mut names);
    assert!(names.iter().any(|n| n == expect_span), "{names:?}");
    assert!(names.iter().any(|n| n == "response.encode"), "{names:?}");
    assert!(
        root_sum <= wall + 1e-6,
        "root span sum {root_sum}ms bounded by wall {wall}ms: {names:?}"
    );
}

#[test]
fn debug_flag_attaches_span_breakdown_bounded_by_wall_time() {
    let handle = serve(test_config()).unwrap();
    // /v1/estimate with both backends: the runner's phase spans land in
    // the trace alongside the encode span.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456,"debug":true,
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_debug_breakdown(&v, "point.model");

    // /v1/scenario: the sweep runs as one traced phase on this thread
    // (the evaluation pool's own spans deliberately stay out).
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/scenario",
        r#"{"name":"dbg","nodes":[2,3],"input_bytes":[268435456],"debug":true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_debug_breakdown(&v, "scenario.run");

    // Off by default: no debug key in the reply.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456}"#,
    );
    assert_eq!(status, 200);
    assert!(Json::parse(&body).unwrap().get("debug").is_none());

    // A non-boolean value is refused, not silently ignored.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"debug":"yes"}"#,
    );
    assert_eq!(status, 422, "{body}");
    handle.shutdown();
}

#[test]
fn mix_round_trip_reports_per_class_estimates() {
    let handle = serve(test_config()).unwrap();
    // A heterogeneous mix through /v1/scenario, both backends.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/scenario",
        r#"{"name":"mixed","nodes":[2],
            "mixes":[[{"job":"wordcount","input_bytes":268435456,"count":2},
                      {"job":"grep","input_bytes":268435456}]],
            "backends":{"analytic":true,"simulator":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let pt = &v.get("points").unwrap().as_arr().unwrap()[0];
    assert_eq!(pt.get("total_jobs").unwrap().as_u64(), Some(3));
    let per_class = pt
        .get("model")
        .unwrap()
        .get("per_class")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(per_class.len(), 2, "per-class estimates in the reply");
    assert!(per_class[0].get("fork_join").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        pt.get("sim")
            .unwrap()
            .get("per_class_median")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );
    assert!(
        !v.get("class_error_bands")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty(),
        "per-class bands present when both backends ran"
    );

    // The old single-job request shape still decodes on /v1/estimate.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"job":"grep","input_bytes":268435456,"n_jobs":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let mix = v.get("mix").unwrap().as_arr().unwrap();
    assert_eq!(mix.len(), 1, "decoded as a 1-entry mix");
    assert_eq!(mix[0].get("job").unwrap().as_str(), Some("grep"));
    assert_eq!(mix[0].get("count").unwrap().as_u64(), Some(2));
    handle.shutdown();
}

#[test]
fn error_statuses_are_mapped_through_the_unified_envelope() {
    let handle = serve(ServeConfig {
        max_points: 8,
        ..test_config()
    })
    .unwrap();
    // (method, path, body, status, envelope code): transport/JSON
    // damage is 400 "malformed", a well-formed body that fails
    // validation is 422 "validation", routing misses keep 404/405.
    let cases = [
        ("GET", "/nope", "", 404, "not_found"),
        ("DELETE", "/healthz", "", 405, "method_not_allowed"),
        ("POST", "/v1/estimate", "{not json", 400, "malformed"),
        ("POST", "/v1/estimate", r#"{"nodes":0}"#, 422, "validation"),
        ("POST", "/v1/scenario", r#"{"nodes":[]}"#, 422, "validation"),
        // Expanding past the service bound must be refused, not run.
        (
            "POST",
            "/v1/scenario",
            r#"{"nodes":[2,3,4],"n_jobs":[1,2,3]}"#,
            422,
            "validation",
        ),
        // A single point carrying an absurd job total must be refused
        // before any per-job state is allocated — `max_points` can't
        // see it, the per-point jobs bound must.
        (
            "POST",
            "/v1/estimate",
            r#"{"mix":[{"job":"grep","count":1000000000000}]}"#,
            422,
            "validation",
        ),
        (
            "POST",
            "/v1/scenario",
            r#"{"nodes":[2],"n_jobs":[1000000]}"#,
            422,
            "validation",
        ),
        // /v1/plan speaks the same envelope.
        ("POST", "/v1/plan", "{not json", 400, "malformed"),
        ("POST", "/v1/plan", r#"{"slo":{}}"#, 422, "validation"),
        (
            "POST",
            "/v1/plan",
            r#"{"arrival_rate":0.1,"slo":{"metric":"response","threshold":-5}}"#,
            422,
            "validation",
        ),
    ];
    for (method, path, body, expected, code) in cases {
        let (status, reply) = request(handle.addr, method, path, body);
        assert_eq!(status, expected, "{method} {path}: {reply}");
        let v = Json::parse(&reply).unwrap();
        assert_eq!(
            v.get("api_version").unwrap().as_str(),
            Some("v1"),
            "errors are versioned too: {reply}"
        );
        let error = v.get("error").unwrap_or_else(|| {
            panic!("errors carry the envelope: {reply}");
        });
        assert_eq!(
            error.get("code").unwrap().as_str(),
            Some(code),
            "{method} {path}: {reply}"
        );
        assert!(
            !error
                .get("message")
                .unwrap()
                .as_str()
                .unwrap()
                .trim()
                .is_empty(),
            "messages are human-readable: {reply}"
        );
    }

    // Validation failures that concern one field name it in the
    // envelope, so clients can highlight the offending input.
    let (status, reply) = request(handle.addr, "POST", "/v1/estimate", r#"{"nodes":0}"#);
    assert_eq!(status, 422);
    let v = Json::parse(&reply).unwrap();
    assert_eq!(
        v.get("error").unwrap().get("field").unwrap().as_str(),
        Some("nodes"),
        "{reply}"
    );
    handle.shutdown();
}

#[test]
fn concurrent_identical_scenarios_cost_one_evaluation() {
    // The acceptance criterion: ≥4 concurrent clients posting the same
    // scenario must trigger exactly one underlying evaluation. The
    // shared cache coalesces in-flight requests, so whatever the
    // interleaving — all four racing, or any of them arriving after the
    // record is ready — the miss counter (one per executed compute
    // closure) ends at exactly the number of distinct records: here 1
    // (a single analytic solve, no profiling, no simulator).
    const CLIENTS: usize = 6;
    let handle = serve(test_config()).unwrap();
    let body = r#"{"name":"herd","nodes":[6],"input_bytes":[1073741824],"n_jobs":[4],
        "backends":{"analytic":true,"profile_calibration":false,"simulator":null}}"#;

    let barrier = Barrier::new(CLIENTS);
    let replies: Vec<(u16, String)> = std::thread::scope(|s| {
        (0..CLIENTS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    request(handle.addr, "POST", "/v1/scenario", body)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    for (status, reply) in &replies {
        assert_eq!(*status, 200, "{reply}");
        assert_eq!(
            reply, &replies[0].1,
            "every client sees the identical answer"
        );
    }

    let stats = handle.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "exactly one evaluation under {CLIENTS} concurrent clients: {stats:?}"
    );
    assert_eq!(
        stats.hits + stats.coalesced,
        (CLIENTS - 1) as u64,
        "everyone else was served the shared record: {stats:?}"
    );

    // And the stats endpoint reports the same numbers.
    let (_, body) = request(handle.addr, "GET", "/v1/cache/stats", "");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("entries").unwrap().as_u64(), Some(1));
    handle.shutdown();
}

#[test]
fn open_arrival_estimate_reports_the_saturation_knee() {
    let handle = serve(test_config()).unwrap();
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":4,"input_bytes":268435456,"arrival_rate":0.002}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("arrival_rate").unwrap().as_f64(), Some(0.002));
    let open = v.get("model").unwrap().get("open").unwrap();
    let util = open
        .get("bottleneck_utilization")
        .unwrap()
        .as_f64()
        .unwrap();
    let knee = open.get("knee_rate").unwrap().as_f64().unwrap();
    let sat = open.get("saturation_rate").unwrap().as_f64().unwrap();
    assert!(util > 0.0 && util < 1.0, "{body}");
    assert!(sat > knee && knee > 0.002, "{body}");

    // A closed (batch) request keeps the old shape: open stays null.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":4,"input_bytes":268435456}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("model").unwrap().get("open"), Some(&Json::Null));
    handle.shutdown();
}

#[test]
fn plan_round_trip_returns_the_cheapest_satisfying_configuration() {
    let handle = serve(test_config()).unwrap();
    // Reference: the open response at 6 nodes. A threshold just above
    // it makes some node count ≤ 6 the cheapest satisfying choice.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":6,"input_bytes":1073741824,"arrival_rate":0.002}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reference = Json::parse(&body)
        .unwrap()
        .get("estimate")
        .unwrap()
        .as_f64()
        .unwrap();

    let plan_body = format!(
        r#"{{"mix":[{{"job":"wordcount","input_bytes":1073741824}}],
            "arrival_rate":0.002,
            "slo":{{"metric":"response","threshold":{}}},
            "search":{{"min_nodes":1,"max_nodes":16}}}}"#,
        reference * 1.001
    );
    let (status, body) = request(handle.addr, "POST", "/v1/plan", &plan_body);
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("api_version").unwrap().as_str(), Some("v1"));
    assert_eq!(v.get("feasible").unwrap().as_bool(), Some(true), "{body}");
    let nodes = v.get("nodes").unwrap().as_u64().unwrap();
    assert!((1..=6).contains(&nodes), "threshold is met by 6: {body}");
    let predicted = v.get("predicted").unwrap().as_f64().unwrap();
    assert!(predicted <= reference * 1.001, "{body}");

    // The chosen point carries the full model, open tail included.
    let open = v.get("model").unwrap().get("open").unwrap();
    assert!(open.get("saturation_rate").unwrap().as_f64().unwrap() > 0.002);

    // The probe trail shows the bisection: every probe in range, the
    // chosen count present, and — the cheapest-config evidence — one
    // node fewer either fails the SLO or sits outside the range.
    let probes = v.get("probes").unwrap().as_arr().unwrap();
    assert!(!probes.is_empty() && probes.len() <= 6, "{body}");
    assert!(probes
        .iter()
        .any(|p| p.get("nodes").unwrap().as_u64() == Some(nodes)));
    if let Some(below) = probes
        .iter()
        .find(|p| p.get("nodes").unwrap().as_u64() == Some(nodes - 1))
    {
        assert_eq!(below.get("satisfies").unwrap().as_bool(), Some(false));
    }

    // An unsatisfiable SLO is an answer, not an error: feasible=false
    // with the best-effort top-of-range point.
    let (status, body) = request(
        handle.addr,
        "POST",
        "/v1/plan",
        r#"{"mix":[{"job":"wordcount","input_bytes":1073741824}],
            "arrival_rate":0.002,
            "slo":{"metric":"response","threshold":1e-6},
            "search":{"min_nodes":1,"max_nodes":8}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("feasible").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("nodes").unwrap().as_u64(), Some(8));
    handle.shutdown();
}

#[test]
fn replanning_is_cache_served() {
    let handle = serve(test_config()).unwrap();
    let body = r#"{"mix":[{"job":"grep","input_bytes":268435456}],
        "arrival_rate":0.005,
        "slo":{"metric":"utilization","threshold":0.5},
        "search":{"min_nodes":1,"max_nodes":32}}"#;
    let (status, first) = request(handle.addr, "POST", "/v1/plan", body);
    assert_eq!(status, 200, "{first}");
    let (_, stats) = request(handle.addr, "GET", "/v1/cache/stats", "");
    let before = Json::parse(&stats).unwrap();
    let misses_before = before.get("misses").unwrap().as_u64().unwrap();
    assert!(misses_before >= 1, "the first plan evaluated something");

    let (status, second) = request(handle.addr, "POST", "/v1/plan", body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "re-planning is deterministic");
    let (_, stats) = request(handle.addr, "GET", "/v1/cache/stats", "");
    let after = Json::parse(&stats).unwrap();
    assert_eq!(
        after.get("misses").unwrap().as_u64(),
        Some(misses_before),
        "the repeat plan is 100% cache-served (≥90% required): {stats}"
    );
    assert!(after.get("hits").unwrap().as_u64().unwrap() >= misses_before);
    handle.shutdown();
}

#[test]
fn replies_are_versioned_and_legacy_fields_draw_deprecations() {
    let handle = serve(test_config()).unwrap();
    // Every success reply carries the version stamp…
    for (method, path, body) in [
        ("GET", "/healthz", ""),
        ("GET", "/v1/cache/stats", ""),
        (
            "POST",
            "/v1/estimate",
            r#"{"nodes":2,"mix":[{"job":"grep","input_bytes":268435456}]}"#,
        ),
        (
            "POST",
            "/v1/scenario",
            r#"{"name":"v","nodes":[2],"input_bytes":[268435456]}"#,
        ),
    ] {
        let (status, reply) = request(handle.addr, method, path, body);
        assert_eq!(status, 200, "{method} {path}: {reply}");
        let v = Json::parse(&reply).unwrap();
        assert_eq!(
            v.get("api_version").unwrap().as_str(),
            Some("v1"),
            "{method} {path}: {reply}"
        );
        assert!(
            v.get("deprecations").is_none(),
            "mix-shaped requests are not warned: {reply}"
        );
    }

    // …and the legacy single-job shape still decodes byte-for-byte the
    // same answer, with the reply naming the deprecated fields.
    let (status, reply) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"job":"grep","input_bytes":268435456,"n_jobs":1}"#,
    );
    assert_eq!(status, 200, "{reply}");
    let legacy = Json::parse(&reply).unwrap();
    let warnings = legacy.get("deprecations").unwrap().as_arr().unwrap();
    let text: Vec<&str> = warnings.iter().filter_map(Json::as_str).collect();
    assert!(
        text.iter().any(|w| w.contains("`job`")) && text.iter().any(|w| w.contains("`mix`")),
        "deprecations name the field and its replacement: {reply}"
    );

    let (_, mix_reply) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"mix":[{"job":"grep","input_bytes":268435456}]}"#,
    );
    let modern = Json::parse(&mix_reply).unwrap();
    assert_eq!(
        legacy.get("estimate"),
        modern.get("estimate"),
        "legacy and mix shapes answer identically"
    );
    handle.shutdown();
}

#[test]
fn full_accept_queue_sheds_load_with_503_and_retry_after() {
    // max_queue 0: the acceptor rejects every connection before it
    // reaches a worker, with the envelope and an explicit retry hint.
    let handle = serve(ServeConfig {
        max_queue: 0,
        ..test_config()
    })
    .unwrap();
    // The rejection happens at accept, before any bytes are read —
    // sending nothing avoids the RST a close-with-unread-data causes.
    let conn = TcpStream::connect(handle.addr).expect("connect");
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("Retry-After: 1"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("body");
    let v = Json::parse(body).expect("envelope body");
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("backpressure"),
        "{raw}"
    );
    handle.shutdown();
}

#[test]
fn cache_snapshot_survives_restart() {
    let dir = std::env::temp_dir().join(format!("mr2-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_file = dir.join("serve-cache.txt");

    let cfg = ServeConfig {
        cache_file: Some(cache_file.clone()),
        ..test_config()
    };
    let handle = serve(cfg.clone()).unwrap();
    let body = r#"{"nodes":3,"input_bytes":268435456}"#;
    let (status, first) = request(handle.addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200);
    handle.shutdown(); // final snapshot happens here
    assert!(cache_file.exists(), "shutdown persisted the cache");

    // A fresh process-equivalent: same snapshot file, new server.
    let handle = serve(cfg).unwrap();
    assert_eq!(
        handle.cache_stats().entries,
        1,
        "restart warmed the cache from disk"
    );
    let (status, second) = request(handle.addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "warm answer is bit-identical");
    let stats = handle.cache_stats();
    assert_eq!(stats.misses, 0, "no re-evaluation after restart");
    assert_eq!(stats.hits, 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Event-loop transport: streaming sweeps, hostile clients, auth, shutdown.
// ---------------------------------------------------------------------------

/// Read one chunk of a `Transfer-Encoding: chunked` body; empty vec on
/// the terminating zero-size chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Vec<u8> {
    let mut size_line = String::new();
    reader.read_line(&mut size_line).expect("chunk size line");
    let size = usize::from_str_radix(size_line.trim(), 16)
        .unwrap_or_else(|_| panic!("malformed chunk size: {size_line:?}"));
    let mut data = vec![0u8; size + 2]; // payload + trailing CRLF
    reader.read_exact(&mut data).expect("chunk payload");
    assert_eq!(&data[size..], b"\r\n", "chunk payload ends with CRLF");
    data.truncate(size);
    data
}

/// Read a chunked-response head; returns (status, header lines).
fn read_stream_head(reader: &mut BufReader<TcpStream>) -> (u16, Vec<String>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed reply: {status_line:?}"));
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        headers.push(line.to_string());
    }
    (status, headers)
}

fn header_value<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn streaming_scenario_delivers_points_before_the_sweep_completes() {
    // One evaluation thread: points complete strictly in sequence, so
    // when the first NDJSON line is on the wire the second (deliberately
    // heavy: 10 GiB input, 8 concurrent jobs, 5 simulator reps) has not
    // finished — the cache still lacks its records.
    let cfg = ServeConfig {
        runner: RunnerConfig { threads: 1 },
        ..test_config()
    };
    let handle = serve(cfg).unwrap();
    let scenario = r#"{"name":"stream-test","sweep":"zip","input_bytes":[268435456,10737418240],"n_jobs":[1,8],"backends":{"analytic":true,"simulator":5},"stream":true}"#;

    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    conn.set_nodelay(true).ok();
    write!(
        conn,
        "POST /v1/scenario HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{scenario}",
        scenario.len()
    )
    .expect("send");

    let mut reader = BufReader::new(conn);
    let (status, headers) = read_stream_head(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&headers, "transfer-encoding"),
        Some("chunked"),
        "streaming replies are chunked: {headers:?}"
    );
    assert_eq!(
        header_value(&headers, "content-type"),
        Some("application/x-ndjson")
    );
    assert!(
        header_value(&headers, "content-length").is_none(),
        "no Content-Length on a stream"
    );

    let first = String::from_utf8(read_chunk(&mut reader)).expect("utf-8 line");
    let first_point = Json::parse(first.trim()).expect("first line is JSON");
    assert!(
        first_point.get("index").is_some() && first_point.get("estimate").is_some(),
        "point lines carry index + estimate: {first}"
    );
    // The acceptance check: a point line arrived while the sweep was
    // still running. Each completed point deposits two cache records
    // (simulator + analytic); the full two-point sweep deposits four.
    let entries_mid = handle.cache_stats().entries;
    assert!(
        entries_mid < 4,
        "first line arrived before the sweep completed (cache entries: {entries_mid})"
    );

    let mut lines = vec![first];
    loop {
        let chunk = read_chunk(&mut reader);
        if chunk.is_empty() {
            break;
        }
        lines.push(String::from_utf8(chunk).expect("utf-8 line"));
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "connection closes after the terminator");

    // 2 point lines + 1 summary tail.
    assert_eq!(lines.len(), 3, "lines: {lines:?}");
    let tail = Json::parse(lines[2].trim()).expect("tail is JSON");
    assert_eq!(tail.get("done").unwrap().as_bool(), Some(true));
    assert_eq!(tail.get("num_points").unwrap().as_u64(), Some(2));
    assert!(tail.get("error_bands").is_some(), "tail carries the bands");
    assert!(tail.get("api_version").is_some());

    let mut points: Vec<Json> = lines[..2]
        .iter()
        .map(|l| Json::parse(l.trim()).expect("point line"))
        .collect();
    points.sort_by_key(|p| p.get("index").unwrap().as_u64().unwrap());
    assert_eq!(points[0].get("index").unwrap().as_u64(), Some(0));
    assert_eq!(points[1].get("index").unwrap().as_u64(), Some(1));

    // Parity: the non-streaming reply (now fully cached) reports the
    // same per-point estimates and the same bands.
    let plain = scenario.replace(",\"stream\":true", "");
    let (status, body) = request(handle.addr, "POST", "/v1/scenario", &plain);
    assert_eq!(status, 200);
    let sweep = Json::parse(&body).unwrap();
    let sweep_points = sweep.get("points").unwrap().as_arr().unwrap();
    assert_eq!(sweep_points.len(), 2);
    for (streamed, batch) in points.iter().zip(sweep_points) {
        assert_eq!(
            streamed.get("estimate").unwrap().get("total_ms"),
            batch.get("estimate").unwrap().get("total_ms"),
            "streamed and batch estimates agree"
        );
    }
    assert_eq!(
        tail.get("error_bands"),
        sweep.get("error_bands"),
        "streamed tail bands match the batch reply"
    );
    handle.shutdown();
}

#[test]
fn slow_loris_partial_header_times_out_without_pinning_a_worker() {
    // One worker thread: if the loris pinned it, the probe request
    // could never be answered.
    let cfg = ServeConfig {
        threads: 1,
        request_timeout: Duration::from_millis(300),
        ..test_config()
    };
    let handle = serve(cfg).unwrap();

    let mut loris = TcpStream::connect(handle.addr).expect("connect");
    loris
        .write_all(b"POST /v1/estimate HTTP/1.1\r\nHost: te")
        .expect("partial header");

    // The single worker still answers other connections.
    let (status, _) = request(
        handle.addr,
        "POST",
        "/v1/estimate",
        r#"{"nodes":2,"input_bytes":268435456}"#,
    );
    assert_eq!(status, 200, "loris did not pin the worker");

    // The loris connection is reaped by the inactivity deadline: EOF,
    // no response bytes, well before the keep-alive idle window.
    loris
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let started = Instant::now();
    let mut buf = Vec::new();
    loris.read_to_end(&mut buf).expect("read until close");
    assert!(buf.is_empty(), "no reply to an unfinished request");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "closed by the request deadline, not the idle timer"
    );
    handle.shutdown();
}

#[test]
fn mid_body_disconnect_frees_the_connection_slot() {
    let handle = serve(test_config()).unwrap();
    let scrape = |label: &str| {
        let (status, body) = request(handle.addr, "GET", "/metrics", "");
        assert_eq!(status, 200, "{label}");
        metric_value(&body, "mr2_serve_open_connections")
    };
    let baseline = scrape("baseline");
    assert!(baseline >= 1.0, "the scrape's own connection is counted");

    let mut doomed = TcpStream::connect(handle.addr).expect("connect");
    doomed
        .write_all(
            b"POST /v1/estimate HTTP/1.1\r\nHost: test\r\nContent-Length: 100\r\n\r\n{\"nodes\"",
        )
        .expect("partial body");
    // Observe it registered, then vanish mid-body.
    let deadline = Instant::now() + Duration::from_secs(5);
    while scrape("while open") < baseline + 1.0 {
        assert!(Instant::now() < deadline, "connection never registered");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(doomed);

    // The loop notices the hangup and releases the slot without waiting
    // for any timeout.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if scrape("after disconnect") <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "mid-body disconnect leaked a connection slot"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = serve(test_config()).unwrap();
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    let estimate = r#"{"nodes":2,"input_bytes":268435456}"#;
    // Three requests in one write: inline route, worker-pool route,
    // inline route. The middle one parks the connection until its
    // worker finishes; the third must not be answered early.
    write!(
        conn,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n\
         POST /v1/estimate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{estimate}\
         GET /v1/cache/stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        estimate.len()
    )
    .expect("pipelined write");

    let mut reader = BufReader::new(conn);
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&body).unwrap().get("status").unwrap().as_str(),
        Some("ok"),
        "first reply is the health check"
    );
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        Json::parse(&body).unwrap().get("estimate").is_some(),
        "second reply is the estimate"
    );
    let (status, body, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(
        Json::parse(&body).unwrap().get("entries").is_some(),
        "third reply is the cache stats"
    );
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn bearer_token_guards_v1_routes_but_not_probes() {
    let cfg = ServeConfig {
        token: Some("s3cret".into()),
        ..test_config()
    };
    let handle = serve(cfg).unwrap();

    // Probe, scrape, and profiler endpoints stay open.
    let (status, _) = request(handle.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _) = request(handle.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let (status, _) = request(handle.addr, "GET", "/debug/profile", "");
    assert_eq!(status, 200, "/debug/profile is not under /v1/");

    // The introspection GETs under /v1/ are guarded like the rest.
    for path in ["/v1/jobs", "/v1/trace/recent"] {
        let (status, _) = request(handle.addr, "GET", path, "");
        assert_eq!(status, 401, "{path} requires the bearer token");
    }

    // /v1/* without (or with a wrong) token: the standard error
    // envelope, and the connection survives to try again.
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    let authed = |conn: &mut TcpStream, auth: Option<&str>, close: bool| {
        let connection = if close { "close" } else { "keep-alive" };
        let auth_line = auth
            .map(|a| format!("Authorization: {a}\r\n"))
            .unwrap_or_default();
        write!(
            conn,
            "GET /v1/cache/stats HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\
             {auth_line}Content-Length: 0\r\n\r\n"
        )
        .expect("send");
    };
    authed(&mut conn, None, false);
    let mut reader = BufReader::new(conn);
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 401);
    let v = Json::parse(&body).unwrap();
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unauthorized")
    );
    assert!(v.get("api_version").is_some(), "errors keep the envelope");

    authed(reader.get_mut(), Some("Bearer wrong"), false);
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 401, "a wrong token is rejected");

    authed(reader.get_mut(), Some("bearer s3cret"), true);
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200, "scheme is case-insensitive, token matches");
    assert!(Json::parse(&body).unwrap().get("entries").is_some());

    // POST routes are guarded too.
    let estimate = r#"{"nodes":2,"input_bytes":268435456}"#;
    let (status, _) = request(handle.addr, "POST", "/v1/estimate", estimate);
    assert_eq!(status, 401, "worker-pool routes reject before dispatch");
    handle.shutdown();
}

#[test]
fn shutdown_is_prompt_with_an_idle_connection_open() {
    let handle = serve(test_config()).unwrap();
    // Park a kept-alive connection in the idle state.
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    send_request(&mut conn, "GET", "/healthz", "", false);
    let mut reader = BufReader::new(conn);
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");

    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shutdown wakes the event loop instead of waiting out a poll"
    );
    // The parked connection was closed by teardown.
    reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "no stray bytes at teardown");
}

#[test]
fn connection_state_metrics_are_exposed() {
    let handle = serve(test_config()).unwrap();
    // Generate a little traffic first so the histogram has samples.
    let (status, _) = request(handle.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let (status, body) = request(handle.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metric_value(&body, "mr2_serve_open_connections") >= 1.0,
        "the scraping connection itself is visible"
    );
    // Every state series is pre-registered so scrapes always see the
    // full family; the scraping connection is mid-request right now.
    for state in [
        "read_head",
        "read_body",
        "waiting",
        "writing",
        "streaming",
        "idle",
    ] {
        assert!(
            body.contains(&format!("mr2_serve_connection_states{{state=\"{state}\"}}")),
            "missing state series {state}"
        );
    }
    assert!(
        metric_value(&body, "mr2_serve_connection_states{state=\"read_head\"}") >= 1.0,
        "the scrape is counted in read_head while routing runs"
    );
    assert!(
        body.contains("mr2_serve_connection_state_seconds"),
        "state-duration histogram is exported"
    );
    handle.shutdown();
}

/// Find a span named `name` anywhere in a span forest.
fn find_span<'a>(spans: &'a [Json], name: &str) -> Option<&'a Json> {
    for s in spans {
        if s.get("name").and_then(Json::as_str) == Some(name) {
            return Some(s);
        }
        if let Some(children) = s.get("children").and_then(Json::as_arr) {
            if let Some(hit) = find_span(children, name) {
                return Some(hit);
            }
        }
    }
    None
}

/// The full observability walk over real TCP: a heavy `/v1/scenario`
/// stream is visible mid-flight in `/v1/jobs`, its trace is retained
/// in `/v1/trace/recent` as a multi-level span tree whose root
/// durations sum to at most the wall time, a debug estimate's
/// `trace_url` fetches the same trace back, and the work is attributed
/// in `/debug/profile` (collapsed stacks and the JSON call tree).
#[test]
fn slow_request_is_reconstructable_from_trace_jobs_and_profile() {
    let cfg = ServeConfig {
        runner: RunnerConfig { threads: 1 },
        trace_sample_one_in: 1,
        trace_slow: Duration::ZERO,
        ..test_config()
    };
    let handle = serve(cfg).unwrap();

    // Phase 1: a two-point streaming sweep, deliberately heavy (one
    // evaluation thread, multi-rep simulation) so it is still running
    // when /v1/jobs is polled from a second connection. The odd input
    // sizes keep the process-wide solver memo from short-circuiting it.
    let scenario = r#"{"name":"obs-e2e","sweep":"zip","input_bytes":[268435457,2147483649],"n_jobs":[1,4],"backends":{"analytic":true,"simulator":3},"stream":true}"#;
    let mut conn = TcpStream::connect(handle.addr).expect("connect");
    conn.set_nodelay(true).ok();
    write!(
        conn,
        "POST /v1/scenario HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{scenario}",
        scenario.len()
    )
    .expect("send");
    let mut reader = BufReader::new(conn);
    let (status, _) = read_stream_head(&mut reader);
    assert_eq!(status, 200);

    // First point is on the wire; the heavy second point is still
    // evaluating. The sweep must be visible in /v1/jobs now — and
    // because finished jobs linger on a recently-done list, the
    // assertion cannot race the sweep's completion.
    let first = String::from_utf8(read_chunk(&mut reader)).expect("utf-8 line");
    assert!(Json::parse(first.trim()).is_ok());
    let (status, body) = request(handle.addr, "GET", "/v1/jobs", "");
    assert_eq!(status, 200, "{body}");
    let jobs = Json::parse(&body).unwrap();
    let jobs = jobs.get("jobs").unwrap().as_arr().unwrap();
    let sweep_job = jobs
        .iter()
        .find(|j| j.get("name").unwrap().as_str() == Some("obs-e2e"))
        .unwrap_or_else(|| panic!("sweep registered in /v1/jobs: {body}"));
    assert_eq!(sweep_job.get("streaming").unwrap().as_bool(), Some(true));
    assert_eq!(sweep_job.get("points_total").unwrap().as_u64(), Some(2));
    let state = sweep_job.get("state").unwrap().as_str().unwrap();
    assert!(state == "running" || state == "done", "{state}");
    let breakdown = sweep_job.get("per_estimator").expect("estimator breakdown");
    assert!(breakdown.get("fork_join").is_some(), "{body}");

    // Drain the stream, then confirm the finished job reports full
    // progress.
    loop {
        if read_chunk(&mut reader).is_empty() {
            break;
        }
    }
    let (_, body) = request(handle.addr, "GET", "/v1/jobs", "");
    let jobs = Json::parse(&body).unwrap();
    let done_job = jobs
        .get("jobs")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|j| {
            j.get("name").unwrap().as_str() == Some("obs-e2e")
                && j.get("state").unwrap().as_str() == Some("done")
        })
        .cloned()
        .unwrap_or_else(|| panic!("finished sweep lingers in /v1/jobs: {body}"));
    assert_eq!(done_job.get("points_done").unwrap().as_u64(), Some(2));
    assert!(done_job.get("elapsed_ms").unwrap().as_f64().unwrap() > 0.0);

    // Phase 2: the sweep's trace was retained (sample 1-in-1, and it
    // is slow besides) — find it by label and check the tree nests.
    let (status, body) = request(handle.addr, "GET", "/v1/trace/recent", "");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert!(v.get("sampling").unwrap().get("one_in").is_some());
    let recent = v.get("recent").unwrap().as_arr().unwrap();
    let slowest = v.get("slowest").unwrap().as_arr().unwrap();
    let sweep_trace = recent
        .iter()
        .chain(slowest)
        .find(|t| {
            t.get("label").unwrap().as_str() == Some("/v1/scenario")
                && find_span(t.get("spans").unwrap().as_arr().unwrap(), "scenario.run").is_some()
        })
        .unwrap_or_else(|| panic!("sweep trace retained: {body}"));
    let roots = sweep_trace.get("spans").unwrap().as_arr().unwrap();
    let root = find_span(roots, "serve.request").expect("root span");
    assert!(
        find_span(
            root.get("children").unwrap().as_arr().unwrap(),
            "scenario.run"
        )
        .is_some(),
        "scenario.run nests under serve.request"
    );
    let wall = sweep_trace.get("wall_ms").unwrap().as_f64().unwrap();
    let root_sum: f64 = roots
        .iter()
        .map(|s| s.get("duration_ms").unwrap().as_f64().unwrap())
        .sum();
    assert!(root_sum <= wall + 1e-6, "{root_sum} <= {wall}");

    // Phase 3: a debug estimate's trace_url round-trips to the same
    // trace, now as a deeper tree (model and simulator phases nest
    // under serve.request on the evaluating thread). The sampling
    // knobs are process-global and another test's serve() may reset
    // them mid-test, so retry — with fresh input sizes each attempt,
    // since a cache-served point skips the inner phase spans — until
    // a head sample lands (sampling keeps at least one per N).
    let mut retained = None;
    for attempt in 0..64u64 {
        let estimate = format!(
            r#"{{"nodes":3,"input_bytes":{},"debug":true,
                "backends":{{"analytic":true,"simulator":2}}}}"#,
            268_435_459 + attempt
        );
        let (status, body) = request(handle.addr, "POST", "/v1/estimate", &estimate);
        assert_eq!(status, 200, "{body}");
        let reply = Json::parse(&body).unwrap();
        let trace_url = reply
            .get("debug")
            .unwrap()
            .get("trace_url")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let (status, body) = request(handle.addr, "GET", &trace_url, "");
        assert_eq!(status, 200, "{body}");
        let fetched = Json::parse(&body).unwrap();
        if !fetched.get("traces").unwrap().as_arr().unwrap().is_empty() {
            retained = Some(fetched);
            break;
        }
    }
    let fetched = retained.expect("a debug estimate's trace retained within 64 attempts");
    let traces = fetched.get("traces").unwrap().as_arr().unwrap();
    let spans = traces[0].get("spans").unwrap().as_arr().unwrap();
    let root = find_span(spans, "serve.request").expect("root span");
    let children = root.get("children").unwrap().as_arr().unwrap();
    for phase in ["point.model", "point.sim", "response.encode"] {
        assert!(
            find_span(children, phase).is_some(),
            "{phase} under serve.request: {body}"
        );
    }
    assert!(
        find_span(children, "sim.rep").is_some(),
        "repetition spans nest below the point phases: {body}"
    );

    // Phase 4: the profiler attributed the work. Collapsed stacks are
    // semicolon-joined paths with self-times; the JSON tree mirrors
    // them; reset clears the aggregate.
    let (status, profile) = request(handle.addr, "GET", "/debug/profile", "");
    assert_eq!(status, 200);
    assert!(
        profile
            .lines()
            .any(|l| l.starts_with("serve.request;point.model")),
        "model phase attributed under the request root:\n{profile}"
    );
    assert!(
        profile.lines().any(|l| l.contains(";sim.rep ")),
        "simulation reps attributed:\n{profile}"
    );
    let (status, body) = request(handle.addr, "GET", "/debug/profile?format=json", "");
    assert_eq!(status, 200);
    let tree = Json::parse(&body).unwrap();
    let forest = tree.get("profile").unwrap().as_arr().unwrap();
    let request_node = forest
        .iter()
        .find(|n| n.get("name").unwrap().as_str() == Some("serve.request"))
        .expect("request root in the profile tree");
    assert!(request_node.get("count").unwrap().as_u64().unwrap() >= 1);

    let (status, body) = request(handle.addr, "GET", "/debug/profile?reset=1", "");
    assert_eq!(status, 200);
    assert_eq!(body, "profile reset\n");
    handle.shutdown();
}
