//! The event calendar: a priority queue of timestamped events.
//!
//! Events at equal timestamps are delivered in FIFO (insertion) order, which
//! keeps simulations deterministic: a tie never depends on heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a particular time, ordered for a min-heap.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
///
/// ```
/// use simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "b");
/// q.schedule(SimTime::from_secs(1.0), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 'c');
        q.schedule(SimTime::from_secs(1.0), 'a');
        q.schedule(SimTime::from_secs(2.0), 'b');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
