//! The event calendar: a priority queue of timestamped events.
//!
//! Events at equal timestamps are delivered in FIFO (insertion) order, which
//! keeps simulations deterministic: a tie never depends on heap internals.
//!
//! The calendar is an indexed 4-ary heap over small `(time, seq, slot)`
//! keys with event payloads parked in a slab. Sift operations move only
//! the 20-byte keys — payloads stay put until popped — and a 4-ary
//! layout halves the tree depth of a binary heap, so the hot
//! schedule/pop cycle touches fewer cache lines than the former
//! `BinaryHeap<Scheduled<E>>`. The slab plus [`EventQueue::clear`] let
//! one calendar's allocations be reused across simulation runs.

use crate::time::SimTime;

/// Heap arity. Four children per node halves the depth of a binary
/// heap; keys are small enough that one node's children share a cache
/// line or two.
const ARITY: usize = 4;

/// A heap key: ordering fields plus the slab index of the payload.
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Key {
    /// Min-heap order: earliest time first, insertion order on ties —
    /// exactly the `(time, seq)` order the old binary heap used.
    #[inline]
    fn earlier(&self, other: &Key) -> bool {
        match self.time.cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// A deterministic event calendar.
///
/// ```
/// use simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "b");
/// q.schedule(SimTime::from_secs(1.0), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: Vec<Key>,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// An empty calendar with room for `capacity` pending events before
    /// any allocation grows.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        let spare = self.free.len() + (self.slots.capacity() - self.slots.len());
        self.heap.reserve(additional);
        if additional > spare {
            self.slots.reserve(additional - spare);
        }
    }

    /// Drop all pending events and reset the insertion sequence,
    /// keeping every allocation for reuse by the next run.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.seq = 0;
    }

    /// Schedule `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("event calendar slot overflow");
                self.slots.push(Some(event));
                s
            }
        };
        self.heap.push(Key { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let event = self.slots[top.slot as usize]
            .take()
            .expect("heap key points at an occupied slot");
        self.free.push(top.slot);
        Some((top.time, event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        let key = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if !key.earlier(&self.heap[parent]) {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = key;
    }

    fn sift_down(&mut self, mut i: usize) {
        let key = self.heap[i];
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                if self.heap[c].earlier(&self.heap[best]) {
                    best = c;
                }
            }
            if !self.heap[best].earlier(&key) {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 'c');
        q.schedule(SimTime::from_secs(1.0), 'a');
        q.schedule(SimTime::from_secs(2.0), 'b');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_state_but_keeps_capacity() {
        let mut q = EventQueue::with_capacity(16);
        for i in 0..10 {
            q.schedule(SimTime::from_secs(i as f64), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // The sequence restarts, so a cleared calendar behaves exactly
        // like a fresh one — FIFO order is re-established from zero.
        let t = SimTime::from_secs(1.0);
        q.schedule(t, 100);
        q.schedule(t, 200);
        assert_eq!(q.pop(), Some((t, 100)));
        assert_eq!(q.pop(), Some((t, 200)));
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        // Exercise slab slot reuse: pops free slots that later
        // schedules re-occupy, while the (time, seq) order must stay
        // exact.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), 'b');
        q.schedule(SimTime::from_secs(1.0), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 'a')));
        q.schedule(SimTime::from_secs(1.5), 'c');
        q.schedule(SimTime::from_secs(3.0), 'd');
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.5), 'c')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3.0), 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_reference_binary_heap_order() {
        // Property check against a reference implementation: the
        // indexed 4-ary heap must pop the exact sequence a
        // (time, seq)-ordered binary heap would, including ties.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Deterministic pseudo-random times with plenty of collisions.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for round in 0..50 {
            for _ in 0..20 {
                let t = (next() % 16) as f64 + round as f64;
                let id = next() as u32;
                q.schedule(SimTime::from_secs(t), id);
                reference.push(Reverse((SimTime::from_secs(t).0.to_bits(), seq, id)));
                seq += 1;
            }
            for _ in 0..15 {
                let got = q.pop();
                let want = reference
                    .pop()
                    .map(|Reverse((bits, _, id))| (SimTime(f64::from_bits(bits)), id));
                assert_eq!(got, want);
            }
        }
        while let Some(got) = q.pop() {
            let Reverse((bits, _, id)) = reference.pop().unwrap();
            assert_eq!(got, (SimTime(f64::from_bits(bits)), id));
        }
        assert!(reference.is_empty());
    }
}
