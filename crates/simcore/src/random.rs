//! Random variates for the simulator.
//!
//! Everything is parameterized by *mean* and *coefficient of variation*
//! (CV = σ/μ), the two moments the paper's model and job profiles carry.
//! [`Rv::from_mean_cv`] picks the textbook family for a CV, mirroring the
//! Erlang/hyperexponential split the paper uses on the analytic side
//! (§4.2.4): Erlang for CV ≤ 1, two-phase hyperexponential (balanced means)
//! for CV > 1.

use rand::Rng;

/// A random variate generator with known first two moments.
#[derive(Debug, Clone, PartialEq)]
pub enum Rv {
    /// Constant value.
    Det(f64),
    /// Exponential with the given mean.
    Exp { mean: f64 },
    /// Erlang-`k`: sum of `k` iid exponentials, total mean `mean`.
    Erlang { k: u32, mean: f64 },
    /// Two-phase hyperexponential: with prob. `p` exponential of mean
    /// `mean1`, else exponential of mean `mean2`.
    HyperExp2 { p: f64, mean1: f64, mean2: f64 },
    /// Uniform on `[lo, hi]`.
    Uniform { lo: f64, hi: f64 },
    /// Lognormal with the given mean and CV of the *value* (not of log).
    LogNormal { mean: f64, cv: f64 },
}

impl Rv {
    /// Choose a family matching `mean` and `cv` exactly:
    /// `cv == 0` → deterministic; `cv < 1` → Erlang-k with an exact
    /// two-moment match via a mixture is avoided — we use lognormal when an
    /// exact Erlang match is impossible; `cv == 1` → exponential;
    /// `cv > 1` → balanced-means H2.
    ///
    /// Erlang-k only realizes CVs of `1/sqrt(k)`; for intermediate CVs this
    /// constructor returns a lognormal, which matches both moments exactly
    /// and stays positive. The analytic side (crate `queueing`) makes the
    /// corresponding Erlang approximation, as the paper prescribes.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Rv {
        assert!(mean >= 0.0 && cv >= 0.0, "mean/cv must be non-negative");
        if mean == 0.0 || cv == 0.0 {
            return Rv::Det(mean);
        }
        if (cv - 1.0).abs() < 1e-12 {
            return Rv::Exp { mean };
        }
        if cv > 1.0 {
            return Rv::hyperexp_balanced(mean, cv);
        }
        let k = (1.0 / (cv * cv)).round().max(1.0) as u32;
        let erlang_cv = 1.0 / (k as f64).sqrt();
        if (erlang_cv - cv).abs() < 1e-9 {
            Rv::Erlang { k, mean }
        } else {
            Rv::LogNormal { mean, cv }
        }
    }

    /// Balanced-means two-phase hyperexponential matching (mean, cv > 1).
    ///
    /// Balanced means: `p/μ1 = (1-p)/μ2`. Standard construction:
    /// `p = (1 + sqrt((c²-1)/(c²+1)))/2`, rates `λ1 = 2p/mean`,
    /// `λ2 = 2(1-p)/mean`.
    pub fn hyperexp_balanced(mean: f64, cv: f64) -> Rv {
        assert!(cv > 1.0, "H2 needs cv > 1");
        let c2 = cv * cv;
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        Rv::HyperExp2 {
            p,
            mean1: mean / (2.0 * p),
            mean2: mean / (2.0 * (1.0 - p)),
        }
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        match *self {
            Rv::Det(v) => v,
            Rv::Exp { mean } => mean,
            Rv::Erlang { mean, .. } => mean,
            Rv::HyperExp2 { p, mean1, mean2 } => p * mean1 + (1.0 - p) * mean2,
            Rv::Uniform { lo, hi } => 0.5 * (lo + hi),
            Rv::LogNormal { mean, .. } => mean,
        }
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Rv::Det(_) => 0.0,
            Rv::Exp { mean } => mean * mean,
            Rv::Erlang { k, mean } => mean * mean / k as f64,
            Rv::HyperExp2 { p, mean1, mean2 } => {
                let m1 = p * mean1 + (1.0 - p) * mean2;
                let m2 = 2.0 * (p * mean1 * mean1 + (1.0 - p) * mean2 * mean2);
                m2 - m1 * m1
            }
            Rv::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Rv::LogNormal { mean, cv } => (mean * cv) * (mean * cv),
        }
    }

    /// Coefficient of variation σ/μ (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Rv::Det(v) => v,
            Rv::Exp { mean } => sample_exp(rng, mean),
            Rv::Erlang { k, mean } => {
                let per = mean / k as f64;
                (0..k).map(|_| sample_exp(rng, per)).sum()
            }
            Rv::HyperExp2 { p, mean1, mean2 } => {
                if rng.gen::<f64>() < p {
                    sample_exp(rng, mean1)
                } else {
                    sample_exp(rng, mean2)
                }
            }
            Rv::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            Rv::LogNormal { mean, cv } => {
                // Match moments of the lognormal: if X = exp(μ + σZ),
                // E[X] = exp(μ + σ²/2), CV² = exp(σ²) − 1.
                let sigma2 = (1.0 + cv * cv).ln();
                let mu = mean.ln() - 0.5 * sigma2;
                let z = sample_std_normal(rng);
                (mu + sigma2.sqrt() * z).exp()
            }
        }
    }

    /// Multiply the variate by a positive constant (scales mean and σ,
    /// preserves CV).
    pub fn scaled(&self, factor: f64) -> Rv {
        assert!(factor >= 0.0);
        match *self {
            Rv::Det(v) => Rv::Det(v * factor),
            Rv::Exp { mean } => Rv::Exp {
                mean: mean * factor,
            },
            Rv::Erlang { k, mean } => Rv::Erlang {
                k,
                mean: mean * factor,
            },
            Rv::HyperExp2 { p, mean1, mean2 } => Rv::HyperExp2 {
                p,
                mean1: mean1 * factor,
                mean2: mean2 * factor,
            },
            Rv::Uniform { lo, hi } => Rv::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Rv::LogNormal { mean, cv } => Rv::LogNormal {
                mean: mean * factor,
                cv,
            },
        }
    }
}

#[inline]
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Box–Muller standard normal.
#[inline]
fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical(rv: &Rv, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| rv.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn moments_match_for_all_families() {
        let cases = [
            Rv::Det(3.0),
            Rv::Exp { mean: 2.0 },
            Rv::Erlang { k: 4, mean: 2.0 },
            Rv::hyperexp_balanced(2.0, 2.0),
            Rv::Uniform { lo: 1.0, hi: 3.0 },
            Rv::LogNormal { mean: 2.0, cv: 0.7 },
        ];
        let cases = &cases;
        for (i, rv) in cases.iter().enumerate() {
            let (m, v) = empirical(rv, 200_000, 42 + i as u64);
            assert!(
                (m - rv.mean()).abs() / rv.mean().max(1e-9) < 0.03,
                "{rv:?}: empirical mean {m} vs {}",
                rv.mean()
            );
            if rv.variance() > 0.0 {
                assert!(
                    (v - rv.variance()).abs() / rv.variance() < 0.08,
                    "{rv:?}: empirical var {v} vs {}",
                    rv.variance()
                );
            }
        }
    }

    #[test]
    fn from_mean_cv_families() {
        assert_eq!(Rv::from_mean_cv(5.0, 0.0), Rv::Det(5.0));
        assert_eq!(Rv::from_mean_cv(5.0, 1.0), Rv::Exp { mean: 5.0 });
        assert_eq!(Rv::from_mean_cv(5.0, 0.5), Rv::Erlang { k: 4, mean: 5.0 });
        match Rv::from_mean_cv(5.0, 2.0) {
            Rv::HyperExp2 { .. } => {}
            other => panic!("expected H2, got {other:?}"),
        }
        // CV that no Erlang can match exactly → lognormal.
        match Rv::from_mean_cv(5.0, 0.6) {
            Rv::LogNormal { .. } => {}
            other => panic!("expected lognormal, got {other:?}"),
        }
    }

    #[test]
    fn constructed_moments_are_exact() {
        for cv in [0.0, 0.3, 0.5, 0.6, 1.0, 1.5, 3.0] {
            let rv = Rv::from_mean_cv(7.0, cv);
            assert!(
                (rv.mean() - 7.0).abs() < 1e-9,
                "cv={cv}: mean {}",
                rv.mean()
            );
            assert!((rv.cv() - cv).abs() < 1e-9, "cv={cv}: got {}", rv.cv());
        }
    }

    #[test]
    fn scaling_preserves_cv() {
        let rv = Rv::from_mean_cv(4.0, 1.7).scaled(2.5);
        assert!((rv.mean() - 10.0).abs() < 1e-9);
        assert!((rv.cv() - 1.7).abs() < 1e-9);
    }
}
