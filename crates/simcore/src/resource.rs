//! Shared-resource models used by the cluster simulator.
//!
//! Two service disciplines cover every physical resource in the Hadoop
//! cluster model:
//!
//! * [`FairShare`] — generalized processor sharing with a per-customer rate
//!   cap. A node CPU is `FairShare` with capacity = #cores (each task caps
//!   at 1 core); a disk or NIC is `FairShare` with capacity = bandwidth in
//!   bytes/s (flows split the bandwidth max–min fairly).
//! * [`Fcfs`] — a multi-server first-come-first-served queue, used for
//!   serialized devices and as a textbook M/M/c ground truth in tests.
//!
//! Both are *passive* state machines: they never schedule events themselves.
//! After every mutation the owner asks [`FairShare::next_completion`] (or
//! [`Fcfs::next_completion`]) and schedules a tick in its own event queue,
//! carrying the resource's `generation()`; stale ticks (generation mismatch)
//! are dropped. This keeps the resource reusable under any event loop.

use crate::time::SimTime;

/// Relative tolerance used to decide a customer's work is exhausted.
const WORK_EPS_REL: f64 = 1e-9;
/// Absolute tolerance for very small work amounts.
const WORK_EPS_ABS: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Share<K> {
    key: K,
    remaining: f64,
    total: f64,
}

/// Generalized processor-sharing resource with a per-customer rate cap.
///
/// With `n` active customers each receives `min(cap, capacity / n)` units of
/// work per second, i.e. max–min fair sharing of `capacity` where no
/// customer can use more than `cap`.
#[derive(Debug, Clone)]
pub struct FairShare<K> {
    capacity: f64,
    per_customer_cap: f64,
    active: Vec<Share<K>>,
    last_update: SimTime,
    generation: u64,
    /// Time-integral of the number of active customers (for utilization).
    busy_area: f64,
    /// Time-integral of delivered service rate.
    service_area: f64,
}

impl<K: Clone + PartialEq> FairShare<K> {
    /// A resource delivering `capacity` work-units/second in aggregate, at
    /// most `per_customer_cap` work-units/second to any single customer.
    pub fn new(capacity: f64, per_customer_cap: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(per_customer_cap > 0.0, "per-customer cap must be positive");
        FairShare {
            capacity,
            per_customer_cap,
            active: Vec::new(),
            last_update: SimTime::ZERO,
            generation: 0,
            busy_area: 0.0,
            service_area: 0.0,
        }
    }

    /// The per-customer service rate with `n` active customers.
    #[inline]
    fn rate(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            (self.capacity / n as f64).min(self.per_customer_cap)
        }
    }

    /// Current per-customer rate.
    pub fn current_rate(&self) -> f64 {
        self.rate(self.active.len())
    }

    /// Number of in-flight customers.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Monotone counter bumped on every state change; owners stamp scheduled
    /// ticks with it and ignore stale ticks.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Integrate progress from `last_update` to `now` at the current rate.
    fn integrate_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            let n = self.active.len();
            let rate = self.rate(n);
            for s in &mut self.active {
                s.remaining -= rate * dt;
            }
            self.busy_area += n as f64 * dt;
            self.service_area += rate * n as f64 * dt;
        }
        self.last_update = self.last_update.max(now);
    }

    /// Admit a customer with `work` units of demand at time `now`.
    ///
    /// Customers with non-positive work complete instantaneously and are
    /// returned by the next [`FairShare::collect_finished`] call.
    pub fn admit(&mut self, now: SimTime, key: K, work: f64) {
        self.integrate_to(now);
        self.active.push(Share {
            key,
            remaining: work.max(0.0),
            total: work.max(0.0),
        });
        self.generation += 1;
    }

    /// Remove a customer before completion (e.g. a killed task). Returns the
    /// remaining work, or `None` if the key is not active.
    pub fn cancel(&mut self, now: SimTime, key: &K) -> Option<f64> {
        self.integrate_to(now);
        let idx = self.active.iter().position(|s| &s.key == key)?;
        let share = self.active.swap_remove(idx);
        self.generation += 1;
        Some(share.remaining.max(0.0))
    }

    /// Advance to `now` and return all customers whose work is exhausted,
    /// in admission order.
    pub fn collect_finished(&mut self, now: SimTime) -> Vec<K> {
        self.integrate_to(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let s = &self.active[i];
            let eps = WORK_EPS_ABS + WORK_EPS_REL * s.total;
            if s.remaining <= eps {
                done.push(self.active.remove(i).key);
            } else {
                i += 1;
            }
        }
        if !done.is_empty() {
            self.generation += 1;
        }
        done
    }

    /// The absolute time of the next completion, assuming no further state
    /// change, or `None` if idle.
    ///
    /// Strictly after `last_update` whenever uncollectable work remains:
    /// when a tiny residual's `remaining / rate` underflows the f64
    /// resolution at the current timestamp (e.g. a 1-byte transfer late
    /// in a long run), `last_update + dt` rounds back to `last_update`,
    /// and a tick scheduled there would integrate a zero-length step,
    /// collect nothing, and re-arm itself at the same instant forever.
    /// Nudging one ulp forward makes that tick drain `rate * ulp` work,
    /// which by construction exceeds any residual small enough to have
    /// underflowed. Residuals within the completion tolerance keep the
    /// exact `last_update` time — they are collectable as-is.
    pub fn next_completion(&self) -> Option<SimTime> {
        let rate = self.current_rate();
        if rate <= 0.0 {
            return None;
        }
        let s = self
            .active
            .iter()
            .min_by(|a, b| a.remaining.total_cmp(&b.remaining))?;
        let t = self.last_update + s.remaining.max(0.0) / rate;
        let eps = WORK_EPS_ABS + WORK_EPS_REL * s.total;
        if t > self.last_update || s.remaining <= eps {
            Some(t)
        } else {
            Some(SimTime(f64::from_bits(self.last_update.0.to_bits() + 1)))
        }
    }

    /// Average number of active customers over `[0, now]`.
    pub fn mean_active(&mut self, now: SimTime) -> f64 {
        self.integrate_to(now);
        if now.as_secs() <= 0.0 {
            0.0
        } else {
            self.busy_area / now.as_secs()
        }
    }

    /// Fraction of aggregate capacity used over `[0, now]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.integrate_to(now);
        if now.as_secs() <= 0.0 {
            0.0
        } else {
            self.service_area / (self.capacity * now.as_secs())
        }
    }
}

/// One waiting or in-service customer of an [`Fcfs`] queue.
#[derive(Debug, Clone)]
struct FcfsJob<K> {
    key: K,
    service: f64,
    /// Set when the job enters service.
    completes_at: Option<SimTime>,
}

/// A multi-server FCFS queue with deterministic per-job service times
/// decided at arrival.
#[derive(Debug, Clone)]
pub struct Fcfs<K> {
    servers: usize,
    jobs: Vec<FcfsJob<K>>,
    generation: u64,
    /// Completed-but-uncollected jobs.
    finished: Vec<K>,
    busy_area: f64,
    last_update: SimTime,
}

impl<K: Clone + PartialEq> Fcfs<K> {
    /// An FCFS station with `servers` identical servers.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "need at least one server");
        Fcfs {
            servers,
            jobs: Vec::new(),
            generation: 0,
            finished: Vec::new(),
            busy_area: 0.0,
            last_update: SimTime::ZERO,
        }
    }

    fn integrate_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        if dt > 0.0 {
            let busy = self
                .jobs
                .iter()
                .filter(|j| j.completes_at.is_some())
                .count();
            self.busy_area += busy as f64 * dt;
        }
        self.last_update = self.last_update.max(now);
    }

    /// Start any queued jobs for which a server is free.
    fn dispatch(&mut self, now: SimTime) {
        let in_service = self
            .jobs
            .iter()
            .filter(|j| j.completes_at.is_some())
            .count();
        let mut free = self.servers.saturating_sub(in_service);
        for job in self.jobs.iter_mut() {
            if free == 0 {
                break;
            }
            if job.completes_at.is_none() {
                job.completes_at = Some(now + job.service);
                free -= 1;
            }
        }
    }

    /// Enqueue a job with the given service demand (seconds).
    pub fn arrive(&mut self, now: SimTime, key: K, service: f64) {
        self.integrate_to(now);
        self.jobs.push(FcfsJob {
            key,
            service: service.max(0.0),
            completes_at: None,
        });
        self.dispatch(now);
        self.generation += 1;
    }

    /// Advance to `now`; move jobs whose service finished into the finished
    /// set and return them in completion order.
    pub fn collect_finished(&mut self, now: SimTime) -> Vec<K> {
        self.integrate_to(now);
        let mut i = 0;
        let mut newly = false;
        while i < self.jobs.len() {
            match self.jobs[i].completes_at {
                Some(t) if t <= now + 1e-12 => {
                    let job = self.jobs.remove(i);
                    self.finished.push(job.key);
                    newly = true;
                }
                _ => i += 1,
            }
        }
        if newly {
            self.dispatch(now);
            self.generation += 1;
        }
        std::mem::take(&mut self.finished)
    }

    /// Time of the next completion, if any job is in service.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.jobs.iter().filter_map(|j| j.completes_at).min()
    }

    /// Jobs currently waiting or in service.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the station is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Monotone state-change counter (see [`FairShare::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Mean number of busy servers over `[0, now]`.
    pub fn mean_busy(&mut self, now: SimTime) -> f64 {
        self.integrate_to(now);
        if now.as_secs() <= 0.0 {
            0.0
        } else {
            self.busy_area / now.as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_customer_runs_at_cap() {
        // Capacity 12 cores, cap 1 core: one task of 5 core-seconds takes 5s.
        let mut cpu = FairShare::new(12.0, 1.0);
        cpu.admit(SimTime::ZERO, "t1", 5.0);
        assert_eq!(cpu.next_completion(), Some(SimTime::from_secs(5.0)));
        let done = cpu.collect_finished(SimTime::from_secs(5.0));
        assert_eq!(done, vec!["t1"]);
        assert_eq!(cpu.active_count(), 0);
    }

    #[test]
    fn contention_slows_everyone() {
        // Capacity 2, cap 1: four tasks of 4 units each share rate 0.5.
        let mut cpu = FairShare::new(2.0, 1.0);
        for k in 0..4 {
            cpu.admit(SimTime::ZERO, k, 4.0);
        }
        let t = cpu.next_completion().unwrap();
        assert!((t.as_secs() - 8.0).abs() < 1e-6, "got {t}");
        let done = cpu.collect_finished(t);
        assert_eq!(done.len(), 4);
    }

    #[test]
    fn rate_recomputes_on_departure() {
        // Two tasks on capacity 1 (cap 1): each runs at 0.5. Task a has 1
        // unit, task b has 2 units. a finishes at t=2; then b runs at rate 1
        // and finishes its remaining 1 unit at t=3.
        let mut r = FairShare::new(1.0, 1.0);
        r.admit(SimTime::ZERO, 'a', 1.0);
        r.admit(SimTime::ZERO, 'b', 2.0);
        let t1 = r.next_completion().unwrap();
        assert!((t1.as_secs() - 2.0).abs() < 1e-6);
        assert_eq!(r.collect_finished(t1), vec!['a']);
        let t2 = r.next_completion().unwrap();
        assert!((t2.as_secs() - 3.0).abs() < 1e-6, "got {t2}");
        assert_eq!(r.collect_finished(t2), vec!['b']);
    }

    #[test]
    fn late_arrival_shares_fairly() {
        // Link of 10 bytes/s, no per-flow cap bite (cap=10). Flow a: 100
        // bytes at t=0. Flow b: 30 bytes at t=5. At t=5, a has 50 left; both
        // run at 5/s. b finishes at t=11, a at t=5 + (50-30)/10... compute:
        // t in [5,11): each gets 5/s, b's 30 bytes done at t=11, a has
        // 50-30=20 left, then rate 10/s → done at t=13.
        let mut link = FairShare::new(10.0, 10.0);
        link.admit(SimTime::ZERO, 'a', 100.0);
        link.admit(SimTime::from_secs(5.0), 'b', 30.0);
        let t = link.next_completion().unwrap();
        assert!((t.as_secs() - 11.0).abs() < 1e-6, "got {t}");
        assert_eq!(link.collect_finished(t), vec!['b']);
        let t = link.next_completion().unwrap();
        assert!((t.as_secs() - 13.0).abs() < 1e-6, "got {t}");
        assert_eq!(link.collect_finished(t), vec!['a']);
    }

    #[test]
    fn cancel_removes_customer() {
        let mut r = FairShare::new(1.0, 1.0);
        r.admit(SimTime::ZERO, 'a', 10.0);
        r.admit(SimTime::ZERO, 'b', 10.0);
        let left = r.cancel(SimTime::from_secs(2.0), &'a').unwrap();
        // 2 seconds at rate 0.5 → 9 units remain.
        assert!((left - 9.0).abs() < 1e-9);
        assert_eq!(r.active_count(), 1);
        assert!(r.cancel(SimTime::from_secs(2.0), &'z').is_none());
    }

    #[test]
    fn utilization_accounting() {
        let mut r = FairShare::new(2.0, 1.0);
        r.admit(SimTime::ZERO, 'a', 1.0);
        let t = r.next_completion().unwrap();
        r.collect_finished(t);
        // One task at rate 1 for 1s on capacity 2 → utilization 0.5 over [0,1].
        let u = r.utilization(SimTime::from_secs(1.0));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
        assert!((r.mean_active(SimTime::from_secs(1.0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_two_servers() {
        let mut q = Fcfs::new(2);
        q.arrive(SimTime::ZERO, 1, 4.0);
        q.arrive(SimTime::ZERO, 2, 2.0);
        q.arrive(SimTime::ZERO, 3, 1.0); // waits for a server
        assert_eq!(q.next_completion(), Some(SimTime::from_secs(2.0)));
        let done = q.collect_finished(SimTime::from_secs(2.0));
        assert_eq!(done, vec![2]);
        // Job 3 starts at t=2, finishes at t=3.
        assert_eq!(q.next_completion(), Some(SimTime::from_secs(3.0)));
        let done = q.collect_finished(SimTime::from_secs(3.0));
        assert_eq!(done, vec![3]);
        let done = q.collect_finished(SimTime::from_secs(4.0));
        assert_eq!(done, vec![1]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut r = FairShare::new(1.0, 1.0);
        r.admit(SimTime::ZERO, 'a', 0.0);
        assert_eq!(r.next_completion(), Some(SimTime::ZERO));
        assert_eq!(r.collect_finished(SimTime::ZERO), vec!['a']);
    }

    #[test]
    fn sub_ulp_residual_completes_at_a_strictly_later_time() {
        // A 1e-7-unit residual on a 1e8-rate resource at t=70 needs
        // dt=1e-15, below the f64 ulp of 70 (~7e-15): `last_update + dt`
        // rounds back to 70 exactly. The reported completion must still
        // be strictly later, or an owner re-arming ticks off
        // `next_completion` spins at a frozen timestamp forever.
        let mut disk = FairShare::new(1e8, 1e8);
        let t0 = SimTime::from_secs(70.0);
        disk.admit(t0, "tail", 1e-7);
        let next = disk.next_completion().unwrap();
        assert!(next > t0, "no representable progress: {next} vs {t0}");
        assert_eq!(disk.collect_finished(next), vec!["tail"]);
        assert_eq!(disk.active_count(), 0);
    }
}
