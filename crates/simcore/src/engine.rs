//! A minimal event-loop driver tying a clock to an [`EventQueue`].
//!
//! Domain simulators (YARN, MapReduce) own an `Engine<E>` with their own
//! event enum `E` and drain it with [`Engine::next`], dispatching on the
//! event payload. The engine enforces that simulated time never moves
//! backwards and counts processed events for benchmark reporting. On
//! drop each engine publishes its lifetime totals — events processed
//! and peak calendar depth — into the `mr2-obs` registry, so the cost
//! is two atomic operations per *engine*, not per event.

use std::sync::OnceLock;

use crate::event::EventQueue;
use crate::time::SimTime;

/// Events processed across all engines in this process.
fn sim_events() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_sim_events_total",
            "Events processed by discrete-event simulation engines.",
        )
    })
}

/// Distribution of per-engine peak event-calendar depths.
fn sim_heap_depth() -> &'static mr2_obs::Histogram {
    static H: OnceLock<mr2_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        mr2_obs::histogram(
            "mr2_sim_event_heap_depth",
            "Peak pending-event calendar depth, one observation per simulation engine.",
            mr2_obs::Buckets::DEPTH,
        )
    })
}

/// Clock + calendar. See the module docs.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    peak_pending: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }

    /// A fresh engine at time zero reusing `queue`'s allocations.
    ///
    /// The queue is cleared first, so a calendar handed from a finished
    /// run starts the next one empty but warm — no re-growing the heap
    /// and slab every repetition. Pair with [`Engine::take_queue`].
    pub fn with_queue(mut queue: EventQueue<E>) -> Self {
        queue.clear();
        Engine {
            now: SimTime::ZERO,
            queue,
            processed: 0,
            peak_pending: 0,
        }
    }

    /// Extract the calendar for reuse by a later engine, leaving this
    /// one empty. Drop still publishes the engine's lifetime totals.
    pub fn take_queue(&mut self) -> EventQueue<E> {
        std::mem::take(&mut self.queue)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at absolute time `t`. Panics if `t` is in the past.
    pub fn schedule_at(&mut self, t: SimTime, event: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: now={}, t={}",
            self.now,
            t
        );
        self.queue.schedule(t, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedule an event `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay.max(0.0), event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self semantics with side effects on the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

impl<E> Drop for Engine<E> {
    fn drop(&mut self) {
        // Engines that never scheduled anything (e.g. constructed and
        // discarded) stay out of the registry.
        if self.processed > 0 || self.peak_pending > 0 {
            sim_events().add(self.processed);
            sim_heap_depth().observe(self.peak_pending as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut eng = Engine::new();
        eng.schedule_in(2.0, Ev::Tick(2));
        eng.schedule_in(1.0, Ev::Tick(1));
        let (t1, e1) = eng.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_secs(1.0), Ev::Tick(1)));
        assert_eq!(eng.now(), SimTime::from_secs(1.0));
        // Scheduling relative to the new now.
        eng.schedule_in(0.5, Ev::Tick(3));
        let (t2, e2) = eng.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(1.5), Ev::Tick(3)));
        let (t3, _) = eng.next().unwrap();
        assert_eq!(t3, SimTime::from_secs(2.0));
        assert!(eng.next().is_none());
        assert_eq!(eng.processed(), 3);
        assert_eq!(eng.peak_pending(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(5.0, Ev::Tick(1));
        eng.next();
        eng.schedule_at(SimTime::from_secs(1.0), Ev::Tick(2));
    }

    #[test]
    fn queue_reuse_across_engines_preserves_behaviour() {
        let mut first = Engine::new();
        first.schedule_in(1.0, Ev::Tick(1));
        first.schedule_in(1.0, Ev::Tick(2));
        first.next();
        let queue = first.take_queue();
        assert_eq!(first.pending(), 0, "calendar moved out");

        // The reused calendar starts the next run empty at time zero,
        // with FIFO tie order re-established from scratch.
        let mut second = Engine::with_queue(queue);
        assert_eq!(second.now(), SimTime::ZERO);
        assert_eq!(second.pending(), 0);
        second.schedule_in(3.0, Ev::Tick(10));
        second.schedule_in(3.0, Ev::Tick(20));
        assert_eq!(second.next(), Some((SimTime::from_secs(3.0), Ev::Tick(10))));
        assert_eq!(second.next(), Some((SimTime::from_secs(3.0), Ev::Tick(20))));
    }

    #[test]
    fn drop_publishes_lifetime_totals() {
        let events = sim_events();
        let depth = sim_heap_depth();
        let (e0, d0) = (events.value(), depth.count());
        {
            let mut eng = Engine::new();
            eng.schedule_in(1.0, Ev::Tick(1));
            eng.schedule_in(2.0, Ev::Tick(2));
            eng.next();
        }
        // Other tests drop engines concurrently, so assert growth, not
        // exact totals.
        assert!(events.value() > e0, "processed events published");
        assert!(depth.count() > d0, "depth observation published");
    }
}
