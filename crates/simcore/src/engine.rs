//! A minimal event-loop driver tying a clock to an [`EventQueue`].
//!
//! Domain simulators (YARN, MapReduce) own an `Engine<E>` with their own
//! event enum `E` and drain it with [`Engine::next`], dispatching on the
//! event payload. The engine enforces that simulated time never moves
//! backwards and counts processed events for benchmark reporting.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Clock + calendar. See the module docs.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at absolute time `t`. Panics if `t` is in the past.
    pub fn schedule_at(&mut self, t: SimTime, event: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: now={}, t={}",
            self.now,
            t
        );
        self.queue.schedule(t, event);
    }

    /// Schedule an event `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay.max(0.0), event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self semantics with side effects on the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut eng = Engine::new();
        eng.schedule_in(2.0, Ev::Tick(2));
        eng.schedule_in(1.0, Ev::Tick(1));
        let (t1, e1) = eng.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_secs(1.0), Ev::Tick(1)));
        assert_eq!(eng.now(), SimTime::from_secs(1.0));
        // Scheduling relative to the new now.
        eng.schedule_in(0.5, Ev::Tick(3));
        let (t2, e2) = eng.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(1.5), Ev::Tick(3)));
        let (t3, _) = eng.next().unwrap();
        assert_eq!(t3, SimTime::from_secs(2.0));
        assert!(eng.next().is_none());
        assert_eq!(eng.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(5.0, Ev::Tick(1));
        eng.next();
        eng.schedule_at(SimTime::from_secs(1.0), Ev::Tick(2));
    }
}
