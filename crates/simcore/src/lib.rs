//! # simcore — discrete-event simulation engine
//!
//! The substrate beneath the Hadoop 2.x cluster simulator: simulated time
//! ([`SimTime`]), a deterministic event calendar ([`EventQueue`]) and loop
//! driver ([`Engine`]), fair-share and FCFS resource models
//! ([`FairShare`], [`Fcfs`]), two-moment random variates ([`Rv`]) and
//! online statistics ([`Welford`], [`Samples`], [`TimeWeighted`]).
//!
//! Design rules:
//! * deterministic given a seed — ties in the calendar break FIFO;
//! * resources are passive state machines driven by the owner's event loop
//!   (generation counters invalidate stale completion ticks);
//! * everything is measured in seconds and bytes.

pub mod engine;
pub mod event;
pub mod random;
pub mod resource;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use event::EventQueue;
pub use random::Rv;
pub use resource::{FairShare, Fcfs};
pub use stats::{Samples, TimeWeighted, Welford};
pub use time::SimTime;
