//! Simulated time.
//!
//! Time is a non-negative `f64` measured in **seconds** since the start of
//! the simulation. A newtype keeps it from being confused with durations or
//! ordinary floats, and provides a total order (`f64::total_cmp`) so it can
//! key the event calendar.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(pub f64);

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than any event the simulator will produce.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Construct from seconds. Panics on NaN or negative input in debug builds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s >= 0.0 && !s.is_nan(), "invalid SimTime: {s}");
        SimTime(s)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Whether this time is finite (i.e. not `FAR_FUTURE`).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    /// Elapsed seconds between two instants.
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::FAR_FUTURE > b);
        assert!(!SimTime::FAR_FUTURE.is_finite());
        assert!(a.is_finite());
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.5);
        let b = a + 2.5;
        assert_eq!(b.as_secs(), 4.0);
        assert!((b - a - 2.5).abs() < 1e-12);
        let mut c = a;
        c += 0.5;
        assert_eq!(c.as_secs(), 2.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000s");
    }
}
