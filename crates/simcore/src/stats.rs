//! Online statistics collectors for simulation output analysis.

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ (0 for zero mean).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collector that keeps all samples, for medians and quantiles (the paper
/// reports the *median of 5 runs* per configuration).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
}

impl Samples {
    /// Empty collector.
    pub fn new() -> Self {
        Samples { data: Vec::new() }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Median (interpolated for even counts; 0 if empty).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Linear-interpolated quantile, `q ∈ \[0, 1\]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mut sorted = self.data.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Borrow the raw observations.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or utilization over simulated time.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    area: f64,
    start: f64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            area: 0.0,
            start: t0,
        }
    }

    /// Record that the signal changed to `v` at time `t` (t must not go
    /// backwards).
    pub fn record(&mut self, t: f64, v: f64) {
        debug_assert!(t >= self.last_t - 1e-9, "time went backwards");
        self.area += self.last_v * (t - self.last_t).max(0.0);
        self.last_t = self.last_t.max(t);
        self.last_v = v;
    }

    /// Time-weighted mean over `[t0, t]`.
    pub fn mean_until(&self, t: f64) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            return self.last_v;
        }
        (self.area + self.last_v * (t - self.last_t).max(0.0)) / span
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn samples_median_odd_even() {
        let mut s = Samples::new();
        for x in [5.0, 1.0, 3.0] {
            s.push(x);
        }
        assert_eq!(s.median(), 3.0);
        s.push(7.0);
        assert_eq!(s.median(), 4.0); // interpolated between 3 and 5
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 7.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.record(1.0, 2.0); // value 0 on [0,1)
        tw.record(3.0, 4.0); // value 2 on [1,3)
                             // value 4 on [3,5): mean = (0*1 + 2*2 + 4*2)/5 = 12/5
        assert!((tw.mean_until(5.0) - 2.4).abs() < 1e-12);
        assert_eq!(tw.current(), 4.0);
    }
}
