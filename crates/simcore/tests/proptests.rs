//! Property-based tests of the simulation substrate.

use proptest::prelude::*;
use simcore::{FairShare, Rv, SimTime, Welford};

proptest! {
    /// Fair-share resources conserve work: every admitted customer
    /// eventually finishes, and total delivered service equals total
    /// admitted work regardless of arrival pattern.
    #[test]
    fn fair_share_conserves_work(
        arrivals in prop::collection::vec((0.0f64..100.0, 0.1f64..50.0), 1..20),
        capacity in 0.5f64..8.0,
        cap in 0.5f64..4.0,
    ) {
        let mut r = FairShare::new(capacity, cap);
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut done = 0usize;
        let mut next_id = 0usize;
        let mut t = SimTime::ZERO;
        let mut pending = sorted.into_iter().peekable();
        // Drive arrivals and completions in time order.
        loop {
            let next_completion = r.next_completion();
            let next_arrival = pending.peek().map(|&(at, _)| SimTime::from_secs(at));
            match (next_completion, next_arrival) {
                (None, None) => break,
                (Some(c), None) => {
                    t = c;
                    done += r.collect_finished(t).len();
                }
                (None, Some(a)) => {
                    t = t.max(a);
                    let (_, work) = pending.next().unwrap();
                    r.admit(t, next_id, work);
                    next_id += 1;
                }
                (Some(c), Some(a)) => {
                    if c <= a {
                        t = c;
                        done += r.collect_finished(t).len();
                    } else {
                        t = t.max(a);
                        let (_, work) = pending.next().unwrap();
                        r.admit(t, next_id, work);
                        next_id += 1;
                    }
                }
            }
        }
        prop_assert_eq!(done, arrivals.len(), "every customer must finish");
        prop_assert_eq!(r.active_count(), 0);
    }

    /// The per-customer rate never exceeds the cap nor the fair share.
    #[test]
    fn fair_share_rate_bounds(
        n in 1usize..50,
        capacity in 0.5f64..16.0,
        cap in 0.1f64..4.0,
    ) {
        let mut r = FairShare::new(capacity, cap);
        for i in 0..n {
            r.admit(SimTime::ZERO, i, 10.0);
        }
        let rate = r.current_rate();
        prop_assert!(rate <= cap + 1e-12);
        prop_assert!(rate <= capacity / n as f64 + 1e-12);
        prop_assert!(rate > 0.0);
    }

    /// Welford statistics agree with the two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let scale = var.abs().max(1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-6 * scale);
    }

    /// Constructed random variates match their declared first two moments.
    #[test]
    fn rv_moments_are_exact(mean in 0.1f64..100.0, cv in 0.0f64..3.0) {
        let rv = Rv::from_mean_cv(mean, cv);
        prop_assert!((rv.mean() - mean).abs() < 1e-9 * mean);
        if cv >= 1.0 || cv == 0.0 {
            prop_assert!((rv.cv() - cv).abs() < 1e-9);
        } else {
            // Erlang/lognormal branch: CV within the family's granularity.
            prop_assert!((rv.cv() - cv).abs() < 0.2);
        }
    }
}
