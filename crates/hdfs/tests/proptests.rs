//! Property-based tests of block placement and split generation.

use hdfs_sim::{splits_for_file, DefaultPlacement, Namespace, PlacementPolicy, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Replicas are always distinct nodes, capped by cluster size.
    #[test]
    fn replicas_distinct(
        rack_sizes in prop::collection::vec(1usize..5, 1..4),
        replication in 1usize..5,
        writer in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let topo = Topology::with_racks(&rack_sizes);
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = writer.then_some(hdfs_sim::NodeId(0));
        let replicas = DefaultPlacement.place(&topo, w, replication, &mut rng);
        prop_assert_eq!(replicas.len(), replication.min(topo.num_nodes()));
        let mut d = replicas.clone();
        d.sort();
        d.dedup();
        prop_assert_eq!(d.len(), replicas.len(), "duplicate replica nodes");
        if let Some(wn) = w {
            prop_assert_eq!(replicas[0], wn, "first replica must be writer-local");
        }
    }

    /// Splits tile the file exactly: one per block, lengths sum to the
    /// file size, every split no longer than the block size.
    #[test]
    fn splits_tile_files(
        len in 1u64..10_000_000,
        block in 1u64..2_000_000,
        nodes in 1usize..6,
        seed in any::<u64>(),
    ) {
        let topo = Topology::single_rack(nodes);
        let mut ns = Namespace::new(3);
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = ns.create_file(&topo, &DefaultPlacement, "/f", len, block, None, &mut rng);
        let splits = splits_for_file(f);
        prop_assert_eq!(splits.len() as u64, len.div_ceil(block));
        prop_assert_eq!(splits.iter().map(|s| s.len).sum::<u64>(), len);
        for s in &splits {
            prop_assert!(s.len <= block);
            prop_assert!(!s.hosts.is_empty());
        }
    }
}
