//! The filesystem namespace: files made of replicated blocks.

use crate::block::{Block, BlockId};
use crate::placement::PlacementPolicy;
use crate::topology::{NodeId, Topology};
use rand::Rng;
use std::collections::HashMap;

/// Metadata of one file.
#[derive(Debug, Clone)]
pub struct DfsFile {
    /// Path-like name, unique in the namespace.
    pub name: String,
    /// Total length in bytes.
    pub len: u64,
    /// Block size used when the file was written.
    pub block_size: u64,
    /// Blocks in order.
    pub blocks: Vec<Block>,
}

/// The NameNode's view of the filesystem.
#[derive(Debug, Clone)]
pub struct Namespace {
    files: HashMap<String, DfsFile>,
    next_block: u64,
    replication: usize,
}

impl Namespace {
    /// Empty namespace with a default replication factor (HDFS default: 3).
    pub fn new(replication: usize) -> Self {
        assert!(replication >= 1);
        Namespace {
            files: HashMap::new(),
            next_block: 0,
            replication,
        }
    }

    /// Configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Write a file of `len` bytes in blocks of `block_size`, choosing
    /// replica locations with `policy`. Returns a reference to the created
    /// file. Panics if the name already exists.
    #[allow(clippy::too_many_arguments)] // mirrors the HDFS create-file call
    pub fn create_file<P: PlacementPolicy, R: Rng + ?Sized>(
        &mut self,
        topo: &Topology,
        policy: &P,
        name: &str,
        len: u64,
        block_size: u64,
        writer: Option<NodeId>,
        rng: &mut R,
    ) -> &DfsFile {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            !self.files.contains_key(name),
            "file already exists: {name}"
        );
        let mut blocks = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let this = remaining.min(block_size);
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let replicas = policy.place(topo, writer, self.replication, rng);
            blocks.push(Block {
                id,
                len: this,
                replicas,
            });
            remaining -= this;
        }
        // A zero-length file still exists, with no blocks.
        self.files.insert(
            name.to_string(),
            DfsFile {
                name: name.to_string(),
                len,
                block_size,
                blocks,
            },
        );
        &self.files[name]
    }

    /// Look up a file.
    pub fn get(&self, name: &str) -> Option<&DfsFile> {
        self.files.get(name)
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Total number of block replicas stored on `node` across all files.
    pub fn replicas_on(&self, node: NodeId) -> usize {
        self.files
            .values()
            .flat_map(|f| &f.blocks)
            .filter(|b| b.is_local_to(node))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DefaultPlacement;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn file_blocks_cover_length() {
        let topo = Topology::single_rack(4);
        let mut ns = Namespace::new(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let f = ns.create_file(
            &topo,
            &DefaultPlacement,
            "/data/in",
            1000,
            300,
            None,
            &mut rng,
        );
        assert_eq!(f.blocks.len(), 4); // 300+300+300+100
        assert_eq!(f.blocks.iter().map(|b| b.len).sum::<u64>(), 1000);
        assert_eq!(f.blocks.last().unwrap().len, 100);
        for b in &f.blocks {
            assert_eq!(b.replicas.len(), 3);
        }
    }

    #[test]
    fn exact_multiple_has_no_short_block() {
        let topo = Topology::single_rack(3);
        let mut ns = Namespace::new(1);
        let mut rng = SmallRng::seed_from_u64(8);
        let f = ns.create_file(&topo, &DefaultPlacement, "/x", 600, 300, None, &mut rng);
        assert_eq!(f.blocks.len(), 2);
        assert!(f.blocks.iter().all(|b| b.len == 300));
    }

    #[test]
    fn zero_length_file() {
        let topo = Topology::single_rack(2);
        let mut ns = Namespace::new(1);
        let mut rng = SmallRng::seed_from_u64(9);
        let f = ns.create_file(&topo, &DefaultPlacement, "/empty", 0, 128, None, &mut rng);
        assert!(f.blocks.is_empty());
        assert_eq!(ns.num_files(), 1);
    }

    #[test]
    fn replica_census() {
        let topo = Topology::single_rack(3);
        let mut ns = Namespace::new(3);
        let mut rng = SmallRng::seed_from_u64(10);
        ns.create_file(&topo, &DefaultPlacement, "/a", 900, 300, None, &mut rng);
        // Replication 3 on 3 nodes: every node holds every block.
        for n in topo.nodes() {
            assert_eq!(ns.replicas_on(n), 3);
        }
    }

    #[test]
    #[should_panic(expected = "file already exists")]
    fn duplicate_name_rejected() {
        let topo = Topology::single_rack(2);
        let mut ns = Namespace::new(1);
        let mut rng = SmallRng::seed_from_u64(11);
        ns.create_file(&topo, &DefaultPlacement, "/a", 10, 10, None, &mut rng);
        ns.create_file(&topo, &DefaultPlacement, "/a", 10, 10, None, &mut rng);
    }
}
