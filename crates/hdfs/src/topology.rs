//! Cluster topology: nodes grouped into racks, with HDFS-style network
//! distances used by block placement and locality-aware scheduling.

use std::fmt;

/// Identifier of a worker node (also a YARN NodeManager host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u32);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Placement/topology map of the cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `node_rack[n]` = rack of node `n`.
    node_rack: Vec<RackId>,
    /// Nodes per rack, indexed by rack id.
    rack_nodes: Vec<Vec<NodeId>>,
}

impl Topology {
    /// All nodes in one rack — the common small-cluster benchmark layout
    /// (the paper's 4/6/8-node testbed).
    pub fn single_rack(nodes: usize) -> Self {
        Topology::with_racks(&[nodes])
    }

    /// Build from an explicit list of rack sizes.
    pub fn with_racks(rack_sizes: &[usize]) -> Self {
        assert!(!rack_sizes.is_empty(), "need at least one rack");
        let mut node_rack = Vec::new();
        let mut rack_nodes = Vec::new();
        let mut next = 0u32;
        for (r, &sz) in rack_sizes.iter().enumerate() {
            assert!(sz > 0, "empty rack {r}");
            let mut nodes = Vec::with_capacity(sz);
            for _ in 0..sz {
                node_rack.push(RackId(r as u32));
                nodes.push(NodeId(next));
                next += 1;
            }
            rack_nodes.push(nodes);
        }
        Topology {
            node_rack,
            rack_nodes,
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_rack.len()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.rack_nodes.len()
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_rack.len() as u32).map(NodeId)
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_rack[node.0 as usize]
    }

    /// Nodes in a rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> &[NodeId] {
        &self.rack_nodes[rack.0 as usize]
    }

    /// HDFS-style network distance: 0 = same node, 2 = same rack,
    /// 4 = different rack.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            0
        } else if self.rack_of(a) == self.rack_of(b) {
            2
        } else {
            4
        }
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_layout() {
        let t = Topology::single_rack(4);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_racks(), 1);
        assert!(t.nodes().all(|n| t.rack_of(n) == RackId(0)));
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn multi_rack_distances() {
        let t = Topology::with_racks(&[2, 3]);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.rack_of(NodeId(1)), RackId(0));
        assert_eq!(t.rack_of(NodeId(2)), RackId(1));
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.distance(NodeId(1), NodeId(2)), 4);
        assert!(t.same_rack(NodeId(2), NodeId(4)));
        assert_eq!(
            t.nodes_in_rack(RackId(1)),
            &[NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    #[should_panic(expected = "empty rack")]
    fn empty_rack_rejected() {
        Topology::with_racks(&[2, 0]);
    }
}
