//! Blocks: fixed-size chunks of a file, replicated across nodes.

use crate::topology::NodeId;

/// Identifier of a block, unique within a [`crate::Namespace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// One HDFS block with its replica locations.
#[derive(Debug, Clone)]
pub struct Block {
    /// Unique id.
    pub id: BlockId,
    /// Payload bytes in this block (the last block of a file may be short).
    pub len: u64,
    /// Nodes holding a replica, in placement order (first = primary).
    pub replicas: Vec<NodeId>,
}

impl Block {
    /// Whether `node` holds a replica of this block.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let b = Block {
            id: BlockId(7),
            len: 128,
            replicas: vec![NodeId(1), NodeId(3)],
        };
        assert!(b.is_local_to(NodeId(3)));
        assert!(!b.is_local_to(NodeId(2)));
    }
}
