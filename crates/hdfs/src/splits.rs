//! Input splits: the unit of work handed to one map task.
//!
//! Mirrors Hadoop's `FileInputFormat` with `splitSize == blockSize` — one
//! split per block, annotated with the replica hosts so the scheduler can
//! prefer data-local containers. The paper's map-task count is exactly the
//! number of input splits (§3.3, "the number of map tasks is based on the
//! input splits (i.e., HDFS chunks)").

use crate::namespace::DfsFile;
use crate::topology::NodeId;

/// One input split, processed by one map task.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// Index within the job's input.
    pub index: usize,
    /// Bytes in the split.
    pub len: u64,
    /// Nodes holding the data (replica hosts of the underlying block).
    pub hosts: Vec<NodeId>,
}

/// Generate one split per block of `file`.
pub fn splits_for_file(file: &DfsFile) -> Vec<InputSplit> {
    file.blocks
        .iter()
        .enumerate()
        .map(|(i, b)| InputSplit {
            index: i,
            len: b.len,
            hosts: b.replicas.clone(),
        })
        .collect()
}

/// Number of splits a file of `len` bytes in blocks of `block_size` yields.
pub fn split_count(len: u64, block_size: u64) -> usize {
    assert!(block_size > 0);
    len.div_ceil(block_size) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::Namespace;
    use crate::placement::DefaultPlacement;
    use crate::topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn one_split_per_block() {
        let topo = Topology::single_rack(4);
        let mut ns = Namespace::new(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let f = ns.create_file(&topo, &DefaultPlacement, "/in", 1024, 300, None, &mut rng);
        let splits = splits_for_file(f);
        assert_eq!(splits.len(), 4);
        assert_eq!(splits.iter().map(|s| s.len).sum::<u64>(), 1024);
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.hosts.len(), 2);
        }
    }

    #[test]
    fn split_count_math() {
        // The paper's configurations: 1 GB and 5 GB inputs, 128 MB and
        // 64 MB blocks.
        const MB: u64 = 1024 * 1024;
        const GB: u64 = 1024 * MB;
        assert_eq!(split_count(GB, 128 * MB), 8);
        assert_eq!(split_count(5 * GB, 128 * MB), 40);
        assert_eq!(split_count(5 * GB, 64 * MB), 80);
        assert_eq!(split_count(GB + 1, 128 * MB), 9);
        assert_eq!(split_count(0, 128 * MB), 0);
    }
}
