//! Replica placement policies.
//!
//! [`DefaultPlacement`] mimics HDFS's `BlockPlacementPolicyDefault`: first
//! replica on the writer's node (or a random node for remote writers),
//! second on a node in a *different* rack, third on a different node in the
//! *same rack as the second*; further replicas land on random nodes. On a
//! single-rack cluster all replicas are distinct random nodes.

use crate::topology::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Strategy choosing replica locations for a new block.
pub trait PlacementPolicy {
    /// Choose `replication` distinct nodes for a block written from
    /// `writer` (if any).
    fn place<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        writer: Option<NodeId>,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId>;
}

/// The HDFS default policy (see module docs).
#[derive(Debug, Clone, Default)]
pub struct DefaultPlacement;

impl PlacementPolicy for DefaultPlacement {
    fn place<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        writer: Option<NodeId>,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let replication = replication.min(topo.num_nodes()).max(1);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(replication);

        // Replica 1: writer-local, or random.
        let first = writer.unwrap_or_else(|| NodeId(rng.gen_range(0..topo.num_nodes() as u32)));
        chosen.push(first);

        // Replica 2: a node in a different rack, if one exists.
        if replication >= 2 {
            let off_rack: Vec<NodeId> = topo
                .nodes()
                .filter(|&n| !topo.same_rack(n, first) && !chosen.contains(&n))
                .collect();
            let pick = if off_rack.is_empty() {
                random_excluding(topo, &chosen, rng)
            } else {
                off_rack.choose(rng).copied()
            };
            if let Some(n) = pick {
                chosen.push(n);
            }
        }

        // Replica 3: same rack as replica 2, different node.
        if replication >= 3 && chosen.len() >= 2 {
            let second = chosen[1];
            let same_rack: Vec<NodeId> = topo
                .nodes_in_rack(topo.rack_of(second))
                .iter()
                .copied()
                .filter(|n| !chosen.contains(n))
                .collect();
            let pick = if same_rack.is_empty() {
                random_excluding(topo, &chosen, rng)
            } else {
                same_rack.choose(rng).copied()
            };
            if let Some(n) = pick {
                chosen.push(n);
            }
        }

        // Remaining replicas: random distinct nodes.
        while chosen.len() < replication {
            match random_excluding(topo, &chosen, rng) {
                Some(n) => chosen.push(n),
                None => break,
            }
        }
        chosen
    }
}

/// Uniform placement ignoring the writer — useful for experiments isolating
/// locality effects.
#[derive(Debug, Clone, Default)]
pub struct RandomPlacement;

impl PlacementPolicy for RandomPlacement {
    fn place<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        _writer: Option<NodeId>,
        replication: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let replication = replication.min(topo.num_nodes()).max(1);
        let mut all: Vec<NodeId> = topo.nodes().collect();
        all.shuffle(rng);
        all.truncate(replication);
        all
    }
}

fn random_excluding<R: Rng + ?Sized>(
    topo: &Topology,
    exclude: &[NodeId],
    rng: &mut R,
) -> Option<NodeId> {
    let candidates: Vec<NodeId> = topo.nodes().filter(|n| !exclude.contains(n)).collect();
    candidates.choose(rng).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_policy_replicas_are_distinct() {
        let topo = Topology::with_racks(&[3, 3]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let r = DefaultPlacement.place(&topo, Some(NodeId(0)), 3, &mut rng);
            assert_eq!(r.len(), 3);
            assert_eq!(r[0], NodeId(0), "first replica is writer-local");
            let mut d = r.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas must be distinct: {r:?}");
            // Second replica off-rack from the writer.
            assert!(!topo.same_rack(r[0], r[1]));
            // Third replica in the same rack as the second.
            assert!(topo.same_rack(r[1], r[2]));
        }
    }

    #[test]
    fn single_rack_fallback() {
        let topo = Topology::single_rack(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let r = DefaultPlacement.place(&topo, Some(NodeId(2)), 3, &mut rng);
        assert_eq!(r.len(), 3);
        let mut d = r.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let topo = Topology::single_rack(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let r = DefaultPlacement.place(&topo, None, 3, &mut rng);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn random_policy_distinct() {
        let topo = Topology::single_rack(5);
        let mut rng = SmallRng::seed_from_u64(4);
        let r = RandomPlacement.place(&topo, None, 3, &mut rng);
        let mut d = r.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
    }
}
