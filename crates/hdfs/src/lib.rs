//! # hdfs-sim — HDFS substrate simulator
//!
//! Models the parts of HDFS that the MapReduce performance model and the
//! cluster simulator depend on: cluster [`Topology`] (nodes, racks,
//! distances), replicated [`Block`]s, the [`Namespace`] of files, replica
//! [`placement`] policies, and [`InputSplit`] generation (one split per
//! block, with replica hosts for locality-aware scheduling).

pub mod block;
pub mod namespace;
pub mod placement;
pub mod splits;
pub mod topology;

pub use block::{Block, BlockId};
pub use namespace::{DfsFile, Namespace};
pub use placement::{DefaultPlacement, PlacementPolicy, RandomPlacement};
pub use splits::{split_count, splits_for_file, InputSplit};
pub use topology::{NodeId, RackId, Topology};
