//! Open (Poisson-arrival) multi-class product-form network solve.
//!
//! The closed machinery (MVA and friends) answers "N customers
//! circulate forever"; capacity planning needs the *open* question —
//! jobs arrive as a Poisson stream at rate λ and the network either
//! reaches a steady state or saturates. Under the product-form
//! assumptions already made by the closed side (exponential service,
//! FCFS/PS queueing stations, infinite-server delay stations) the open
//! network decomposes exactly: each queueing station is an M/M/1 with
//! utilization ρ_k = Σ_c λ_c·D_ck, each delay station contributes its
//! bare demand, and per-class response is Σ_k D_ck/(1−ρ_k) over
//! queueing stations plus Σ_k D_ck over delay stations.
//!
//! Multi-server stations go through the same Seidmann expansion the
//! closed solver uses ([`ClosedNetwork::expand_multiserver`]), so the
//! open and closed answers describe the same physical network.
//!
//! Because every ρ_k is *linear* in the arrival rates, saturation is
//! analytic: scaling all rates by `x` saturates the bottleneck exactly
//! at `x = 1/ρ_max`. [`OpenSolution::saturation_scale`] exposes that
//! factor, and the knee — the scale at which the bottleneck crosses a
//! target utilization `u` — is `u · saturation_scale`.

use crate::network::{ClosedNetwork, StationKind};

/// Steady-state metrics of an open multi-class network, or the
/// saturation verdict when no steady state exists.
#[derive(Debug, Clone)]
pub struct OpenSolution {
    /// Utilization per station (post-expansion station order),
    /// `ρ_k = Σ_c λ_c·D_ck`. Delay stations report their traffic
    /// intensity (mean customers in service), which may exceed 1.
    pub utilization: Vec<f64>,
    /// Residence time per class per station, `C × K`; infinite at a
    /// saturated queueing station.
    pub residence: Vec<Vec<f64>>,
    /// Total response time per class (sum over stations); infinite when
    /// any station the class visits is saturated.
    pub response: Vec<f64>,
    /// Index of the most-utilized *queueing* station.
    pub bottleneck: usize,
    /// Whether every queueing station has ρ < 1 (a steady state
    /// exists).
    pub stable: bool,
}

impl OpenSolution {
    /// Utilization of the bottleneck queueing station.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.utilization[self.bottleneck]
    }

    /// The factor by which all arrival rates can be scaled before the
    /// bottleneck saturates: `1/ρ_max` (infinite when the network is
    /// idle). Scaling rates by exactly this factor drives ρ_max to 1.
    pub fn saturation_scale(&self) -> f64 {
        let rho = self.bottleneck_utilization();
        if rho > 0.0 {
            1.0 / rho
        } else {
            f64::INFINITY
        }
    }
}

/// Solve the open network: the stations and demands of `net` (the
/// closed definition is reused verbatim — demands mean the same thing)
/// fed by independent Poisson streams, one per class, at `rates`
/// jobs/second. Multi-server stations are Seidmann-expanded first.
///
/// Saturated networks still return: utilizations are exact, and the
/// response of any class touching a saturated station is
/// `f64::INFINITY` — the caller decides whether that is an error or
/// just the far side of the knee.
pub fn solve_open(net: &ClosedNetwork, rates: &[f64]) -> OpenSolution {
    assert_eq!(rates.len(), net.num_classes(), "one arrival rate per class");
    assert!(
        rates.iter().all(|r| r.is_finite() && *r >= 0.0),
        "arrival rates must be finite and non-negative"
    );
    let net = net.expand_multiserver();
    let (c_n, k_n) = (net.num_classes(), net.num_stations());

    let mut utilization = vec![0.0; k_n];
    for (rate, demands) in rates.iter().zip(&net.demands) {
        for (u, d) in utilization.iter_mut().zip(demands) {
            *u += rate * d;
        }
    }

    let mut bottleneck = 0;
    let mut rho_max = f64::NEG_INFINITY;
    for (k, s) in net.stations.iter().enumerate() {
        if s.kind == StationKind::Queueing && utilization[k] > rho_max {
            rho_max = utilization[k];
            bottleneck = k;
        }
    }
    let stable = rho_max < 1.0;

    let mut residence = vec![vec![0.0; k_n]; c_n];
    let mut response = vec![0.0; c_n];
    for c in 0..c_n {
        for k in 0..k_n {
            let d = net.demands[c][k];
            let r = match net.stations[k].kind {
                StationKind::Delay => d,
                StationKind::Queueing => {
                    if utilization[k] < 1.0 {
                        d / (1.0 - utilization[k])
                    } else if d > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                }
            };
            residence[c][k] = r;
            response[c] += r;
        }
    }

    OpenSolution {
        utilization,
        residence,
        response,
        bottleneck,
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Station;

    fn mm1(demand: f64) -> ClosedNetwork {
        ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["a".into()],
            vec![vec![demand]],
        )
    }

    #[test]
    fn single_class_mm1_matches_textbook() {
        // M/M/1: R = D/(1−ρ). D = 2 s, λ = 0.25/s → ρ = 0.5, R = 4 s.
        let sol = solve_open(&mm1(2.0), &[0.25]);
        assert!((sol.utilization[0] - 0.5).abs() < 1e-12);
        assert!((sol.response[0] - 4.0).abs() < 1e-12);
        assert!(sol.stable);
        assert!((sol.saturation_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_recovers_bare_demands() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu"), Station::delay("think")],
            vec!["a".into()],
            vec![vec![1.5, 3.0]],
        );
        let sol = solve_open(&net, &[0.0]);
        assert_eq!(sol.response[0], 4.5, "no load: response is raw demand");
        assert!(sol.stable);
        assert_eq!(sol.saturation_scale(), f64::INFINITY);
    }

    #[test]
    fn saturated_station_reports_infinite_response() {
        let sol = solve_open(&mm1(2.0), &[0.6]); // ρ = 1.2
        assert!(!sol.stable);
        assert!((sol.utilization[0] - 1.2).abs() < 1e-12);
        assert!(sol.response[0].is_infinite());
    }

    #[test]
    fn response_is_monotone_in_rate() {
        let mut last = 0.0;
        for i in 1..10 {
            let rate = 0.05 * i as f64; // up to ρ = 0.9
            let sol = solve_open(&mm1(2.0), &[rate]);
            assert!(
                sol.response[0] > last,
                "response must grow with λ: {} at λ={rate}",
                sol.response[0]
            );
            last = sol.response[0];
        }
    }

    #[test]
    fn multi_class_shares_the_queue() {
        // Two classes on one station: ρ = λ_a·D_a + λ_b·D_b, both
        // classes see the same inflation factor.
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["a".into(), "b".into()],
            vec![vec![1.0], vec![2.0]],
        );
        let sol = solve_open(&net, &[0.2, 0.15]); // ρ = 0.5
        assert!((sol.utilization[0] - 0.5).abs() < 1e-12);
        assert!((sol.response[0] - 2.0).abs() < 1e-12);
        assert!((sol.response[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn multi_server_station_is_seidmann_expanded() {
        // 4 servers, D = 2: queue leg D/4 = 0.5, delay leg 1.5.
        // λ = 1 → ρ_queue = 0.5, R = 0.5/0.5 + 1.5 = 2.5.
        let net = ClosedNetwork::new(
            vec![Station::multi("cpu", 4)],
            vec!["a".into()],
            vec![vec![2.0]],
        );
        let sol = solve_open(&net, &[1.0]);
        assert!((sol.bottleneck_utilization() - 0.5).abs() < 1e-12);
        assert!((sol.response[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_picks_the_hottest_queueing_station() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu"),
                Station::queueing("disk"),
                Station::delay("think"),
            ],
            vec!["a".into()],
            vec![vec![1.0, 3.0, 10.0]],
        );
        let sol = solve_open(&net, &[0.2]);
        assert_eq!(sol.bottleneck, 1, "disk (ρ=0.6) beats cpu (ρ=0.2)");
        assert!(
            (sol.utilization[2] - 2.0).abs() < 1e-12,
            "delay intensity may exceed 1 without saturating anything"
        );
        assert!(sol.stable);
    }
}
