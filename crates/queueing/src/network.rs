//! Closed multi-class queueing network definitions.

/// Service discipline of a station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationKind {
    /// Queueing station (FCFS/PS — identical under product form with
    /// exponential assumptions).
    Queueing,
    /// Delay (infinite-server) station: no queueing, pure service.
    Delay,
}

/// One service center.
#[derive(Debug, Clone)]
pub struct Station {
    /// Human-readable name (e.g. "cpu", "disk", "network").
    pub name: String,
    /// Discipline.
    pub kind: StationKind,
    /// Number of identical servers (only meaningful for `Queueing`;
    /// `> 1` requires the Seidmann expansion before MVA).
    pub servers: u32,
}

impl Station {
    /// Single-server queueing station.
    pub fn queueing(name: &str) -> Station {
        Station {
            name: name.to_string(),
            kind: StationKind::Queueing,
            servers: 1,
        }
    }

    /// Multi-server queueing station.
    pub fn multi(name: &str, servers: u32) -> Station {
        assert!(servers >= 1);
        Station {
            name: name.to_string(),
            kind: StationKind::Queueing,
            servers,
        }
    }

    /// Infinite-server (delay) station.
    pub fn delay(name: &str) -> Station {
        Station {
            name: name.to_string(),
            kind: StationKind::Delay,
            servers: 1,
        }
    }
}

/// A closed network: `C` task classes circulating among `K` stations.
///
/// `demands[c][k]` is the *service demand* of one class-`c` customer at
/// station `k` per visit cycle (seconds) — visit ratio × service time.
#[derive(Debug, Clone)]
pub struct ClosedNetwork {
    /// Stations, `K` of them.
    pub stations: Vec<Station>,
    /// Class names, `C` of them.
    pub classes: Vec<String>,
    /// Demand matrix, `C × K`.
    pub demands: Vec<Vec<f64>>,
}

impl ClosedNetwork {
    /// Build and validate.
    pub fn new(stations: Vec<Station>, classes: Vec<String>, demands: Vec<Vec<f64>>) -> Self {
        let net = ClosedNetwork {
            stations,
            classes,
            demands,
        };
        net.validate();
        net
    }

    /// Number of stations.
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Panic with a description if the definition is inconsistent.
    pub fn validate(&self) {
        assert!(!self.stations.is_empty(), "network needs stations");
        assert!(!self.classes.is_empty(), "network needs classes");
        assert_eq!(
            self.demands.len(),
            self.classes.len(),
            "one demand row per class"
        );
        for (c, row) in self.demands.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.stations.len(),
                "class {c}: one demand per station"
            );
            assert!(
                row.iter().all(|d| d.is_finite() && *d >= 0.0),
                "class {c}: demands must be finite and non-negative"
            );
        }
    }

    /// Replace every `m`-server queueing station with the Seidmann
    /// approximation: a single-server queueing station with demand `D/m`
    /// in series with a delay station of demand `D·(m−1)/m`. Exact for
    /// `m = 1`; a standard, well-behaved approximation otherwise.
    pub fn expand_multiserver(&self) -> ClosedNetwork {
        let mut stations = Vec::new();
        let mut col_map: Vec<(usize, Option<usize>)> = Vec::new(); // old → (queue col, delay col)
        for s in &self.stations {
            if s.kind == StationKind::Queueing && s.servers > 1 {
                let q = stations.len();
                stations.push(Station::queueing(&format!("{}/q", s.name)));
                let d = stations.len();
                stations.push(Station::delay(&format!("{}/d", s.name)));
                col_map.push((q, Some(d)));
            } else {
                let q = stations.len();
                stations.push(s.clone());
                col_map.push((q, None));
            }
        }
        let mut demands = vec![vec![0.0; stations.len()]; self.classes.len()];
        for (c, row) in self.demands.iter().enumerate() {
            for (k, &d) in row.iter().enumerate() {
                let m = self.stations[k].servers.max(1) as f64;
                match col_map[k] {
                    (q, Some(del)) => {
                        demands[c][q] = d / m;
                        demands[c][del] = d * (m - 1.0) / m;
                    }
                    (q, None) => demands[c][q] = d,
                }
            }
        }
        ClosedNetwork::new(stations, self.classes.clone(), demands)
    }
}

/// Performance metrics produced by an MVA solver.
#[derive(Debug, Clone)]
pub struct MvaSolution {
    /// Residence time per class per station (queueing + service), `C × K`.
    pub residence: Vec<Vec<f64>>,
    /// Total response time per class (sum over stations).
    pub response: Vec<f64>,
    /// Throughput per class.
    pub throughput: Vec<f64>,
    /// Mean queue length per class per station.
    pub queue: Vec<Vec<f64>>,
    /// Utilization per station (sum over classes of X·D).
    pub utilization: Vec<f64>,
}

impl MvaSolution {
    /// Overall mean number in system per class (Little check: `X·R`).
    pub fn customers_in_system(&self, class: usize) -> f64 {
        self.throughput[class] * self.response[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu"), Station::delay("think")],
            vec!["a".into()],
            vec![vec![0.5, 2.0]],
        );
        assert_eq!(net.num_stations(), 2);
        assert_eq!(net.num_classes(), 1);
    }

    #[test]
    #[should_panic(expected = "one demand per station")]
    fn mismatched_demands_rejected() {
        ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["a".into()],
            vec![vec![0.5, 1.0]],
        );
    }

    #[test]
    fn seidmann_expansion() {
        let net = ClosedNetwork::new(
            vec![Station::multi("cpu", 4), Station::queueing("disk")],
            vec!["a".into()],
            vec![vec![2.0, 1.0]],
        );
        let ex = net.expand_multiserver();
        assert_eq!(ex.num_stations(), 3);
        // cpu/q: 2/4, cpu/d: 2·3/4, disk: 1.
        assert!((ex.demands[0][0] - 0.5).abs() < 1e-12);
        assert!((ex.demands[0][1] - 1.5).abs() < 1e-12);
        assert!((ex.demands[0][2] - 1.0).abs() < 1e-12);
        assert_eq!(ex.stations[1].kind, StationKind::Delay);
        // Total demand preserved.
        let before: f64 = net.demands[0].iter().sum();
        let after: f64 = ex.demands[0].iter().sum();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn single_server_expansion_is_identity() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["a".into()],
            vec![vec![1.0]],
        );
        let ex = net.expand_multiserver();
        assert_eq!(ex.num_stations(), 1);
        assert_eq!(ex.demands, net.demands);
    }
}
