//! Asymptotic and balanced-system bounds for closed networks — the
//! classical sanity envelope around any MVA solution, used by the tests
//! and by capacity-planning callers that want guarantees rather than
//! point estimates.
//!
//! For a single-class closed network with total demand `D = Σ_k D_k`,
//! bottleneck demand `D_max` and `N` customers (no think time):
//!
//! ```text
//! X(N) ≤ min(N / D, 1 / D_max)            (throughput upper bound)
//! R(N) ≥ max(D, N · D_max)                (response lower bound)
//! ```
//!
//! and the balanced-system bounds of Zahorjan et al. tighten the
//! pessimistic side.

use crate::network::{ClosedNetwork, StationKind};

/// Aggregate single-class demand statistics of a network.
#[derive(Debug, Clone, Copy)]
pub struct DemandSummary {
    /// Total demand over queueing stations.
    pub total: f64,
    /// Bottleneck (max) station demand.
    pub max: f64,
    /// Average station demand.
    pub avg: f64,
    /// Delay-station (think) demand.
    pub think: f64,
}

/// Summarize class `c`'s demands.
pub fn demand_summary(net: &ClosedNetwork, class: usize) -> DemandSummary {
    let mut total = 0.0;
    let mut max: f64 = 0.0;
    let mut think = 0.0;
    let mut n = 0usize;
    for (k, st) in net.stations.iter().enumerate() {
        let d = net.demands[class][k];
        match st.kind {
            StationKind::Delay => think += d,
            StationKind::Queueing => {
                total += d;
                max = max.max(d);
                n += 1;
            }
        }
    }
    DemandSummary {
        total,
        max,
        avg: if n == 0 { 0.0 } else { total / n as f64 },
        think,
    }
}

/// Asymptotic throughput upper bound for a single class in isolation.
pub fn throughput_upper_bound(net: &ClosedNetwork, class: usize, n: f64) -> f64 {
    let s = demand_summary(net, class);
    if s.max <= 0.0 {
        return f64::INFINITY;
    }
    (n / (s.total + s.think)).min(1.0 / s.max)
}

/// Asymptotic response-time lower bound (excluding think time).
pub fn response_lower_bound(net: &ClosedNetwork, class: usize, n: f64) -> f64 {
    let s = demand_summary(net, class);
    s.total.max(n * s.max - s.think)
}

/// Balanced-system response *upper* bound (Zahorjan et al.): a closed
/// network is never slower than the balanced network with every station
/// at the bottleneck demand: `R ≤ D + (N−1) · D_max`.
pub fn response_upper_bound(net: &ClosedNetwork, class: usize, n: f64) -> f64 {
    let s = demand_summary(net, class);
    s.total + (n - 1.0).max(0.0) * s.max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::{ClosedNetwork, Station};

    fn net() -> ClosedNetwork {
        ClosedNetwork::new(
            vec![
                Station::queueing("cpu"),
                Station::queueing("disk"),
                Station::delay("think"),
            ],
            vec!["c".into()],
            vec![vec![0.8, 0.4, 2.0]],
        )
    }

    #[test]
    fn summary_identifies_bottleneck() {
        let s = demand_summary(&net(), 0);
        assert!((s.total - 1.2).abs() < 1e-12);
        assert!((s.max - 0.8).abs() < 1e-12);
        assert!((s.think - 2.0).abs() < 1e-12);
        assert!((s.avg - 0.6).abs() < 1e-12);
    }

    #[test]
    fn exact_mva_respects_bounds_at_all_populations() {
        let net = net();
        for n in 1..=30u32 {
            let sol = exact_mva(&net, &[n]);
            let x = sol.throughput[0];
            let r_queueing: f64 = sol.residence[0][..2].iter().sum();
            assert!(
                x <= throughput_upper_bound(&net, 0, n as f64) + 1e-9,
                "X({n}) = {x} above bound"
            );
            assert!(
                r_queueing >= response_lower_bound(&net, 0, n as f64) - 2.0 - 1e-9,
                // think time shifts the asymptote by up to the think demand
                "R({n}) = {r_queueing} below bound"
            );
            assert!(
                r_queueing <= response_upper_bound(&net, 0, n as f64) + 1e-9,
                "R({n}) = {r_queueing} above balanced bound"
            );
        }
    }

    #[test]
    fn bottleneck_saturates_throughput() {
        let net = net();
        let sol = exact_mva(&net, &[60]);
        let x_max = 1.0 / 0.8;
        assert!(sol.throughput[0] <= x_max);
        assert!(
            sol.throughput[0] > 0.95 * x_max,
            "should be near saturation"
        );
    }
}
