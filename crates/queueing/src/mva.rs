//! Mean Value Analysis solvers for closed multi-class networks.
//!
//! * [`exact_mva`] — the Reiser–Lavenberg recursion \[7\], exact for
//!   product-form networks with integer populations. Cost grows with the
//!   product of populations, so it is the ground truth for small cases.
//! * [`approximate_mva`] — Bard–Schweitzer fixed point; accepts fractional
//!   populations and scales to the paper's workloads (O(C²K) per
//!   iteration).
//! * [`overlap_mva`] — the paper's modification (§4.2.3, after Mak &
//!   Lundstrom \[5\]): the queue a class-`i` task sees at station `k` is
//!   weighted by *overlap factors* `o_ij`, because tasks that never run
//!   concurrently never queue behind each other. With all factors 1 it
//!   reduces exactly to Bard–Schweitzer.

use std::sync::OnceLock;

use crate::network::{ClosedNetwork, MvaSolution, StationKind};

/// Iterations executed by [`overlap_mva`]'s fixed point, batched into
/// one atomic add per solve so the loop body stays uninstrumented.
fn mva_iterations() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_mva_iterations_total",
            "Fixed-point iterations executed by the overlap-MVA solver.",
        )
    })
}

/// Solves that hit [`MAX_ITER`] without the response-time delta
/// dropping below [`EPSILON`].
fn mva_failures() -> &'static mr2_obs::Counter {
    static C: OnceLock<mr2_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        mr2_obs::counter(
            "mr2_mva_convergence_failures_total",
            "Overlap-MVA solves that exhausted the iteration budget before converging.",
        )
    })
}

/// Convergence threshold for the fixed-point solvers — the paper's ε
/// (§4.2.6): "We use ε = 10⁻⁷, which is the recommended value for MVA".
pub const EPSILON: f64 = 1e-7;

/// Maximum fixed-point iterations before declaring divergence.
pub const MAX_ITER: usize = 100_000;

/// Exact multi-class MVA. `populations[c]` must be non-negative integers.
///
/// Panics if the network fails validation. Multi-server stations must be
/// expanded first ([`ClosedNetwork::expand_multiserver`]).
pub fn exact_mva(net: &ClosedNetwork, populations: &[u32]) -> MvaSolution {
    net.validate();
    let c_n = net.num_classes();
    let k_n = net.num_stations();
    assert_eq!(populations.len(), c_n);
    assert!(
        net.stations
            .iter()
            .all(|s| s.kind == StationKind::Delay || s.servers == 1),
        "expand multi-server stations before exact MVA"
    );

    // Iterate over the population lattice in colexicographic order.
    let dims: Vec<usize> = populations.iter().map(|&n| n as usize + 1).collect();
    let total: usize = dims.iter().product();
    let stride: Vec<usize> = {
        let mut s = vec![1usize; c_n];
        for c in 1..c_n {
            s[c] = s[c - 1] * dims[c - 1];
        }
        s
    };
    // Q[k] indexed by lattice offset.
    let mut q = vec![vec![0.0f64; total]; k_n];
    let mut last = MvaSolution {
        residence: vec![vec![0.0; k_n]; c_n],
        response: vec![0.0; c_n],
        throughput: vec![0.0; c_n],
        queue: vec![vec![0.0; k_n]; c_n],
        utilization: vec![0.0; k_n],
    };

    let mut n_vec = vec![0usize; c_n];
    for offset in 1..total {
        // Decode the population vector at this offset.
        let mut rem = offset;
        for c in 0..c_n {
            n_vec[c] = rem % dims[c];
            rem /= dims[c];
        }
        let mut residence = vec![vec![0.0; k_n]; c_n];
        let mut throughput = vec![0.0; c_n];
        for c in 0..c_n {
            if n_vec[c] == 0 {
                continue;
            }
            let prev = offset - stride[c]; // N − e_c
            let mut r_total = 0.0;
            for k in 0..k_n {
                let d = net.demands[c][k];
                let r = match net.stations[k].kind {
                    StationKind::Delay => d,
                    StationKind::Queueing => d * (1.0 + q[k][prev]),
                };
                residence[c][k] = r;
                r_total += r;
            }
            throughput[c] = if r_total > 0.0 {
                n_vec[c] as f64 / r_total
            } else {
                0.0
            };
        }
        for k in 0..k_n {
            q[k][offset] = (0..c_n)
                .map(|c| throughput[c] * residence[c][k])
                .sum::<f64>();
        }
        if offset == total - 1 {
            let mut queue = vec![vec![0.0; k_n]; c_n];
            let mut utilization = vec![0.0; k_n];
            for k in 0..k_n {
                for (c, row) in residence.iter().enumerate() {
                    queue[c][k] = throughput[c] * row[k];
                    utilization[k] += throughput[c] * net.demands[c][k];
                }
            }
            last = MvaSolution {
                response: residence.iter().map(|row| row.iter().sum()).collect(),
                residence,
                throughput,
                queue,
                utilization,
            };
        }
    }
    // Population zero for every class: the degenerate empty solution.
    if total == 1 {
        return last;
    }
    last
}

/// Bard–Schweitzer approximate MVA with (possibly fractional) populations.
pub fn approximate_mva(net: &ClosedNetwork, populations: &[f64]) -> MvaSolution {
    let ones = vec![vec![1.0; populations.len()]; populations.len()];
    overlap_mva(net, populations, &ones, &ones)
}

/// Overlap-factor-adjusted approximate MVA (the paper's A5 step).
///
/// `intra[i][j]` scales how much of class `j`'s queue class `i` sees when
/// both belong to the *same* job; `inter[i][j]` when they belong to
/// different jobs. Populations are split per class into "own-job" (one
/// task's worth of companions) and "other jobs" by the caller through the
/// factors; here the seen queue of class `i` at station `k` is
///
/// ```text
/// seen_ik = Σ_j w_ij · Q_jk      with w_ii applying the Schweitzer
///                                (N_i−1)/N_i self-correction
/// ```
///
/// where `w_ij` combines the intra- and inter-job factors weighted by how
/// much of class `j`'s population is co-job vs foreign (encoded by the
/// caller in the two matrices; see `mr2-model::solver`).
#[allow(clippy::needless_range_loop)] // station/class index pairs read clearer
pub fn overlap_mva(
    net: &ClosedNetwork,
    populations: &[f64],
    intra: &[Vec<f64>],
    inter: &[Vec<f64>],
) -> MvaSolution {
    net.validate();
    let c_n = net.num_classes();
    let k_n = net.num_stations();
    assert_eq!(populations.len(), c_n);
    assert_eq!(intra.len(), c_n);
    assert_eq!(inter.len(), c_n);
    assert!(
        populations.iter().all(|&n| n >= 0.0 && n.is_finite()),
        "populations must be non-negative"
    );

    // Contract: classes are per job in the caller's encoding — a class
    // name "j2#map" belongs to job "j2" (the prefix before '#'); names
    // without '#' all belong to one implicit job. Pairs within the same
    // job are weighted by `intra[i][j]` (the paper's α), pairs across jobs
    // by `inter[i][j]` (the paper's β).
    //
    // The factors are iteration-invariant, so the combined weight matrix
    // is materialized once (flat, row-major) before the fixed point —
    // the former per-(i,k,j) job-name string comparison dominated the
    // solve at realistic class counts.
    let job_of: Vec<&str> = net
        .classes
        .iter()
        .map(|n| n.split('#').next().unwrap_or(n))
        .collect();
    let mut w = vec![0.0f64; c_n * c_n];
    for i in 0..c_n {
        for j in 0..c_n {
            w[i * c_n + j] = if job_of[i] == job_of[j] {
                intra[i][j]
            } else {
                inter[i][j]
            };
        }
    }
    let is_queueing: Vec<bool> = net
        .stations
        .iter()
        .map(|s| s.kind == StationKind::Queueing)
        .collect();

    // Queue lengths in station-major layout, so the per-class inner sum
    // walks one contiguous row instead of striding across class rows.
    let mut queue_t = vec![0.0f64; k_n * c_n];
    for k in 0..k_n {
        for c in 0..c_n {
            queue_t[k * c_n + c] = populations[c] / k_n as f64;
        }
    }
    let mut residence = vec![vec![0.0f64; k_n]; c_n];
    let mut response = vec![0.0f64; c_n];
    let mut throughput = vec![0.0f64; c_n];

    let mut iterations = 0u64;
    let mut converged = false;
    for _iter in 0..MAX_ITER {
        iterations += 1;
        let mut max_delta = 0.0f64;
        for i in 0..c_n {
            let w_row = &w[i * c_n..(i + 1) * c_n];
            let demands_i = &net.demands[i];
            let n = populations[i];
            // Schweitzer self-correction factor (N_i−1), applied to the
            // diagonal term only; `* (n - 1.0) / n` keeps the original
            // expression's operation order bit-for-bit.
            let nm1 = n - 1.0;
            let residence_i = &mut residence[i];
            let mut r_total = 0.0;
            for k in 0..k_n {
                let d = demands_i[k];
                let r = if is_queueing[k] {
                    let q_row = &queue_t[k * c_n..(k + 1) * c_n];
                    let q_self = if n > 1.0 { q_row[i] * nm1 / n } else { 0.0 };
                    // Diagonal split keeps the summation order of the
                    // former `for j in 0..c_n` loop exactly.
                    let mut seen = 0.0;
                    for j in 0..i {
                        seen += w_row[j] * q_row[j];
                    }
                    seen += w_row[i] * q_self;
                    for j in i + 1..c_n {
                        seen += w_row[j] * q_row[j];
                    }
                    d * (1.0 + seen)
                } else {
                    d
                };
                residence_i[k] = r;
                r_total += r;
            }
            let x = if r_total > 0.0 {
                populations[i] / r_total
            } else {
                0.0
            };
            max_delta = max_delta.max((response[i] - r_total).abs());
            response[i] = r_total;
            throughput[i] = x;
        }
        for i in 0..c_n {
            let x = throughput[i];
            let residence_i = &residence[i];
            for k in 0..k_n {
                queue_t[k * c_n + i] = x * residence_i[k];
            }
        }
        if max_delta < EPSILON {
            converged = true;
            break;
        }
    }
    let mut queue = vec![vec![0.0f64; k_n]; c_n];
    for i in 0..c_n {
        for k in 0..k_n {
            queue[i][k] = queue_t[k * c_n + i];
        }
    }
    mva_iterations().add(iterations);
    if !converged && iterations > 0 {
        mva_failures().inc();
    }

    let mut utilization = vec![0.0; k_n];
    for k in 0..k_n {
        for c in 0..c_n {
            utilization[k] += throughput[c] * net.demands[c][k];
        }
    }
    MvaSolution {
        residence,
        response,
        throughput,
        queue,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Station;

    /// Single class, single queueing station: R(N) = N·D, X = 1/D.
    #[test]
    fn exact_single_station_saturates() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("s")],
            vec!["a".into()],
            vec![vec![2.0]],
        );
        let sol = exact_mva(&net, &[5]);
        assert!((sol.response[0] - 10.0).abs() < 1e-9);
        assert!((sol.throughput[0] - 0.5).abs() < 1e-9);
        assert!((sol.utilization[0] - 1.0).abs() < 1e-9);
    }

    /// Machine-repairman: delay (think) + queueing station; known closed
    /// form via recursion — check Little's law and monotonicity instead.
    #[test]
    fn exact_interactive_system() {
        let net = ClosedNetwork::new(
            vec![Station::delay("think"), Station::queueing("cpu")],
            vec!["u".into()],
            vec![vec![10.0, 1.0]],
        );
        let mut prev_x = 0.0;
        for n in 1..=20u32 {
            let sol = exact_mva(&net, &[n]);
            // Little: N = X·R (R includes think time here).
            assert!(
                (sol.customers_in_system(0) - n as f64).abs() < 1e-6,
                "Little violated at N={n}"
            );
            assert!(sol.throughput[0] >= prev_x - 1e-12, "X must increase");
            assert!(sol.throughput[0] <= 1.0 + 1e-9, "X bounded by service rate");
            prev_x = sol.throughput[0];
        }
    }

    /// Two-class exact MVA on the balanced network: classes are symmetric,
    /// so their metrics must be equal.
    #[test]
    fn exact_two_class_symmetry() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("a"), Station::queueing("b")],
            vec!["x".into(), "y".into()],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
        let sol = exact_mva(&net, &[3, 3]);
        assert!((sol.response[0] - sol.response[1]).abs() < 1e-9);
        assert!((sol.throughput[0] - sol.throughput[1]).abs() < 1e-9);
    }

    #[test]
    fn approximate_close_to_exact() {
        let net = ClosedNetwork::new(
            vec![
                Station::queueing("cpu"),
                Station::queueing("disk"),
                Station::delay("net"),
            ],
            vec!["x".into(), "y".into()],
            vec![vec![0.5, 1.0, 0.3], vec![1.2, 0.2, 0.1]],
        );
        let ex = exact_mva(&net, &[4, 3]);
        let ap = approximate_mva(&net, &[4.0, 3.0]);
        for c in 0..2 {
            let rel = (ex.response[c] - ap.response[c]).abs() / ex.response[c];
            assert!(
                rel < 0.08,
                "class {c}: approx {:.4} vs exact {:.4} ({:.1}%)",
                ap.response[c],
                ex.response[c],
                rel * 100.0
            );
        }
    }

    #[test]
    fn overlap_one_equals_schweitzer() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu"), Station::queueing("disk")],
            vec!["x".into(), "y".into()],
            vec![vec![0.5, 1.0], vec![1.0, 0.25]],
        );
        let ones = vec![vec![1.0; 2]; 2];
        let a = approximate_mva(&net, &[3.0, 2.0]);
        let b = overlap_mva(&net, &[3.0, 2.0], &ones, &ones);
        for c in 0..2 {
            assert!((a.response[c] - b.response[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_overlap_removes_contention() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["x".into(), "y".into()],
            vec![vec![1.0], vec![1.0]],
        );
        // No overlap at all: every class sees an empty station.
        let zeros = vec![vec![0.0; 2]; 2];
        let sol = overlap_mva(&net, &[4.0, 4.0], &zeros, &zeros);
        assert!((sol.response[0] - 1.0).abs() < 1e-9);
        assert!((sol.response[1] - 1.0).abs() < 1e-9);
        // Full overlap: heavy contention.
        let ones = vec![vec![1.0; 2]; 2];
        let full = overlap_mva(&net, &[4.0, 4.0], &ones, &ones);
        assert!(full.response[0] > 3.0);
    }

    #[test]
    fn overlap_monotone_in_factors() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu"), Station::queueing("disk")],
            vec!["x".into(), "y".into()],
            vec![vec![0.7, 0.4], vec![0.5, 0.9]],
        );
        let mk = |o: f64| vec![vec![o; 2]; 2];
        let lo = overlap_mva(&net, &[3.0, 3.0], &mk(0.2), &mk(0.2));
        let hi = overlap_mva(&net, &[3.0, 3.0], &mk(0.9), &mk(0.9));
        assert!(hi.response[0] > lo.response[0]);
        assert!(hi.response[1] > lo.response[1]);
    }

    #[test]
    fn fractional_population_is_accepted() {
        let net = ClosedNetwork::new(
            vec![Station::queueing("cpu")],
            vec!["x".into()],
            vec![vec![1.0]],
        );
        let sol = approximate_mva(&net, &[2.5]);
        // With a single station all customers queue there: Q = N and the
        // Schweitzer fixed point is R = D(1 + (N−1)/N·N) = N·D = 2.5.
        assert!(sol.response[0] > 1.0 && sol.response[0] <= 2.5 + 1e-9);
    }

    #[test]
    fn delay_station_never_queues() {
        let net = ClosedNetwork::new(
            vec![Station::delay("think")],
            vec!["x".into()],
            vec![vec![3.0]],
        );
        let sol = approximate_mva(&net, &[100.0]);
        assert!((sol.response[0] - 3.0).abs() < 1e-9);
    }
}
