//! A small continuous-time Markov chain solver, used as ground truth for
//! the MVA implementations on networks tiny enough to enumerate.
//!
//! Solves `π Q = 0`, `Σ π = 1` by Gaussian elimination.

/// Solve for the stationary distribution of generator matrix `q`
/// (`q[i][j]` = rate i→j for i≠j; diagonal ignored and recomputed).
#[allow(clippy::needless_range_loop)] // matrix row/col indexing reads clearer
pub fn stationary(q: &[Vec<f64>]) -> Vec<f64> {
    let n = q.len();
    assert!(n > 0);
    assert!(q.iter().all(|row| row.len() == n), "square matrix required");

    // Build Qᵀ with proper diagonal, replace last equation by Σπ = 1.
    let mut a = vec![vec![0.0f64; n + 1]; n];
    for i in 0..n {
        let diag: f64 = (0..n).filter(|&j| j != i).map(|j| q[i][j]).sum();
        for j in 0..n {
            let qij = if i == j { -diag } else { q[i][j] };
            a[j][i] = qij; // transpose
        }
    }
    for j in 0..n {
        a[n - 1][j] = 1.0;
    }
    a[n - 1][n] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .unwrap();
        a.swap(col, pivot);
        let p = a[col][col];
        assert!(p.abs() > 1e-12, "singular generator matrix");
        for j in col..=n {
            a[col][j] /= p;
        }
        for row in 0..n {
            if row != col {
                let f = a[row][col];
                if f != 0.0 {
                    for j in col..=n {
                        a[row][j] -= f * a[col][j];
                    }
                }
            }
        }
    }
    (0..n).map(|i| a[i][n].max(0.0)).collect()
}

/// Throughput of a closed single-class cyclic network of exponential
/// queueing stations, computed exactly from the CTMC. `demands[k]` is the
/// service demand at station k; `n` customers circulate.
///
/// States are the compositions of `n` over `K` stations.
pub fn cyclic_network_throughput(demands: &[f64], n: u32) -> f64 {
    let k = demands.len();
    assert!(k >= 1 && demands.iter().all(|&d| d > 0.0));
    // Enumerate states.
    let mut states: Vec<Vec<u32>> = Vec::new();
    fn gen(states: &mut Vec<Vec<u32>>, cur: &mut Vec<u32>, left: u32, pos: usize, k: usize) {
        if pos == k - 1 {
            cur.push(left);
            states.push(cur.clone());
            cur.pop();
            return;
        }
        for take in 0..=left {
            cur.push(take);
            gen(states, cur, left - take, pos + 1, k);
            cur.pop();
        }
    }
    gen(&mut states, &mut Vec::new(), n, 0, k);
    let index = |s: &[u32]| -> usize { states.iter().position(|x| x == s).unwrap() };

    let m = states.len();
    let mut q = vec![vec![0.0f64; m]; m];
    for (i, s) in states.iter().enumerate() {
        for st in 0..k {
            if s[st] > 0 {
                // One completion at station st moves a customer to st+1.
                let mut t = s.clone();
                t[st] -= 1;
                t[(st + 1) % k] += 1;
                let j = index(&t);
                q[i][j] += 1.0 / demands[st];
            }
        }
    }
    let pi = stationary(&q);
    // Throughput = rate of completions at station 0.
    states
        .iter()
        .zip(pi.iter())
        .filter(|(s, _)| s[0] > 0)
        .map(|(_, p)| p / demands[0])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::exact_mva;
    use crate::network::{ClosedNetwork, Station};

    #[test]
    fn two_state_chain() {
        // 0 →(2)→ 1, 1 →(1)→ 0: π = (1/3, 2/3).
        let q = vec![vec![0.0, 2.0], vec![1.0, 0.0]];
        let pi = stationary(&q);
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_sums_to_one() {
        let q = vec![
            vec![0.0, 1.0, 0.5],
            vec![0.3, 0.0, 0.7],
            vec![2.0, 0.1, 0.0],
        ];
        let pi = stationary(&q);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn mva_matches_ctmc_exactly() {
        // Product-form cyclic network: exact MVA must equal the CTMC.
        let demands = [1.0, 0.5, 0.25];
        for n in 1..=5u32 {
            let x_ctmc = cyclic_network_throughput(&demands, n);
            let net = ClosedNetwork::new(
                demands.iter().map(|_| Station::queueing("s")).collect(),
                vec!["c".into()],
                vec![demands.to_vec()],
            );
            let sol = exact_mva(&net, &[n]);
            assert!(
                (sol.throughput[0] - x_ctmc).abs() < 1e-9,
                "n={n}: MVA {} vs CTMC {x_ctmc}",
                sol.throughput[0]
            );
        }
    }
}
