//! Phase-type response-time distributions for the Tripathi estimator.
//!
//! §4.2.4 of the paper (after Liang & Tripathi \[4\] and Trivedi \[9\]):
//! approximate each node's response time by an **Erlang** distribution when
//! its coefficient of variation is ≤ 1 and by a two-phase
//! **hyperexponential** when CV > 1; combine children of S-nodes as sums
//! and of P-nodes as maxima, re-fitting after every combination.
//!
//! Both families have survival functions of the form
//! `S(t) = Σ_i c_i · t^{n_i} · e^{-λ_i t}` with `c_i > 0`, which this
//! module represents explicitly ([`ExpPoly`]). Products of such survivals
//! stay in the family, so the moments of `min(X,Y)` — and via
//! `E[max] = E[X] + E[Y] − E[min]` the moments of the maximum — have
//! closed forms. Coefficients are kept in log space to survive large
//! Erlang shape parameters.

/// One survival-function term `exp(ln_c) · t^n · e^{-rate·t}`.
#[derive(Debug, Clone, Copy)]
struct Term {
    ln_c: f64,
    n: u32,
    rate: f64,
}

/// A distribution whose survival function is a positive combination of
/// exponential-polynomial terms.
#[derive(Debug, Clone)]
pub struct ExpPoly {
    terms: Vec<Term>,
}

/// `ln Γ(n+1) = ln n!` via `std` lgamma on integers (exact enough here).
fn ln_factorial(n: u32) -> f64 {
    // Stirling with correction is overkill: accumulate logs (n ≤ ~500).
    (1..=n as u64).map(|i| (i as f64).ln()).sum()
}

impl ExpPoly {
    /// Exponential with the given mean.
    pub fn exponential(mean: f64) -> ExpPoly {
        assert!(mean > 0.0);
        ExpPoly {
            terms: vec![Term {
                ln_c: 0.0,
                n: 0,
                rate: 1.0 / mean,
            }],
        }
    }

    /// Erlang-`k` with total mean `mean`: survival
    /// `Σ_{j<k} (λt)^j/j! · e^{-λt}` with `λ = k/mean`.
    pub fn erlang(k: u32, mean: f64) -> ExpPoly {
        assert!(k >= 1 && mean > 0.0);
        let rate = k as f64 / mean;
        let terms = (0..k)
            .map(|j| Term {
                ln_c: j as f64 * rate.ln() - ln_factorial(j),
                n: j,
                rate,
            })
            .collect();
        ExpPoly { terms }
    }

    /// Two-phase hyperexponential: probability `p` of mean `m1`, else `m2`.
    pub fn hyperexp(p: f64, m1: f64, m2: f64) -> ExpPoly {
        assert!((0.0..=1.0).contains(&p) && m1 > 0.0 && m2 > 0.0);
        let mut terms = Vec::new();
        if p > 0.0 {
            terms.push(Term {
                ln_c: p.ln(),
                n: 0,
                rate: 1.0 / m1,
            });
        }
        if p < 1.0 {
            terms.push(Term {
                ln_c: (1.0 - p).ln(),
                n: 0,
                rate: 1.0 / m2,
            });
        }
        ExpPoly { terms }
    }

    /// Fit by mean and CV exactly as the paper prescribes: Erlang for
    /// CV ≤ 1 (`k = round(1/cv²)`, clamped to `\[1, 150\]`), exponential at
    /// CV = 1, balanced-means H2 for CV > 1. A zero/near-zero CV becomes
    /// the stiffest Erlang (k = 150), the standard proxy for deterministic.
    pub fn fit(mean: f64, cv: f64) -> ExpPoly {
        assert!(mean > 0.0, "fit needs positive mean");
        assert!(cv >= 0.0);
        if cv > 1.0 {
            let c2 = cv * cv;
            let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
            ExpPoly::hyperexp(p, mean / (2.0 * p), mean / (2.0 * (1.0 - p)))
        } else {
            let k = if cv < 1e-6 {
                150
            } else {
                ((1.0 / (cv * cv)).round() as u32).clamp(1, 150)
            };
            ExpPoly::erlang(k, mean)
        }
    }

    /// `∫₀^∞ t^m · S(t) dt = Σ_i c_i (n_i+m)! / rate^{n_i+m+1}`.
    fn survival_power_integral(&self, m: u32) -> f64 {
        self.terms
            .iter()
            .map(|t| {
                let pow = t.n + m;
                (t.ln_c + ln_factorial(pow) - (pow as f64 + 1.0) * t.rate.ln()).exp()
            })
            .sum()
    }

    /// First moment `E[X] = ∫ S`.
    pub fn mean(&self) -> f64 {
        self.survival_power_integral(0)
    }

    /// Second moment `E[X²] = 2∫ t·S`.
    pub fn second_moment(&self) -> f64 {
        2.0 * self.survival_power_integral(1)
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        (self.second_moment() - self.mean().powi(2)).max(0.0)
    }

    /// Coefficient of variation.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }

    /// Moments of `min(X, Y)` for independent `X`, `Y`:
    /// `S_min = S_X · S_Y`, so
    /// `E[min] = ∫ S_X S_Y`, `E[min²] = 2 ∫ t S_X S_Y`.
    pub fn min_moments(&self, other: &ExpPoly) -> (f64, f64) {
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for a in &self.terms {
            for b in &other.terms {
                let rate = a.rate + b.rate;
                let n = a.n + b.n;
                let ln_cd = a.ln_c + b.ln_c;
                m1 += (ln_cd + ln_factorial(n) - (n as f64 + 1.0) * rate.ln()).exp();
                m2 += 2.0 * (ln_cd + ln_factorial(n + 1) - (n as f64 + 2.0) * rate.ln()).exp();
            }
        }
        (m1, m2)
    }

    /// Mean and second moment of `max(X, Y)` for independent `X`, `Y`:
    /// `max + min = X + Y` pointwise, so the identities hold per moment 1
    /// and via `max² + min² = X² + Y²`.
    pub fn max_moments(&self, other: &ExpPoly) -> (f64, f64) {
        let (min1, min2) = self.min_moments(other);
        let m1 = self.mean() + other.mean() - min1;
        let m2 = self.second_moment() + other.second_moment() - min2;
        (m1, m2)
    }

    /// Mean and second moment of `X + Y` (independent).
    pub fn sum_moments(&self, other: &ExpPoly) -> (f64, f64) {
        let m1 = self.mean() + other.mean();
        let m2 = self.second_moment() + 2.0 * self.mean() * other.mean() + other.second_moment();
        (m1, m2)
    }

    /// Re-fit a `(mean, second moment)` pair into the Erlang/H2 family —
    /// the paper's per-node re-approximation.
    pub fn refit(m1: f64, m2: f64) -> ExpPoly {
        assert!(m1 > 0.0, "refit needs positive mean, got {m1}");
        let var = (m2 - m1 * m1).max(0.0);
        let cv = var.sqrt() / m1;
        ExpPoly::fit(m1, cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-12)
    }

    #[test]
    fn exponential_moments() {
        let x = ExpPoly::exponential(2.0);
        assert!(close(x.mean(), 2.0, 1e-12));
        assert!(close(x.second_moment(), 8.0, 1e-12));
        assert!(close(x.cv(), 1.0, 1e-12));
    }

    #[test]
    fn erlang_moments() {
        let x = ExpPoly::erlang(4, 2.0);
        assert!(close(x.mean(), 2.0, 1e-9));
        // Var = mean²/k = 1.
        assert!(close(x.variance(), 1.0, 1e-9));
        assert!(close(x.cv(), 0.5, 1e-9));
    }

    #[test]
    fn big_erlang_is_stable() {
        let x = ExpPoly::erlang(150, 5.0);
        assert!(close(x.mean(), 5.0, 1e-6));
        assert!(x.cv() < 0.1);
    }

    #[test]
    fn hyperexp_moments() {
        let x = ExpPoly::hyperexp(0.25, 4.0, 1.0);
        // mean = 0.25·4 + 0.75·1 = 1.75; E[X²] = 2(0.25·16 + 0.75·1) = 9.5.
        assert!(close(x.mean(), 1.75, 1e-12));
        assert!(close(x.second_moment(), 9.5, 1e-12));
        assert!(x.cv() > 1.0);
    }

    #[test]
    fn fit_matches_requested_mean() {
        for cv in [0.0, 0.2, 0.5, 1.0, 1.5, 3.0] {
            let x = ExpPoly::fit(7.5, cv);
            assert!(close(x.mean(), 7.5, 1e-6), "cv={cv}: mean {}", x.mean());
            if cv >= 1.0 {
                assert!(close(x.cv(), cv, 1e-6), "cv={cv}: got {}", x.cv());
            }
        }
    }

    #[test]
    fn min_of_exponentials_is_exact() {
        // min(Exp(λ), Exp(μ)) ~ Exp(λ+μ).
        let x = ExpPoly::exponential(2.0); // λ = 0.5
        let y = ExpPoly::exponential(1.0); // μ = 1.0
        let (m1, m2) = x.min_moments(&y);
        let lam = 1.5;
        assert!(close(m1, 1.0 / lam, 1e-12));
        assert!(close(m2, 2.0 / (lam * lam), 1e-12));
    }

    #[test]
    fn max_of_iid_exponentials_is_exact() {
        // E[max of two iid Exp(1)] = 1.5; E[max²] = 2·(1 + 1/2 + ... ) —
        // directly: max = X + Y − min, E[max²] = E X² + E Y² − E min².
        let x = ExpPoly::exponential(1.0);
        let y = ExpPoly::exponential(1.0);
        let (m1, m2) = x.max_moments(&y);
        assert!(close(m1, 1.5, 1e-12));
        // E[min²] = 2/4 = 0.5 → E[max²] = 2+2−0.5 = 3.5.
        assert!(close(m2, 3.5, 1e-12));
    }

    #[test]
    fn max_against_monte_carlo_for_mixed_families() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let x = ExpPoly::erlang(3, 4.0);
        let y = ExpPoly::hyperexp(0.3, 5.0, 1.0);
        let (m1, _) = x.max_moments(&y);
        // Sample both via inverse-free simulation of their constructions.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 400_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let ex: f64 = (0..3)
                .map(|_| -(4.0 / 3.0) * rng.gen::<f64>().max(1e-300).ln())
                .sum();
            let hy = if rng.gen::<f64>() < 0.3 {
                -5.0 * rng.gen::<f64>().max(1e-300).ln()
            } else {
                -rng.gen::<f64>().max(1e-300).ln()
            };
            acc += ex.max(hy);
        }
        let mc = acc / n as f64;
        assert!(
            close(m1, mc, 0.01),
            "analytic {m1:.4} vs monte carlo {mc:.4}"
        );
    }

    #[test]
    fn sum_moments_match_convolution() {
        let x = ExpPoly::erlang(2, 2.0);
        let y = ExpPoly::erlang(2, 2.0);
        let (m1, m2) = x.sum_moments(&y);
        // Sum of two Erlang(2, mean 2) = Erlang(4, mean 4).
        let z = ExpPoly::erlang(4, 4.0);
        assert!(close(m1, z.mean(), 1e-9));
        assert!(close(m2, z.second_moment(), 1e-9));
    }

    #[test]
    fn refit_roundtrip() {
        let x = ExpPoly::fit(3.0, 0.5);
        let y = ExpPoly::refit(x.mean(), x.second_moment());
        assert!(close(y.mean(), 3.0, 1e-6));
        assert!(close(y.cv(), x.cv(), 1e-3));
    }
}
