//! # queueing — closed queueing-network substrate
//!
//! Everything the MapReduce performance model needs from queueing theory:
//!
//! * [`network`]: closed multi-class network definitions, the Seidmann
//!   multi-server expansion, and solution containers;
//! * [`mva`]: exact Reiser–Lavenberg MVA, Bard–Schweitzer approximate MVA,
//!   and the overlap-factor-adjusted variant the paper builds on (Mak &
//!   Lundstrom);
//! * [`distribution`]: the Erlang/hyperexponential (phase-type) algebra
//!   behind the Tripathi-based estimator — exact moments for sums, minima
//!   and maxima of independent phase-type variables, with per-node
//!   re-fitting by coefficient of variation;
//! * [`forkjoin`]: the Varki harmonic-number fork/join approximation;
//! * [`markov`]: a small CTMC solver used as ground truth in tests;
//! * [`open`]: the open (Poisson-arrival) counterpart — exact
//!   product-form utilizations and response times over the same
//!   station/demand definitions, with analytic saturation detection.

pub mod bounds;
pub mod distribution;
pub mod forkjoin;
pub mod markov;
pub mod mva;
pub mod network;
pub mod open;

pub use bounds::{
    demand_summary, response_lower_bound, response_upper_bound, throughput_upper_bound,
};
pub use distribution::ExpPoly;
pub use forkjoin::{fork_join_response, harmonic};
pub use mva::{approximate_mva, exact_mva, overlap_mva, EPSILON, MAX_ITER};
pub use network::{ClosedNetwork, MvaSolution, Station, StationKind};
pub use open::{solve_open, OpenSolution};
