//! Fork/join response-time approximations.
//!
//! The paper's second estimator (§4.2.4, after Varki \[10\] and Vianna et
//! al. \[12\]): the response time of a parallel-and node with `s` children is
//!
//! ```text
//! R = H_s · max(T_1, …, T_s),   H_s = Σ_{i=1..s} 1/i
//! ```
//!
//! For the paper's *binary* precedence trees `s = 2`, so `H_2 = 3/2`: "the
//! response time for a parent node equals the biggest child response time
//! plus possible delay (multiplication by 3/2)".

/// The `s`-th harmonic number `H_s = 1 + 1/2 + … + 1/s`.
pub fn harmonic(s: u32) -> f64 {
    (1..=s).map(|i| 1.0 / i as f64).sum()
}

/// Fork/join estimate for a parallel-and node over child response times.
///
/// Returns 0 for an empty child list.
pub fn fork_join_response(children: &[f64]) -> f64 {
    if children.is_empty() {
        return 0.0;
    }
    let max = children.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    harmonic(children.len() as u32) * max
}

/// The exact mean of the maximum of `s` iid exponentials with mean `m` is
/// `m · H_s` — the motivation behind the approximation. Exposed for tests
/// and documentation.
pub fn iid_exponential_max_mean(s: u32, mean: f64) -> f64 {
    mean * harmonic(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn binary_fork_join_is_three_halves_max() {
        let r = fork_join_response(&[4.0, 10.0]);
        assert!((r - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(fork_join_response(&[]), 0.0);
        assert!((fork_join_response(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_max_identity() {
        // For iid exponentials the approximation is exact when the max is
        // the same child the harmonic factor scales.
        assert!((iid_exponential_max_mean(2, 2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overestimates_deterministic_children() {
        // For equal deterministic children the true parallel response is
        // max = T, while the estimator gives 1.5·T — the documented source
        // of the fork/join approach's systematic overestimation (§5.2).
        let r = fork_join_response(&[10.0, 10.0]);
        assert!(r > 10.0);
    }
}
