//! Property-based tests of the queueing substrate.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use queueing::network::{ClosedNetwork, Station};
use queueing::{approximate_mva, exact_mva, ExpPoly};

fn arb_network() -> impl Strategy<Value = (ClosedNetwork, Vec<u32>)> {
    (
        1usize..3,                                  // classes
        2usize..5,                                  // stations
        prop::collection::vec(0.05f64..2.0, 2 * 5), // demand pool
        prop::collection::vec(1u32..6, 3),          // populations pool
    )
        .prop_map(|(c, k, pool, pops)| {
            let stations = (0..k)
                .map(|i| Station::queueing(&format!("s{i}")))
                .collect();
            let classes = (0..c).map(|i| format!("c{i}")).collect();
            let demands = (0..c)
                .map(|ci| (0..k).map(|ki| pool[(ci * k + ki) % pool.len()]).collect())
                .collect();
            (
                ClosedNetwork::new(stations, classes, demands),
                pops[..c].to_vec(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Approximate MVA stays within a bounded relative gap of exact MVA
    /// and both satisfy Little's law.
    #[test]
    fn approx_mva_tracks_exact((net, pops) in arb_network()) {
        let exact = exact_mva(&net, &pops);
        let popsf: Vec<f64> = pops.iter().map(|&n| n as f64).collect();
        let approx = approximate_mva(&net, &popsf);
        for c in 0..net.num_classes() {
            // Little's law on the exact solution.
            let little = exact.throughput[c] * exact.response[c];
            prop_assert!((little - pops[c] as f64).abs() < 1e-6);
            // Schweitzer is known-good to ~15% on small closed networks.
            let rel = (exact.response[c] - approx.response[c]).abs() / exact.response[c];
            prop_assert!(rel < 0.15, "class {c}: {rel:.3} gap");
        }
    }

    /// Utilization never exceeds 1 at any station under exact MVA.
    #[test]
    fn utilization_bounded((net, pops) in arb_network()) {
        let sol = exact_mva(&net, &pops);
        for (k, &u) in sol.utilization.iter().enumerate() {
            prop_assert!(u <= 1.0 + 1e-9, "station {k} utilization {u}");
            prop_assert!(u >= 0.0);
        }
    }

    /// Phase-type algebra identities: for independent X, Y,
    /// E[max] + E[min] = E[X] + E[Y], and max moments dominate min's.
    #[test]
    fn expmix_max_min_identity(
        m1 in 0.1f64..50.0,
        cv1 in 0.05f64..2.5,
        m2 in 0.1f64..50.0,
        cv2 in 0.05f64..2.5,
    ) {
        let x = ExpPoly::fit(m1, cv1);
        let y = ExpPoly::fit(m2, cv2);
        let (max1, max2) = x.max_moments(&y);
        let (min1, min2) = x.min_moments(&y);
        let scale = (x.mean() + y.mean()).max(1.0);
        prop_assert!((max1 + min1 - (x.mean() + y.mean())).abs() < 1e-6 * scale);
        prop_assert!(
            (max2 + min2 - (x.second_moment() + y.second_moment())).abs()
                < 1e-6 * scale * scale
        );
        prop_assert!(max1 >= x.mean().max(y.mean()) - 1e-9, "max below both means");
        prop_assert!(min1 <= x.mean().min(y.mean()) + 1e-9, "min above both means");
        prop_assert!(max2 >= 0.0 && min2 >= 0.0);
    }

    /// Re-fitting preserves the first two moments it is given.
    #[test]
    fn refit_preserves_moments(mean in 0.1f64..100.0, cv in 0.05f64..2.5) {
        let d = ExpPoly::fit(mean, cv);
        let r = ExpPoly::refit(d.mean(), d.second_moment());
        prop_assert!((r.mean() - d.mean()).abs() < 1e-6 * d.mean());
        // Erlang-k quantizes CV below 1; allow family granularity.
        prop_assert!((r.cv() - d.cv()).abs() < 0.12, "{} vs {}", r.cv(), d.cv());
    }
}
