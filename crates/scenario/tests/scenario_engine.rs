//! Integration tests of the scenario engine against the real backends:
//! exact expansion, bit-identical cache hits, determinism of the
//! parallel runner, and heterogeneous workload mixes end to end.

use mapreduce_sim::MB;
use mr2_scenario::{
    class_error_bands, error_bands, expand, run_scenario, schema_version, ArrivalSchedule,
    Backends, EstimatorKind, JobKind, JobTrace, KeyHasher, MixEntry, ResultCache, RunnerConfig,
    Scenario, SweepMode, WorkloadMix,
};

/// A 3-axis sweep (cluster size × N × estimator) small enough for CI but
/// exercising both backends end to end.
fn three_axis_scenario() -> Scenario {
    Scenario::new("it-3axis")
        .axis_nodes([2usize, 3])
        .axis_n_jobs([1usize, 2])
        .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi])
        .axis_input_bytes([256 * MB])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        })
}

/// A heterogeneous sweep: two mixes × two cluster sizes, both backends.
fn mixed_scenario() -> Scenario {
    Scenario::new("it-mixed")
        .axis_nodes([2usize, 3])
        .axis_mixes([
            WorkloadMix::single(JobKind::WordCount, 256 * MB, 1),
            WorkloadMix::new([
                MixEntry::new(JobKind::WordCount, 256 * MB, 1),
                MixEntry::new(JobKind::TeraSort, 128 * MB, 1),
                MixEntry::new(JobKind::Grep, 256 * MB, 1),
            ]),
        ])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        })
}

#[test]
fn spec_expansion_produces_the_exact_cartesian_grid() {
    let s = three_axis_scenario();
    let pts = expand(&s);
    assert_eq!(pts.len(), 2 * 2 * 2);
    let mut expected = Vec::new();
    for &nodes in &[2usize, 3] {
        for &n in &[1usize, 2] {
            for &e in &[EstimatorKind::ForkJoin, EstimatorKind::Tripathi] {
                expected.push((nodes, n, e));
            }
        }
    }
    let actual: Vec<_> = pts
        .iter()
        .map(|p| (p.nodes, p.total_jobs(), p.estimator))
        .collect();
    assert_eq!(actual, expected, "grid content and rightmost-fastest order");
}

#[test]
fn mix_axis_expands_to_the_exact_grid() {
    let s = mixed_scenario().axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi]);
    assert_eq!(s.num_points(), 2 * 2 * 2, "nodes × mixes × estimators");
    let pts = expand(&s);
    assert_eq!(pts.len(), 8);
    // Rightmost fastest: estimator, then mix, then nodes.
    assert_eq!(pts[0].mix.entries.len(), 1);
    assert_eq!(pts[2].mix.entries.len(), 3);
    assert_eq!(pts[4].nodes, 3);
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(p.index, i);
        // Reduce counts resolve per point against its own node count.
        for e in &p.mix.entries {
            assert_eq!(e.reduces as usize, p.nodes);
        }
    }
}

#[test]
fn parallel_sweep_equals_serial_sweep_bit_for_bit() {
    // A heterogeneous sweep: determinism must hold when points carry
    // different mixes (and therefore very different evaluation costs).
    let s = mixed_scenario();
    // Fresh caches so both runs actually evaluate.
    let serial = run_scenario(&s, &ResultCache::new(), &RunnerConfig::serial());
    let parallel = run_scenario(&s, &ResultCache::new(), &RunnerConfig { threads: 8 });
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point, "order must match expansion order");
        let (ea, eb) = (a.estimate().unwrap(), b.estimate().unwrap());
        assert_eq!(ea.to_bits(), eb.to_bits(), "estimate must be bit-identical");
        let (ma, mb) = (a.measured().unwrap(), b.measured().unwrap());
        assert_eq!(
            ma.to_bits(),
            mb.to_bits(),
            "measurement must be bit-identical"
        );
        assert_eq!(a.model, b.model, "per-class estimates included");
        assert_eq!(a.sim, b.sim, "per-class measurements included");
    }
}

#[test]
fn second_identical_run_is_answered_from_the_cache() {
    let s = mixed_scenario();
    let cache = ResultCache::new();
    let first = run_scenario(&s, &cache, &RunnerConfig::default());
    let misses_after_first = cache.stats().misses;
    assert!(misses_after_first > 0);

    let second = run_scenario(&s, &cache, &RunnerConfig::default());
    let stats = cache.stats();
    assert_eq!(
        stats.misses, misses_after_first,
        "second run must not evaluate anything"
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a, b, "cached results must be bit-identical");
    }
}

#[test]
fn estimator_axis_reuses_sim_and_model_evaluations() {
    let s = three_axis_scenario();
    let cache = ResultCache::new();
    run_scenario(&s, &cache, &RunnerConfig::serial());
    // 8 points, but only 2 nodes × 2 N = 4 distinct configurations, each
    // needing one sim + one model record — and the profiling run is
    // N-independent, so 2 node counts need only 2 profile records.
    assert_eq!(cache.stats().entries, 4 * 2 + 2);
}

#[test]
fn convenience_builders_equal_an_explicit_single_entry_mix() {
    // The acceptance criterion: a single-job scenario built via the
    // `axis_jobs`-style conveniences must produce bit-identical
    // `SweepResult`s to the equivalent explicit 1-entry mix.
    let backends = Backends {
        analytic: true,
        profile_calibration: true,
        simulator: Some(2),
    };
    let via_grid = Scenario::new("conv")
        .axis_nodes([2usize, 3])
        .axis_jobs([JobKind::TeraSort])
        .axis_input_bytes([128 * MB])
        .axis_n_jobs([2usize])
        .with_backends(backends);
    let via_mix = Scenario::new("conv")
        .axis_nodes([2usize, 3])
        .axis_mixes([WorkloadMix::single(JobKind::TeraSort, 128 * MB, 2)])
        .with_backends(backends);

    let a = run_scenario(&via_grid, &ResultCache::new(), &RunnerConfig::serial());
    let b = run_scenario(&via_mix, &ResultCache::new(), &RunnerConfig::serial());
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x, y, "bit-identical point results");
    }

    // And through a shared cache the second form is answered entirely
    // from the first form's evaluations.
    let cache = ResultCache::new();
    run_scenario(&via_grid, &cache, &RunnerConfig::serial());
    let misses = cache.stats().misses;
    run_scenario(&via_mix, &cache, &RunnerConfig::serial());
    assert_eq!(cache.stats().misses, misses, "same content keys");
}

#[test]
fn heterogeneous_mix_reports_per_class_and_aggregate_bands() {
    // The acceptance scenario: WordCount + TeraSort + Grep in one
    // point, through both backends, with per-class *and* aggregate
    // model-vs-sim error bands.
    let s = Scenario::new("acceptance")
        .axis_nodes([2usize])
        .axis_mixes([WorkloadMix::new([
            MixEntry::new(JobKind::WordCount, 256 * MB, 1),
            MixEntry::new(JobKind::TeraSort, 256 * MB, 1),
            MixEntry::new(JobKind::Grep, 256 * MB, 1),
        ])])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        });
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    assert_eq!(sweep.points.len(), 1);
    let p = &sweep.points[0];
    let model = p.model.as_ref().unwrap();
    let sim = p.sim.as_ref().unwrap();
    assert_eq!(model.per_class.len(), 3);
    assert_eq!(sim.per_class_median.len(), 3);
    for c in 0..3 {
        assert!(p.class_estimate(c).unwrap() > 0.0);
        assert!(p.class_measured(c).unwrap() > 0.0);
    }

    let aggregate = error_bands(&sweep);
    assert!(!aggregate.is_empty(), "aggregate bands present");
    let per_class = class_error_bands(&sweep);
    assert_eq!(per_class.len(), 3 * 4, "3 classes × 4 series");
    for label in ["wordcount@256MB", "terasort@256MB", "grep@256MB"] {
        assert!(
            per_class.iter().any(|b| b.class == label),
            "band for {label}"
        );
    }
    let report = mr2_scenario::render_report(&sweep);
    assert!(report.contains("per-class model vs simulator"));
}

#[test]
fn old_schema_snapshots_load_zero_entries() {
    // The acceptance criterion for the version bump: snapshots written
    // under previous combined schemas must load nothing into a current
    // cache. The PR-3-era snapshot (model v2 / sim v2) is a committed
    // fixture — the exact bytes that generation of builds persisted.
    let pr3_combined: u64 = (2 << 32) | 2;
    for old_combined in [(1u64 << 32) | 1, pr3_combined] {
        assert_ne!(
            schema_version(),
            old_combined,
            "this PR bumped both schema versions"
        );
    }
    assert_eq!(
        schema_version(),
        (u64::from(mr2_model::MODEL_SCHEMA_VERSION) << 32)
            | u64::from(mapreduce_sim::SIM_SCHEMA_VERSION)
    );

    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/pr3_cache_snapshot.txt");
    let body = std::fs::read_to_string(&fixture).unwrap();
    assert!(
        body.contains(&format!("schema {pr3_combined:016x}")),
        "fixture carries the PR-3 combined schema"
    );
    let cache = ResultCache::new();
    assert_eq!(
        cache.load(&fixture).unwrap(),
        0,
        "PR-3-era snapshot loads nothing"
    );
    assert_eq!(cache.stats().entries, 0);

    // And the same content hashed under the two versions lands on
    // different keys.
    assert_ne!(
        KeyHasher::with_schema_version(pr3_combined)
            .str("p")
            .finish(),
        KeyHasher::versioned().str("p").finish(),
    );
}

#[test]
fn batch_arrivals_are_bit_identical_to_the_pr3_shape() {
    // The acceptance criterion: a sweep that spells out batch arrivals
    // (the new axis) produces bit-identical `SweepResult`s to the same
    // scenario in PR 3's shape — no arrivals axis touched, offset-free
    // mixes.
    let backends = Backends {
        analytic: true,
        profile_calibration: true,
        simulator: Some(2),
    };
    let pr3_shape = Scenario::new("arr")
        .axis_nodes([2usize, 3])
        .axis_mixes([WorkloadMix::new([
            MixEntry::new(JobKind::WordCount, 256 * MB, 1),
            MixEntry::new(JobKind::Grep, 256 * MB, 1),
        ])])
        .with_backends(backends);
    let explicit = pr3_shape.clone().axis_arrivals([ArrivalSchedule::Batch]);

    let a = run_scenario(&pr3_shape, &ResultCache::new(), &RunnerConfig::serial());
    let b = run_scenario(&explicit, &ResultCache::new(), &RunnerConfig::serial());
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x, y, "bit-identical point results");
    }

    // And through a shared cache the explicit form is answered entirely
    // from the default form's evaluations — same content keys.
    let cache = ResultCache::new();
    run_scenario(&pr3_shape, &cache, &RunnerConfig::serial());
    let misses = cache.stats().misses;
    run_scenario(&explicit, &cache, &RunnerConfig::serial());
    assert_eq!(cache.stats().misses, misses, "same content keys");
}

#[test]
fn arrival_schedule_axis_changes_ground_truth_and_cache_keys() {
    let s = Scenario::new("arrivals")
        .axis_nodes([2usize])
        .axis_input_bytes([512 * MB])
        .axis_n_jobs([3usize])
        .axis_arrivals([
            ArrivalSchedule::Batch,
            ArrivalSchedule::Staggered {
                interval_ms: 120_000,
            },
        ])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: false,
            simulator: Some(2),
        });
    let cache = ResultCache::new();
    let sweep = run_scenario(&s, &cache, &RunnerConfig::serial());
    assert_eq!(sweep.points.len(), 2);
    assert_eq!(
        cache.stats().misses,
        4,
        "each schedule is its own evaluation (sim + model per schedule)"
    );
    let (batch, staggered) = (&sweep.points[0], &sweep.points[1]);
    // Staggering relieves contention (lower response) but occupies the
    // cluster longer (higher makespan) — in both backends.
    assert!(staggered.measured().unwrap() < batch.measured().unwrap());
    assert!(staggered.measured_makespan().unwrap() > batch.measured_makespan().unwrap());
    assert!(staggered.estimate().unwrap() < batch.estimate().unwrap());
    assert!(staggered.estimate_makespan().unwrap() > batch.estimate_makespan().unwrap());
    // Response and makespan now genuinely diverge in the report/CSV.
    let csv = mr2_scenario::to_csv(&sweep);
    assert!(csv.contains("stagger@120000ms"));
    assert!(csv.contains("measured_makespan"));
    let report = mr2_scenario::render_report(&sweep);
    assert!(report.contains("stagger@120000ms"));
}

#[test]
fn trace_replay_reports_per_class_error_bands() {
    // The acceptance criterion: replaying a trace through `Scenario`
    // yields per-class model-vs-sim error bands.
    let trace = JobTrace::parse(
        "{\"job_id\":\"j1\",\"job\":\"wordcount\",\"submit_time_ms\":0,\"input_bytes\":268435456}\n\
         {\"job_id\":\"j2\",\"job\":\"grep\",\"submit_time_ms\":45000,\"input_bytes\":268435456}\n\
         {\"job_id\":\"j3\",\"job\":\"terasort\",\"submit_time_ms\":90000,\"input_bytes\":134217728}",
    )
    .unwrap();
    let s = Scenario::new("replay")
        .axis_nodes([2usize])
        .axis_mixes([trace.to_mix()])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        });
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    let p = &sweep.points[0];
    assert_eq!(p.point.mix.entries.len(), 3, "one class per trace job");
    assert_eq!(p.point.submit_offsets(), vec![0.0, 45.0, 90.0]);
    let bands = class_error_bands(&sweep);
    assert_eq!(bands.len(), 3 * 4, "3 replayed classes × 4 series");
    for b in &bands {
        assert!(b.band.mean.is_finite());
    }
    assert!(!error_bands(&sweep).is_empty());
    // The replayed mix's makespan covers the last arrival.
    assert!(p.measured_makespan().unwrap() > 90.0);
    assert!(p.estimate_makespan().unwrap() > 90.0);
}

#[test]
fn straggler_axis_changes_ground_truth() {
    // Second half of the ROADMAP failure-injection item: a slow node
    // measurably slows the simulated workload, and the axis separates
    // cache keys.
    let s = Scenario::new("stragglers")
        .axis_nodes([2usize])
        .axis_input_bytes([512 * MB])
        .axis_slow_node_factor([1.0, 4.0])
        .with_backends(Backends {
            analytic: false,
            profile_calibration: false,
            simulator: Some(2),
        });
    let cache = ResultCache::new();
    let sweep = run_scenario(&s, &cache, &RunnerConfig::serial());
    assert_eq!(sweep.points.len(), 2);
    assert_eq!(cache.stats().misses, 2, "two distinct sim evaluations");
    let (clean, slow) = (sweep.points[0].measured(), sweep.points[1].measured());
    assert!(
        slow.unwrap() > clean.unwrap() * 1.1,
        "a 4x slow node must straggle the workload: {clean:?} vs {slow:?}"
    );
}

#[test]
fn map_failure_axis_changes_ground_truth() {
    let s = Scenario::new("failures")
        .axis_nodes([2usize])
        .axis_input_bytes([256 * MB])
        .axis_map_failure_prob([0.0, 0.4])
        .with_backends(Backends {
            analytic: false,
            profile_calibration: false,
            simulator: Some(1),
        });
    let cache = ResultCache::new();
    let sweep = run_scenario(&s, &cache, &RunnerConfig::serial());
    assert_eq!(sweep.points.len(), 2);
    assert_eq!(cache.stats().misses, 2, "two distinct sim evaluations");
    let (clean, failing) = (sweep.points[0].measured(), sweep.points[1].measured());
    assert!(
        failing.unwrap() > clean.unwrap(),
        "retried maps must slow the job: {clean:?} vs {failing:?}"
    );
}

#[test]
fn overlapping_scenarios_share_cache_entries_across_runs() {
    // Two differently named and differently shaped scenarios whose
    // grids overlap in one configuration (nodes=2, N=1): the second
    // sweep must reuse the first sweep's evaluations for it.
    let backends = Backends {
        analytic: true,
        profile_calibration: false,
        simulator: Some(1),
    };
    let a = Scenario::new("sweep-a")
        .axis_nodes([2usize, 3])
        .axis_input_bytes([128 * MB])
        .with_backends(backends);
    let b = Scenario::new("sweep-b")
        .axis_nodes([2usize])
        .axis_n_jobs([1usize, 2])
        .axis_input_bytes([128 * MB])
        .with_backends(backends);

    let cache = ResultCache::new();
    let ra = run_scenario(&a, &cache, &RunnerConfig::default());
    let misses_after_a = cache.stats().misses;
    assert_eq!(misses_after_a, 2 * 2, "2 configs × (sim + model)");

    let rb = run_scenario(&b, &cache, &RunnerConfig::default());
    let stats = cache.stats();
    assert_eq!(
        stats.misses,
        misses_after_a + 2,
        "only b's novel N=2 config evaluates; the shared config is served from cache"
    );
    // And the shared configuration's numbers are bit-identical.
    let shared_a = &ra.points[0];
    let shared_b = &rb.points[0];
    assert_eq!(shared_a.point.nodes, shared_b.point.nodes);
    assert_eq!(shared_a.model, shared_b.model);
    assert_eq!(shared_a.sim, shared_b.sim);
}

#[test]
fn comparison_layer_reports_error_bands_per_series() {
    let s = three_axis_scenario();
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    let bands = error_bands(&sweep);
    assert!(!bands.is_empty());
    let fj = bands
        .iter()
        .find(|b| b.estimator == EstimatorKind::ForkJoin)
        .expect("fork/join band present");
    // On-axis series are judged on their own 4 points.
    assert_eq!(fj.band.count, 4);
    assert!(fj.band.min <= fj.band.mean && fj.band.mean <= fj.band.max);
    assert!(fj.band.max.is_finite());
}

#[test]
fn zip_sweep_runs_end_to_end() {
    let s = Scenario::new("it-zip")
        .sweep_mode(SweepMode::Zip)
        .axis_nodes([2usize, 3])
        .axis_input_bytes([128 * MB, 256 * MB])
        .with_backends(Backends::analytic_only());
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    assert_eq!(sweep.points.len(), 2);
    assert_eq!(sweep.points[0].point.nodes, 2);
    assert_eq!(sweep.points[0].point.mix.entries[0].input_bytes, 128 * MB);
    assert_eq!(sweep.points[1].point.nodes, 3);
    assert_eq!(sweep.points[1].point.mix.entries[0].input_bytes, 256 * MB);
    assert!(sweep.points.iter().all(|p| p.sim.is_none()));
    assert!(sweep.points.iter().all(|p| p.estimate().unwrap() > 0.0));
}
