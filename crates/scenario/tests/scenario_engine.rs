//! Integration tests of the scenario engine against the real backends:
//! exact expansion, bit-identical cache hits, and determinism of the
//! parallel runner.

use mapreduce_sim::MB;
use mr2_scenario::{
    error_bands, expand, run_scenario, Backends, EstimatorKind, ResultCache, RunnerConfig,
    Scenario, SweepMode,
};

/// A 3-axis sweep (cluster size × N × estimator) small enough for CI but
/// exercising both backends end to end.
fn three_axis_scenario() -> Scenario {
    Scenario::new("it-3axis")
        .axis_nodes([2usize, 3])
        .axis_n_jobs([1usize, 2])
        .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi])
        .axis_input_bytes([256 * MB])
        .with_backends(Backends {
            analytic: true,
            profile_calibration: true,
            simulator: Some(2),
        })
}

#[test]
fn spec_expansion_produces_the_exact_cartesian_grid() {
    let s = three_axis_scenario();
    let pts = expand(&s);
    assert_eq!(pts.len(), 2 * 2 * 2);
    let mut expected = Vec::new();
    for &nodes in &[2usize, 3] {
        for &n in &[1usize, 2] {
            for &e in &[EstimatorKind::ForkJoin, EstimatorKind::Tripathi] {
                expected.push((nodes, n, e));
            }
        }
    }
    let actual: Vec<_> = pts
        .iter()
        .map(|p| (p.nodes, p.n_jobs, p.estimator))
        .collect();
    assert_eq!(actual, expected, "grid content and rightmost-fastest order");
}

#[test]
fn parallel_sweep_equals_serial_sweep_bit_for_bit() {
    let s = three_axis_scenario();
    // Fresh caches so both runs actually evaluate.
    let serial = run_scenario(&s, &ResultCache::new(), &RunnerConfig::serial());
    let parallel = run_scenario(&s, &ResultCache::new(), &RunnerConfig { threads: 8 });
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point, "order must match expansion order");
        let (ea, eb) = (a.estimate().unwrap(), b.estimate().unwrap());
        assert_eq!(ea.to_bits(), eb.to_bits(), "estimate must be bit-identical");
        let (ma, mb) = (a.measured().unwrap(), b.measured().unwrap());
        assert_eq!(
            ma.to_bits(),
            mb.to_bits(),
            "measurement must be bit-identical"
        );
    }
}

#[test]
fn second_identical_run_is_answered_from_the_cache() {
    let s = three_axis_scenario();
    let cache = ResultCache::new();
    let first = run_scenario(&s, &cache, &RunnerConfig::default());
    let misses_after_first = cache.stats().misses;
    assert!(misses_after_first > 0);

    let second = run_scenario(&s, &cache, &RunnerConfig::default());
    let stats = cache.stats();
    assert_eq!(
        stats.misses, misses_after_first,
        "second run must not evaluate anything"
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a, b, "cached results must be bit-identical");
    }
}

#[test]
fn estimator_axis_reuses_sim_and_model_evaluations() {
    let s = three_axis_scenario();
    let cache = ResultCache::new();
    run_scenario(&s, &cache, &RunnerConfig::serial());
    // 8 points, but only 2 nodes × 2 N = 4 distinct configurations, each
    // needing one sim + one model record — and the profiling run is
    // N-independent, so 2 node counts need only 2 profile records.
    assert_eq!(cache.stats().entries, 4 * 2 + 2);
}

#[test]
fn overlapping_scenarios_share_cache_entries_across_runs() {
    // Two differently named and differently shaped scenarios whose
    // grids overlap in one configuration (nodes=2, N=1): the second
    // sweep must reuse the first sweep's evaluations for it.
    let backends = Backends {
        analytic: true,
        profile_calibration: false,
        simulator: Some(1),
    };
    let a = Scenario::new("sweep-a")
        .axis_nodes([2usize, 3])
        .axis_input_bytes([128 * MB])
        .with_backends(backends);
    let b = Scenario::new("sweep-b")
        .axis_nodes([2usize])
        .axis_n_jobs([1usize, 2])
        .axis_input_bytes([128 * MB])
        .with_backends(backends);

    let cache = ResultCache::new();
    let ra = run_scenario(&a, &cache, &RunnerConfig::default());
    let misses_after_a = cache.stats().misses;
    assert_eq!(misses_after_a, 2 * 2, "2 configs × (sim + model)");

    let rb = run_scenario(&b, &cache, &RunnerConfig::default());
    let stats = cache.stats();
    assert_eq!(
        stats.misses,
        misses_after_a + 2,
        "only b's novel N=2 config evaluates; the shared config is served from cache"
    );
    // And the shared configuration's numbers are bit-identical.
    let shared_a = &ra.points[0];
    let shared_b = &rb.points[0];
    assert_eq!(shared_a.point.nodes, shared_b.point.nodes);
    assert_eq!(shared_a.model, shared_b.model);
    assert_eq!(shared_a.sim, shared_b.sim);
}

#[test]
fn comparison_layer_reports_error_bands_per_series() {
    let s = three_axis_scenario();
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    let bands = error_bands(&sweep);
    assert!(!bands.is_empty());
    let fj = bands
        .iter()
        .find(|b| b.estimator == EstimatorKind::ForkJoin)
        .expect("fork/join band present");
    // On-axis series are judged on their own 4 points.
    assert_eq!(fj.band.count, 4);
    assert!(fj.band.min <= fj.band.mean && fj.band.mean <= fj.band.max);
    assert!(fj.band.max.is_finite());
}

#[test]
fn zip_sweep_runs_end_to_end() {
    let s = Scenario::new("it-zip")
        .sweep_mode(SweepMode::Zip)
        .axis_nodes([2usize, 3])
        .axis_input_bytes([128 * MB, 256 * MB])
        .with_backends(Backends::analytic_only());
    let sweep = run_scenario(&s, &ResultCache::new(), &RunnerConfig::default());
    assert_eq!(sweep.points.len(), 2);
    assert_eq!(sweep.points[0].point.nodes, 2);
    assert_eq!(sweep.points[0].point.input_bytes, 128 * MB);
    assert_eq!(sweep.points[1].point.nodes, 3);
    assert_eq!(sweep.points[1].point.input_bytes, 256 * MB);
    assert!(sweep.points.iter().all(|p| p.sim.is_none()));
    assert!(sweep.points.iter().all(|p| p.estimate().unwrap() > 0.0));
}
