//! Sweep expansion: [`Scenario`] → concrete [`EvalPoint`]s.
//!
//! Expansion order is deterministic and documented: cartesian sweeps
//! enumerate axes with the *rightmost axis fastest* in the order
//! `nodes → block_mb → container_mb → schedulers → jobs → input_bytes →
//! n_jobs → estimators`; zip sweeps walk all axes in lock-step with
//! length-1 axes broadcast. The `index` of every point is its position
//! in that order, so serial and parallel runs agree on numbering.

use crate::spec::{EvalPoint, Scenario, SweepMode};

/// Expand a scenario into its evaluation points.
///
/// Panics (via [`Scenario::validate`]) on empty axes or zip-length
/// mismatches.
pub fn expand(s: &Scenario) -> Vec<EvalPoint> {
    s.validate();
    match s.sweep {
        SweepMode::Cartesian => expand_cartesian(s),
        SweepMode::Zip => expand_zip(s),
    }
}

fn expand_cartesian(s: &Scenario) -> Vec<EvalPoint> {
    let mut out = Vec::with_capacity(s.num_points());
    let mut index = 0;
    for &nodes in &s.nodes {
        for &block_mb in &s.block_mb {
            for &container_mb in &s.container_mb {
                for &scheduler in &s.schedulers {
                    for &job in &s.jobs {
                        for &input_bytes in &s.input_bytes {
                            for &n_jobs in &s.n_jobs {
                                for &estimator in &s.estimators {
                                    out.push(EvalPoint {
                                        index,
                                        nodes,
                                        block_mb,
                                        container_mb,
                                        scheduler,
                                        job,
                                        input_bytes,
                                        n_jobs,
                                        estimator,
                                        reduces: s.reduces.reduces(nodes),
                                        seed: s.seed,
                                    });
                                    index += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn expand_zip(s: &Scenario) -> Vec<EvalPoint> {
    let n = s.num_points();
    // Length-1 axes broadcast across the whole sweep.
    let pick = |i: usize, len: usize| if len == 1 { 0 } else { i };
    (0..n)
        .map(|i| {
            let nodes = s.nodes[pick(i, s.nodes.len())];
            EvalPoint {
                index: i,
                nodes,
                block_mb: s.block_mb[pick(i, s.block_mb.len())],
                container_mb: s.container_mb[pick(i, s.container_mb.len())],
                scheduler: s.schedulers[pick(i, s.schedulers.len())],
                job: s.jobs[pick(i, s.jobs.len())],
                input_bytes: s.input_bytes[pick(i, s.input_bytes.len())],
                n_jobs: s.n_jobs[pick(i, s.n_jobs.len())],
                estimator: s.estimators[pick(i, s.estimators.len())],
                reduces: s.reduces.reduces(nodes),
                seed: s.seed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EstimatorKind, JobKind, ReducePolicy};
    use mapreduce_sim::GB;

    #[test]
    fn cartesian_grid_is_exact() {
        let s = Scenario::new("grid")
            .axis_nodes([4usize, 8])
            .axis_n_jobs([1usize, 2, 3])
            .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi]);
        let pts = expand(&s);
        assert_eq!(pts.len(), 2 * 3 * 2);
        // Every combination appears exactly once.
        for (ni, &nodes) in [4usize, 8].iter().enumerate() {
            for (ji, &n_jobs) in [1usize, 2, 3].iter().enumerate() {
                for (ei, &est) in [EstimatorKind::ForkJoin, EstimatorKind::Tripathi]
                    .iter()
                    .enumerate()
                {
                    let expected_index = ni * 6 + ji * 2 + ei;
                    let matching: Vec<_> = pts
                        .iter()
                        .filter(|p| p.nodes == nodes && p.n_jobs == n_jobs && p.estimator == est)
                        .collect();
                    assert_eq!(matching.len(), 1, "{nodes}/{n_jobs}/{est:?}");
                    assert_eq!(matching[0].index, expected_index, "rightmost-fastest order");
                }
            }
        }
        // Indices are the positions.
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn zip_walks_in_lockstep_with_broadcast() {
        let s = Scenario::new("zip")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_input_bytes([GB, 2 * GB, 5 * GB])
            .axis_n_jobs([2usize]); // broadcast
        let pts = expand(&s);
        assert_eq!(pts.len(), 3);
        for (i, (nodes, input)) in [(4, GB), (6, 2 * GB), (8, 5 * GB)].iter().enumerate() {
            assert_eq!(pts[i].nodes, *nodes);
            assert_eq!(pts[i].input_bytes, *input);
            assert_eq!(pts[i].n_jobs, 2);
        }
    }

    #[test]
    fn reduce_policy_follows_node_axis() {
        let s = Scenario::new("r")
            .axis_nodes([4usize, 8])
            .reduce_policy(ReducePolicy::PerNode);
        let pts = expand(&s);
        assert_eq!(pts[0].reduces, 4);
        assert_eq!(pts[1].reduces, 8);
        let s = s.reduce_policy(ReducePolicy::Fixed(2));
        let pts = expand(&s);
        assert!(pts.iter().all(|p| p.reduces == 2));
    }

    #[test]
    fn all_job_kinds_expand() {
        let s =
            Scenario::new("jobs").axis_jobs([JobKind::WordCount, JobKind::TeraSort, JobKind::Grep]);
        let pts = expand(&s);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            p.job_spec().validate();
        }
    }
}
