//! Sweep expansion: [`Scenario`] → concrete [`EvalPoint`]s.
//!
//! Expansion order is deterministic and documented: cartesian sweeps
//! enumerate axes with the *rightmost axis fastest* in the order
//! `nodes → block_mb → container_mb → schedulers → workload →
//! arrivals → arrival_rate → map_failure_prob → slow_node_factor →
//! estimators`, where
//! a `Grid` workload contributes its three lists in the order
//! `jobs → input_bytes → n_jobs` and a `Mixes` workload contributes one
//! list; zip sweeps walk all axes in lock-step with length-1 axes
//! broadcast. The `index` of every point is its position in that order,
//! so serial and parallel runs agree on numbering.

use crate::spec::{EvalPoint, Scenario, SweepMode};

/// Expand a scenario into its evaluation points.
///
/// Panics (via [`Scenario::validate`]) on empty axes, zip-length
/// mismatches, out-of-range failure probabilities, or invalid reduce
/// counts.
pub fn expand(s: &Scenario) -> Vec<EvalPoint> {
    s.validate();
    match s.sweep {
        SweepMode::Cartesian => expand_cartesian(s),
        SweepMode::Zip => expand_zip(s),
    }
}

fn expand_cartesian(s: &Scenario) -> Vec<EvalPoint> {
    let mixes = s.workload_values();
    let mut out = Vec::with_capacity(s.num_points());
    let mut index = 0;
    for &nodes in &s.nodes {
        for &block_mb in &s.block_mb {
            for &container_mb in &s.container_mb {
                for &scheduler in &s.schedulers {
                    for mix in &mixes {
                        for arrivals in &s.arrivals {
                            for &arrival_rate in &s.arrival_rate {
                                for &map_failure_prob in &s.map_failure_prob {
                                    for &slow_node_factor in &s.slow_node_factor {
                                        for &estimator in &s.estimators {
                                            out.push(EvalPoint {
                                                index,
                                                nodes,
                                                block_mb,
                                                container_mb,
                                                scheduler,
                                                mix: mix.resolve(nodes),
                                                arrivals: arrivals.clone(),
                                                arrival_rate,
                                                map_failure_prob,
                                                slow_node_factor,
                                                estimator,
                                                seed: s.seed,
                                            });
                                            index += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn expand_zip(s: &Scenario) -> Vec<EvalPoint> {
    let n = s.num_points();
    // Length-1 axes broadcast across the whole sweep. The workload's
    // mix at zip position `i` comes from `Scenario::zip_workload_at`
    // (a `Grid` zips its three lists independently, an explicit mix
    // list zips as one axis).
    let pick = |i: usize, len: usize| if len == 1 { 0 } else { i };
    (0..n)
        .map(|i| {
            let nodes = s.nodes[pick(i, s.nodes.len())];
            EvalPoint {
                index: i,
                nodes,
                block_mb: s.block_mb[pick(i, s.block_mb.len())],
                container_mb: s.container_mb[pick(i, s.container_mb.len())],
                scheduler: s.schedulers[pick(i, s.schedulers.len())],
                mix: s.zip_workload_at(i).resolve(nodes),
                arrivals: s.arrivals[pick(i, s.arrivals.len())].clone(),
                arrival_rate: s.arrival_rate[pick(i, s.arrival_rate.len())],
                map_failure_prob: s.map_failure_prob[pick(i, s.map_failure_prob.len())],
                slow_node_factor: s.slow_node_factor[pick(i, s.slow_node_factor.len())],
                estimator: s.estimators[pick(i, s.estimators.len())],
                seed: s.seed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EstimatorKind, JobKind, MixEntry, ReducePolicy, WorkloadMix};
    use mapreduce_sim::GB;

    #[test]
    fn cartesian_grid_is_exact() {
        let s = Scenario::new("grid")
            .axis_nodes([4usize, 8])
            .axis_n_jobs([1usize, 2, 3])
            .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi]);
        let pts = expand(&s);
        assert_eq!(pts.len(), 2 * 3 * 2);
        // Every combination appears exactly once.
        for (ni, &nodes) in [4usize, 8].iter().enumerate() {
            for (ji, &n_jobs) in [1usize, 2, 3].iter().enumerate() {
                for (ei, &est) in [EstimatorKind::ForkJoin, EstimatorKind::Tripathi]
                    .iter()
                    .enumerate()
                {
                    let expected_index = ni * 6 + ji * 2 + ei;
                    let matching: Vec<_> = pts
                        .iter()
                        .filter(|p| {
                            p.nodes == nodes && p.total_jobs() == n_jobs && p.estimator == est
                        })
                        .collect();
                    assert_eq!(matching.len(), 1, "{nodes}/{n_jobs}/{est:?}");
                    assert_eq!(matching[0].index, expected_index, "rightmost-fastest order");
                }
            }
        }
        // Indices are the positions.
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn cartesian_mix_axis_is_exact() {
        let mixes = [
            WorkloadMix::single(JobKind::WordCount, GB, 1),
            WorkloadMix::new([
                MixEntry::new(JobKind::WordCount, GB, 1),
                MixEntry::new(JobKind::TeraSort, GB, 1),
            ]),
            WorkloadMix::new([
                MixEntry::new(JobKind::WordCount, GB, 2),
                MixEntry::new(JobKind::TeraSort, GB, 1),
                MixEntry::new(JobKind::Grep, GB, 1),
            ]),
        ];
        let s = Scenario::new("mixgrid")
            .axis_nodes([2usize, 4])
            .axis_mixes(mixes.to_vec())
            .axis_map_failure_prob([0.0, 0.2])
            .axis_estimators([EstimatorKind::ForkJoin, EstimatorKind::Tripathi]);
        assert_eq!(s.num_points(), 2 * 3 * 2 * 2);
        let pts = expand(&s);
        assert_eq!(pts.len(), 24, "mix axis participates in the product");
        // The mix axis sits between schedulers and map_failure_prob:
        // rightmost fastest means estimator, then failure, then mix.
        assert_eq!(pts[0].mix.entries.len(), 1);
        assert_eq!(pts[0].map_failure_prob, 0.0);
        assert_eq!(pts[1].estimator, EstimatorKind::Tripathi);
        assert_eq!(pts[2].map_failure_prob, 0.2);
        assert_eq!(pts[4].mix.entries.len(), 2);
        assert_eq!(pts[8].mix.entries.len(), 3);
        assert_eq!(pts[8].mix.total_jobs(), 4);
        assert_eq!(pts[12].nodes, 4);
        // Reduce policies resolve against each point's node count.
        assert_eq!(pts[0].mix.entries[0].reduces, 2);
        assert_eq!(pts[12].mix.entries[0].reduces, 4);
    }

    #[test]
    fn zip_walks_in_lockstep_with_broadcast() {
        let s = Scenario::new("zip")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([4usize, 6, 8])
            .axis_input_bytes([GB, 2 * GB, 5 * GB])
            .axis_n_jobs([2usize]); // broadcast
        let pts = expand(&s);
        assert_eq!(pts.len(), 3);
        for (i, (nodes, input)) in [(4, GB), (6, 2 * GB), (8, 5 * GB)].iter().enumerate() {
            assert_eq!(pts[i].nodes, *nodes);
            assert_eq!(pts[i].mix.entries[0].input_bytes, *input);
            assert_eq!(pts[i].total_jobs(), 2);
        }
    }

    #[test]
    fn zip_mix_axis_is_one_axis() {
        let s = Scenario::new("zipmix")
            .sweep_mode(SweepMode::Zip)
            .axis_nodes([2usize, 4])
            .axis_mixes([
                WorkloadMix::single(JobKind::Grep, GB, 1),
                WorkloadMix::new([
                    MixEntry::new(JobKind::WordCount, GB, 1),
                    MixEntry::new(JobKind::TeraSort, GB, 1),
                ]),
            ]);
        let pts = expand(&s);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].mix.entries[0].job, JobKind::Grep);
        assert_eq!(pts[1].mix.entries.len(), 2);
        assert_eq!(pts[1].mix.entries[0].reduces, 4, "resolved at 4 nodes");
    }

    #[test]
    fn reduce_policy_follows_node_axis() {
        let s = Scenario::new("r")
            .axis_nodes([4usize, 8])
            .reduce_policy(ReducePolicy::PerNode);
        let pts = expand(&s);
        assert_eq!(pts[0].mix.entries[0].reduces, 4);
        assert_eq!(pts[1].mix.entries[0].reduces, 8);
        let s = s.reduce_policy(ReducePolicy::Fixed(2));
        let pts = expand(&s);
        assert!(pts.iter().all(|p| p.mix.entries[0].reduces == 2));
    }

    #[test]
    fn all_job_kinds_expand() {
        let s =
            Scenario::new("jobs").axis_jobs([JobKind::WordCount, JobKind::TeraSort, JobKind::Grep]);
        let pts = expand(&s);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            for spec in p.job_specs() {
                spec.validate();
            }
        }
    }
}
