//! Trace ingestion: replay real job-history mixes as workload axes.
//!
//! Hadoop clusters log every job's submission time, type, input size,
//! and reduce count (the job-history files Rumen folds into JSON
//! traces). This module parses a JSON-lines rendering of such a history
//! into a [`JobTrace`] — one [`TraceJob`] per line — and converts it to
//! a [`WorkloadMix`] whose entries carry each job's recorded submission
//! offset, so a [`crate::Scenario`] sweeps *replayed production mixes*
//! instead of synthetic presets.
//!
//! ## Format
//!
//! One JSON object per line; blank lines and `#` comment lines are
//! skipped. Recognized fields (Rumen-style aliases in parentheses):
//!
//! | field | required | meaning |
//! |---|---|---|
//! | `job` (`jobtype`, `jobName`) | yes | workload preset: `wordcount`, `terasort`, or `grep` (case-insensitive) |
//! | `submit_time_ms` (`submitTime`) | yes | submission timestamp, ms (absolute or relative — offsets are rebased to the earliest) |
//! | `job_id` (`jobID`) | no | stable id; duplicates are rejected |
//! | `input_bytes` (`hdfsBytesRead`) | no | input dataset size (default 1 GiB) |
//! | `reduces` (`totalReduces`) | no | fixed reduce count ≥ 1 (default: per-node sizing) |
//!
//! Unknown fields are tolerated — real job-history records carry dozens
//! of counters — but a recognized field of the wrong type or value is a
//! line-numbered error, never a silent default: a half-read trace would
//! hand a capacity planner confidently wrong mixes.
//!
//! Lines may appear in any order (history files interleave finish
//! times); parsing sorts jobs by submission time, stably, and rebases
//! offsets so the earliest submission is t = 0.

use std::fmt;
use std::path::Path;

use crate::json::Json;
use crate::spec::{JobKind, MixEntry, ReducePolicy, WorkloadMix};
use mapreduce_sim::GB;

/// A parse failure, pinned to the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 for whole-trace errors, e.g. an empty
    /// trace).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    fn at(line: usize, message: impl Into<String>) -> TraceError {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// One job of a parsed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceJob {
    /// Job id (from the trace, or `line<N>` when the record had none).
    pub id: String,
    /// Workload preset the job maps onto.
    pub job: JobKind,
    /// Input dataset size, bytes.
    pub input_bytes: u64,
    /// Reduce sizing: the trace's fixed count, or per-node when the
    /// record had none.
    pub reduces: ReducePolicy,
    /// Submission offset, milliseconds after the trace's earliest
    /// submission (rebased during parsing).
    pub submit_offset_ms: u64,
}

/// A parsed job-history trace: jobs in submission order, offsets
/// rebased to the earliest submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTrace {
    /// The jobs, sorted stably by submission offset.
    pub jobs: Vec<TraceJob>,
}

fn parse_job_kind(s: &str) -> Option<JobKind> {
    let lower = s.to_ascii_lowercase();
    [JobKind::WordCount, JobKind::TeraSort, JobKind::Grep]
        .into_iter()
        .find(|k| k.name() == lower)
}

/// A `u64` field under any of `keys`; `Ok(None)` when absent, a
/// line-numbered error naming the alias actually present when it has
/// the wrong type.
fn field_u64(v: &Json, keys: &[&str], line: usize) -> Result<Option<u64>, TraceError> {
    for key in keys {
        if let Some(f) = v.get(key) {
            return f
                .as_u64()
                .map(Some)
                .ok_or_else(|| field_err(key, line, "must be a non-negative integer"));
        }
    }
    Ok(None)
}

fn field_str<'a>(v: &'a Json, keys: &[&str], line: usize) -> Result<Option<&'a str>, TraceError> {
    for key in keys {
        if let Some(f) = v.get(key) {
            return f
                .as_str()
                .map(Some)
                .ok_or_else(|| field_err(key, line, "must be a string"));
        }
    }
    Ok(None)
}

fn field_err(key: &str, line: usize, what: &str) -> TraceError {
    TraceError::at(line, format!("field `{key}` {what}"))
}

impl JobTrace {
    /// Parse a JSON-lines job-history trace. Every malformed line is a
    /// [`TraceError`] carrying its 1-based line number; an error never
    /// yields a partial trace.
    pub fn parse(text: &str) -> Result<JobTrace, TraceError> {
        let mut raw: Vec<(u64, TraceJob)> = Vec::new();
        let mut seen_ids: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let v = Json::parse(trimmed)
                .map_err(|e| TraceError::at(lineno, format!("invalid JSON ({e})")))?;
            if !matches!(v, Json::Obj(_)) {
                return Err(TraceError::at(lineno, "record must be a JSON object"));
            }
            let job = field_str(&v, &["job", "jobtype", "jobName"], lineno)?
                .ok_or_else(|| TraceError::at(lineno, "record needs a `job` field"))?;
            let job = parse_job_kind(job).ok_or_else(|| {
                TraceError::at(
                    lineno,
                    format!("unknown job `{job}` (expected `wordcount`, `terasort`, or `grep`)"),
                )
            })?;
            let submit_ms = field_u64(&v, &["submit_time_ms", "submitTime"], lineno)?
                .ok_or_else(|| TraceError::at(lineno, "record needs a `submit_time_ms` field"))?;
            let input_bytes =
                field_u64(&v, &["input_bytes", "hdfsBytesRead"], lineno)?.unwrap_or(GB);
            if input_bytes == 0 {
                return Err(TraceError::at(
                    lineno,
                    "field `input_bytes` must be positive",
                ));
            }
            let reduces = match field_u64(&v, &["reduces", "totalReduces"], lineno)? {
                None => ReducePolicy::PerNode,
                Some(r) => ReducePolicy::Fixed(
                    u32::try_from(r).ok().filter(|&r| r > 0).ok_or_else(|| {
                        TraceError::at(lineno, "field `reduces` must be a positive 32-bit count")
                    })?,
                ),
            };
            let id = match field_str(&v, &["job_id", "jobID", "jobid"], lineno)? {
                Some(id) => {
                    if let Some(&first) = seen_ids.get(id) {
                        return Err(TraceError::at(
                            lineno,
                            format!("duplicate job id `{id}` (first seen on line {first})"),
                        ));
                    }
                    seen_ids.insert(id.to_string(), lineno);
                    id.to_string()
                }
                None => format!("line{lineno}"),
            };
            raw.push((
                submit_ms,
                TraceJob {
                    id,
                    job,
                    input_bytes,
                    reduces,
                    submit_offset_ms: submit_ms,
                },
            ));
        }
        if raw.is_empty() {
            return Err(TraceError::at(0, "trace contains no jobs"));
        }
        // History files interleave records by finish time; submission
        // order is what the replay needs. The sort is stable so equal
        // timestamps keep their file order.
        raw.sort_by_key(|&(t, _)| t);
        let base = raw[0].0;
        let jobs = raw
            .into_iter()
            .map(|(t, mut j)| {
                j.submit_offset_ms = t - base;
                j
            })
            .collect();
        Ok(JobTrace { jobs })
    }

    /// Parse a trace file; I/O and parse errors both become one
    /// path-prefixed message.
    pub fn load(path: &Path) -> Result<JobTrace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        JobTrace::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty (never true for a parsed trace).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Offset of the last submission, milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.jobs.last().map_or(0, |j| j.submit_offset_ms)
    }

    /// The trace as a workload mix: one entry per job, in submission
    /// order, each carrying its rebased submit offset. Feed it to
    /// [`crate::Scenario::axis_mixes`] (with the default `Batch`
    /// arrival schedule — the offsets live on the entries) to replay
    /// the recorded mix across cluster axes.
    pub fn to_mix(&self) -> WorkloadMix {
        WorkloadMix::new(
            self.jobs
                .iter()
                .map(|j| {
                    MixEntry::new(j.job, j.input_bytes, 1)
                        .with_reduces(j.reduces)
                        .at_offset_ms(j.submit_offset_ms)
                })
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SAMPLE: &str = r#"
# a three-job history, deliberately out of submission order
{"job_id":"job_0002","job":"terasort","submit_time_ms":1500,"input_bytes":2147483648,"reduces":4}
{"job_id":"job_0001","job":"wordcount","submit_time_ms":1000}
{"job_id":"job_0003","jobtype":"Grep","submitTime":9000,"hdfsBytesRead":536870912,"mapsTotal":4}
"#;

    #[test]
    fn parses_sorts_and_rebases() {
        let t = JobTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.jobs[0].id, "job_0001");
        assert_eq!(t.jobs[0].submit_offset_ms, 0, "rebased to first submit");
        assert_eq!(t.jobs[1].id, "job_0002");
        assert_eq!(t.jobs[1].submit_offset_ms, 500);
        assert_eq!(t.jobs[1].reduces, ReducePolicy::Fixed(4));
        assert_eq!(t.jobs[2].job, JobKind::Grep, "Rumen-style aliases decode");
        assert_eq!(t.jobs[2].input_bytes, 512 * 1024 * 1024);
        assert_eq!(t.jobs[2].submit_offset_ms, 8000);
        assert_eq!(t.span_ms(), 8000);

        let mix = t.to_mix();
        assert_eq!(mix.entries.len(), 3);
        assert_eq!(mix.total_jobs(), 3);
        assert_eq!(mix.entries[0].submit_offset_ms, 0);
        assert_eq!(mix.entries[2].submit_offset_ms, 8000);
        assert!(mix.name().contains("+8000ms"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("{\"job\":\"wordcount\"", 1, "invalid JSON"),
            ("\n\n{\"job\":\"wordcount\"}", 3, "needs a `submit_time_ms`"),
            ("{\"submit_time_ms\":1}", 1, "needs a `job` field"),
            (
                "{\"job\":\"sort\",\"submit_time_ms\":1}",
                1,
                "unknown job `sort`",
            ),
            ("[1,2]", 1, "must be a JSON object"),
            (
                "{\"job\":\"grep\",\"submit_time_ms\":\"soon\"}",
                1,
                "`submit_time_ms` must be a non-negative integer",
            ),
            // The error names the alias actually present on the line,
            // not the canonical key the file never used.
            (
                "{\"jobtype\":\"grep\",\"submitTime\":\"soon\"}",
                1,
                "`submitTime` must be a non-negative integer",
            ),
            (
                "{\"job\":\"grep\",\"submit_time_ms\":1,\"reduces\":0}",
                1,
                "`reduces` must be a positive",
            ),
            (
                "{\"job\":\"grep\",\"submit_time_ms\":1,\"input_bytes\":0}",
                1,
                "`input_bytes` must be positive",
            ),
            ("# only comments\n\n", 0, "contains no jobs"),
        ] {
            let e = JobTrace::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text} → {e}");
            assert!(e.message.contains(needle), "{text} → {e}");
            if line > 0 {
                assert!(e.to_string().contains(&format!("line {line}")));
            }
        }
    }

    #[test]
    fn truncated_tail_line_is_an_error_not_a_partial_trace() {
        let whole =
            "{\"job\":\"grep\",\"submit_time_ms\":1}\n{\"job\":\"wordcount\",\"submit_time_ms\":2}";
        assert_eq!(JobTrace::parse(whole).unwrap().len(), 2);
        // Cut the file mid-record — the way a crashed copy truncates.
        let cut = &whole[..whole.len() - 10];
        let e = JobTrace::parse(cut).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid JSON"), "{e}");
    }

    #[test]
    fn duplicate_job_ids_are_rejected_with_both_lines() {
        let text = "{\"job_id\":\"j1\",\"job\":\"grep\",\"submit_time_ms\":1}\n\
                    {\"job_id\":\"j2\",\"job\":\"grep\",\"submit_time_ms\":2}\n\
                    {\"job_id\":\"j1\",\"job\":\"wordcount\",\"submit_time_ms\":3}";
        let e = JobTrace::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate job id `j1`"), "{e}");
        assert!(e.message.contains("first seen on line 1"), "{e}");
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        // Real job-history records carry dozens of counters the replay
        // doesn't need.
        let t = JobTrace::parse(
            "{\"job\":\"grep\",\"submit_time_ms\":5,\"user\":\"etl\",\"queue\":\"root\",\"outcome\":\"SUCCESS\"}",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.jobs[0].id, "line1", "synthetic id from the line");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Reordering trace lines never changes the parsed replay: the
        /// stable sort on submission time makes the mix canonical.
        #[test]
        fn reordered_lines_parse_to_the_same_mix(
            jobs in prop::collection::vec((0usize..3, 0u64..10_000, 1u64..64, 1u32..8), 1..12),
            rotate in 0usize..12,
        ) {
            let kinds = ["wordcount", "terasort", "grep"];
            let lines: Vec<String> = jobs
                .iter()
                .enumerate()
                .map(|(i, &(k, t, mb, r))| {
                    format!(
                        "{{\"job_id\":\"j{i}\",\"job\":\"{}\",\"submit_time_ms\":{t},\"input_bytes\":{},\"reduces\":{r}}}",
                        kinds[k],
                        mb * 1024 * 1024,
                    )
                })
                .collect();
            let mut rotated = lines.clone();
            rotated.rotate_left(rotate % lines.len());
            let a = JobTrace::parse(&lines.join("\n")).unwrap();
            let b = JobTrace::parse(&rotated.join("\n")).unwrap();
            // Ids of equal-timestamp jobs may settle in rotated order,
            // but the replayed workload — kinds, sizes, offsets — is
            // identical when timestamps are distinct; the mix form
            // (which drops ids) must always agree on sorted offsets.
            let offsets = |t: &JobTrace| t.jobs.iter().map(|j| j.submit_offset_ms).collect::<Vec<_>>();
            prop_assert_eq!(offsets(&a), offsets(&b));
            let dedup: std::collections::BTreeSet<u64> = jobs.iter().map(|&(_, t, _, _)| t).collect();
            if dedup.len() == jobs.len() {
                prop_assert_eq!(a.to_mix(), b.to_mix());
            }
            // Offsets are rebased: the first is always zero and they
            // are monotone.
            prop_assert_eq!(a.jobs[0].submit_offset_ms, 0);
            prop_assert!(a.jobs.windows(2).all(|w| w[0].submit_offset_ms <= w[1].submit_offset_ms));
        }
    }
}
