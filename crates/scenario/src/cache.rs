//! Content-hashed result cache — the shared state of every evaluation
//! layer, from one-shot sweeps to the long-running `mr2-serve` service.
//!
//! Every evaluation a sweep performs — a simulator measurement, a model
//! solve, a profiling run — is keyed by an FNV-1a hash of its *complete*
//! input description (cluster config, job spec, N, reps, seed, backend
//! tag). Because evaluations are deterministic functions of those
//! inputs, a key hit can return the stored floats verbatim: repeated
//! sweeps, overlapping scenarios, and the estimator axis (whose points
//! share the underlying solve) all skip straight to the answer.
//!
//! Three properties make the cache safe to share between concurrent
//! clients of a service:
//!
//! * **Versioned keys** — [`KeyHasher::versioned`] bakes the model and
//!   simulator schema versions ([`schema_version`]) into the hash, so
//!   results persisted by an older build silently miss instead of
//!   serving stale numbers under valid-looking keys.
//! * **In-flight coalescing** — concurrent [`ResultCache::get_or_compute`]
//!   calls for the same key cost exactly one evaluation: the first
//!   caller computes, the rest block on the in-flight entry and receive
//!   the same allocation.
//! * **Bounded size** — [`ResultCache::with_capacity`] caps the entry
//!   count with least-recently-used eviction, so a long-running service
//!   can't grow without bound.
//!
//! The store persists to a simple line-oriented text file
//! ([`ResultCache::save`]/[`ResultCache::load`]) so sweeps skip work
//! across processes too.

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Live process-wide mirrors of the per-cache counters: every
/// [`ResultCache`] in the process increments these `mr2-obs` families
/// alongside its own [`CacheStats`] atomics, so `GET /metrics` shows
/// cache behaviour without polling each cache instance.
fn obs_counters() -> &'static [mr2_obs::Counter; 4] {
    static C: OnceLock<[mr2_obs::Counter; 4]> = OnceLock::new();
    C.get_or_init(|| {
        [
            mr2_obs::counter(
                "mr2_cache_hits_total",
                "Result-cache lookups answered from a ready entry.",
            ),
            mr2_obs::counter(
                "mr2_cache_misses_total",
                "Result-cache lookups that computed a fresh entry.",
            ),
            mr2_obs::counter(
                "mr2_cache_coalesced_total",
                "Result-cache lookups that waited on an identical in-flight computation.",
            ),
            mr2_obs::counter(
                "mr2_cache_evictions_total",
                "Result-cache entries evicted by the LRU bound.",
            ),
        ]
    })
}

/// Combined schema version of everything a cached record depends on:
/// the analytic model ([`mr2_model::MODEL_SCHEMA_VERSION`]) and the
/// simulator ([`mapreduce_sim::SIM_SCHEMA_VERSION`]). Baked into every
/// [`KeyHasher::versioned`] key: bumping either constant invalidates
/// all previously hashed results at the key level.
pub fn schema_version() -> u64 {
    ((mr2_model::MODEL_SCHEMA_VERSION as u64) << 32) | mapreduce_sim::SIM_SCHEMA_VERSION as u64
}

/// Incremental FNV-1a content hasher for cache keys.
///
/// Stable across runs, platforms, and — unlike `DefaultHasher` — Rust
/// releases, so persisted caches stay valid.
#[derive(Debug, Clone)]
pub struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// Start a fresh key.
    pub fn new() -> KeyHasher {
        KeyHasher(0xcbf29ce484222325)
    }

    /// Start a fresh key with the current [`schema_version`] mixed in —
    /// the constructor every evaluation key must use, so schema bumps
    /// invalidate persisted results.
    pub fn versioned() -> KeyHasher {
        KeyHasher::with_schema_version(schema_version())
    }

    /// Start a fresh key under an explicit schema version (exposed so
    /// tests can demonstrate cross-version misses).
    pub fn with_schema_version(version: u64) -> KeyHasher {
        KeyHasher::new().u64(version)
    }

    /// One FNV-1a step. The multiply chain is inherently serial — every
    /// byte's product feeds the next xor — so the only latitude an
    /// implementation has is how bytes reach the chain, never their
    /// order.
    #[inline(always)]
    fn step(h: u64, b: u8) -> u64 {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    }

    /// Feed one little-endian word through eight unrolled FNV-1a steps,
    /// low byte first — bit-identical to hashing `w.to_le_bytes()` a
    /// byte at a time, but the lanes shift out of a register instead of
    /// loading (and bounds-checking) eight separate bytes.
    #[inline(always)]
    fn word(mut h: u64, w: u64) -> u64 {
        h = Self::step(h, w as u8);
        h = Self::step(h, (w >> 8) as u8);
        h = Self::step(h, (w >> 16) as u8);
        h = Self::step(h, (w >> 24) as u8);
        h = Self::step(h, (w >> 32) as u8);
        h = Self::step(h, (w >> 40) as u8);
        h = Self::step(h, (w >> 48) as u8);
        Self::step(h, (w >> 56) as u8)
    }

    /// Mix raw bytes: whole words via [`KeyHasher::word`], the tail a
    /// byte at a time. Byte-identical to the reference per-byte loop
    /// for every input length (pinned by `key_hasher_is_stable` and the
    /// batched-vs-reference test).
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            self.0 = Self::word(self.0, w);
        }
        for &b in chunks.remainder() {
            self.0 = Self::step(self.0, b);
        }
        self
    }

    /// Mix a string (length-prefixed so concatenations can't collide).
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Mix a `u64` — one [`KeyHasher::word`] batch, no byte round-trip
    /// through memory (little-endian byte order, same as
    /// `bytes(&v.to_le_bytes())`).
    pub fn u64(self, v: u64) -> Self {
        KeyHasher(Self::word(self.0, v))
    }

    /// Mix an `f64` by bit pattern (bit-exact, no rounding).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Mix a `bool`.
    pub fn bool(self, v: bool) -> Self {
        self.u64(v as u64)
    }

    /// Finish and return the 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One in-flight computation other callers can wait on.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum FlightState {
    Computing,
    /// The computing caller finished and published this record.
    Ready(Arc<Vec<f64>>),
    /// The computing caller panicked; waiters must recompute.
    Abandoned,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Computing),
            done: Condvar::new(),
        }
    }

    fn publish(&self, state: FlightState) {
        *self.state.lock().unwrap() = state;
        self.done.notify_all();
    }

    /// Block until the computing caller publishes; `None` means it
    /// abandoned the flight (panicked) and the waiter must recompute.
    fn wait(&self) -> Option<Arc<Vec<f64>>> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Computing => state = self.done.wait(state).unwrap(),
                FlightState::Ready(v) => return Some(Arc::clone(v)),
                FlightState::Abandoned => return None,
            }
        }
    }
}

#[derive(Debug)]
enum Slot {
    Ready { value: Arc<Vec<f64>>, stamp: u64 },
    Pending(Arc<Flight>),
}

/// Map + LRU bookkeeping behind one lock.
#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Slot>,
    /// LRU order of the *ready* entries: use-stamp → key. Stamps come
    /// from `clock`, so the smallest stamp is the least recently used.
    lru: BTreeMap<u64, u64>,
    clock: u64,
    /// Bumped on every insert and eviction — a change stamp for "has
    /// the stored content changed since X?" (recency touches don't
    /// count; they don't alter what a snapshot would contain).
    mutations: u64,
}

impl Inner {
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let fresh = self.clock;
        if let Some(Slot::Ready { stamp, .. }) = self.map.get_mut(&key) {
            self.lru.remove(stamp);
            *stamp = fresh;
            self.lru.insert(fresh, key);
        }
    }

    /// Insert a ready record (fresh stamp) and report how many evictions
    /// a `capacity` bound forces.
    fn insert_ready(&mut self, key: u64, value: Arc<Vec<f64>>, capacity: usize) -> u64 {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(Slot::Ready { stamp: old, .. }) =
            self.map.insert(key, Slot::Ready { value, stamp })
        {
            self.lru.remove(&old);
        }
        self.lru.insert(stamp, key);
        let mut evicted = 0;
        if capacity > 0 {
            while self.lru.len() > capacity {
                let (_, victim) = self.lru.pop_first().expect("len > capacity > 0");
                self.map.remove(&victim);
                evicted += 1;
            }
        }
        self.mutations += 1 + evicted;
        evicted
    }
}

/// Thread-safe content-addressed store of evaluation results (flat
/// `f64` records) with in-flight coalescing and optional LRU bounding.
#[derive(Debug, Default)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    /// Maximum number of ready entries; 0 means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

/// Counters and size of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that had to evaluate (each miss is exactly one execution
    /// of a compute closure).
    pub misses: u64,
    /// Lookups that joined another caller's in-flight evaluation instead
    /// of computing their own.
    pub coalesced: u64,
    /// Entries dropped by the LRU size bound.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// The size bound (0 = unbounded).
    pub capacity: usize,
}

/// Removes the pending slot and wakes waiters if the compute closure
/// unwinds, so a panicking evaluation can't wedge its waiters forever.
struct FlightGuard<'a> {
    cache: &'a ResultCache,
    key: u64,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.inner.lock().unwrap();
            if matches!(inner.map.get(&self.key), Some(Slot::Pending(f)) if Arc::ptr_eq(f, self.flight))
            {
                inner.map.remove(&self.key);
            }
            drop(inner);
            self.flight.publish(FlightState::Abandoned);
        }
    }
}

impl ResultCache {
    /// An empty, unbounded cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// An empty cache holding at most `capacity` entries, evicting the
    /// least recently used beyond that. `capacity` 0 means unbounded.
    pub fn with_capacity(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            ..ResultCache::default()
        }
    }

    /// The size bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Return the record for `key`, computing and storing it on a miss.
    ///
    /// Concurrent calls for the same key coalesce: exactly one caller
    /// executes `compute` (counted as the one miss) while the others
    /// block on the in-flight entry (counted as coalesced) and receive
    /// the same allocation — so results are bit-identical regardless of
    /// interleaving and concurrent identical queries cost one
    /// evaluation. If the computing caller panics its waiters recompute.
    pub fn get_or_compute<F: FnOnce() -> Vec<f64>>(&self, key: u64, compute: F) -> Arc<Vec<f64>> {
        let lookup_started = Instant::now();
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut inner = self.inner.lock().unwrap();
                match inner.map.get(&key) {
                    Some(Slot::Ready { value, .. }) => {
                        let value = Arc::clone(value);
                        inner.touch(key);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        obs_counters()[0].inc();
                        // Only the hit branch times the lookup itself;
                        // misses are dominated by `compute` and carry
                        // their own spans.
                        mr2_obs::observe_span(
                            "cache.lookup",
                            lookup_started.elapsed().as_secs_f64(),
                        );
                        return value;
                    }
                    Some(Slot::Pending(flight)) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        obs_counters()[2].inc();
                        Arc::clone(flight)
                    }
                    None => {
                        let flight = Arc::new(Flight::new());
                        inner.map.insert(key, Slot::Pending(Arc::clone(&flight)));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        obs_counters()[1].inc();
                        drop(inner);

                        let mut guard = FlightGuard {
                            cache: self,
                            key,
                            flight: &flight,
                            armed: true,
                        };
                        let value = Arc::new(compute.take().expect("first computing attempt")());
                        guard.armed = false;

                        let evicted = {
                            let mut inner = self.inner.lock().unwrap();
                            inner.insert_ready(key, Arc::clone(&value), self.capacity)
                        };
                        self.evictions.fetch_add(evicted, Ordering::Relaxed);
                        obs_counters()[3].add(evicted);
                        flight.publish(FlightState::Ready(Arc::clone(&value)));
                        return value;
                    }
                }
            };
            // Wait outside the map lock; on abandonment, loop and try
            // again (possibly computing ourselves this time).
            if let Some(value) = flight.wait() {
                return value;
            }
            assert!(
                compute.is_some(),
                "a caller can abandon at most its own flight"
            );
        }
    }

    /// Look up `key` without computing (still refreshes LRU recency; no
    /// hit/miss accounting). In-flight entries are not waited on.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<f64>>> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(&key) {
            Some(Slot::Ready { value, .. }) => {
                let value = Arc::clone(value);
                inner.touch(key);
                Some(value)
            }
            _ => None,
        }
    }

    /// Monotonic change stamp: bumped on every insert and eviction,
    /// untouched by lookups. Equal stamps ⇒ identical stored content,
    /// which is what lets a persistence loop skip clean snapshots
    /// without trusting the entry *count* (at capacity, insert+evict
    /// keeps the count constant while the content churns).
    pub fn mutation_count(&self) -> u64 {
        self.inner.lock().unwrap().mutations
    }

    /// Counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().lru.len(),
            capacity: self.capacity,
        }
    }

    /// Reset the hit/miss/coalesced/eviction counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Persist every ready entry to `path` as `key,v0,v1,...` lines
    /// (floats as hex bit patterns, so round-trips are bit-exact),
    /// headed by the format version and the [`schema_version`] the
    /// entries were computed under.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let inner = self.inner.lock().unwrap();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "mr2-scenario-cache v1")?;
        writeln!(out, "schema {:016x}", schema_version())?;
        let mut keys: Vec<&u64> = inner
            .map
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
            .map(|(k, _)| k)
            .collect();
        keys.sort_unstable();
        for k in keys {
            let Some(Slot::Ready { value, .. }) = inner.map.get(k) else {
                unreachable!("filtered to ready slots");
            };
            write!(out, "{k:016x}")?;
            for v in value.iter() {
                write!(out, ",{:016x}", v.to_bits())?;
            }
            writeln!(out)?;
        }
        out.flush()
    }

    /// Merge entries from a file written by [`ResultCache::save`].
    ///
    /// Returns the number of entries merged. Rejects files whose format
    /// header doesn't match (decoding a different format would silently
    /// yield wrong floats under valid keys). A file written under a
    /// different [`schema_version`] loads nothing (`Ok(0)`): its keys
    /// could never hit anyway, so merging them would only displace live
    /// entries. Malformed lines within a valid file are skipped and
    /// existing entries are kept.
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let body = std::fs::read_to_string(path)?;
        let mut lines = body.lines().peekable();
        if lines.next() != Some("mr2-scenario-cache v1") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: not a mr2-scenario-cache v1 file", path.display()),
            ));
        }
        // The schema line is optional (files from before versioned keys
        // lack it; their keys are unversioned and simply never hit).
        if let Some(schema) = lines.peek().and_then(|l| l.strip_prefix("schema ")) {
            let stale = u64::from_str_radix(schema, 16)
                .map(|v| v != schema_version())
                .unwrap_or(true);
            if stale {
                return Ok(0);
            }
            lines.next();
        }
        let mut loaded = 0;
        for line in lines {
            let mut fields = line.split(',');
            let Some(key) = fields.next().and_then(|k| u64::from_str_radix(k, 16).ok()) else {
                continue;
            };
            let values: Option<Vec<f64>> = fields
                .map(|f| u64::from_str_radix(f, 16).ok().map(f64::from_bits))
                .collect();
            let Some(values) = values else { continue };
            let mut inner = self.inner.lock().unwrap();
            if !inner.map.contains_key(&key) {
                let evicted = inner.insert_ready(key, Arc::new(values), self.capacity);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                obs_counters()[3].add(evicted);
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn key_hasher_distinguishes_field_order_and_values() {
        let a = KeyHasher::new().u64(1).u64(2).finish();
        let b = KeyHasher::new().u64(2).u64(1).finish();
        assert_ne!(a, b);
        let c = KeyHasher::new().str("ab").str("c").finish();
        let d = KeyHasher::new().str("a").str("bc").finish();
        assert_ne!(c, d, "length prefix must prevent concatenation collisions");
        assert_ne!(
            KeyHasher::new().f64(1.0).finish(),
            KeyHasher::new().f64(-1.0).finish()
        );
    }

    #[test]
    fn key_hasher_is_stable() {
        // Pinned value: persisted caches depend on this never changing.
        assert_eq!(KeyHasher::new().str("probe").u64(7).finish(), {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in 5u64
                .to_le_bytes()
                .iter()
                .chain(b"probe")
                .chain(&7u64.to_le_bytes())
            {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        });
    }

    #[test]
    fn batched_hashing_matches_the_reference_per_byte_loop() {
        // The word-at-a-time path must be byte-identical to the naive
        // FNV-1a loop for every input length, including tails shorter
        // than a word and inputs spanning several words.
        let reference = |bytes: &[u8]| {
            let mut h: u64 = 0xcbf29ce484222325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        };
        let mut data = Vec::new();
        for len in 0..64usize {
            data.clear();
            data.extend((0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)));
            assert_eq!(
                KeyHasher::new().bytes(&data).finish(),
                reference(&data),
                "length {len}"
            );
        }
        // And the u64 fast path is exactly bytes(&v.to_le_bytes()).
        for v in [0u64, 1, 0xdead_beef, u64::MAX, 0x0102_0304_0506_0708] {
            assert_eq!(
                KeyHasher::new().u64(v).finish(),
                KeyHasher::new().bytes(&v.to_le_bytes()).finish()
            );
            assert_eq!(
                KeyHasher::new().u64(v).finish(),
                reference(&v.to_le_bytes())
            );
        }
    }

    #[test]
    fn versioned_keys_miss_across_schema_bumps() {
        // The same content hashed under different schema versions must
        // land on different keys: that is what turns a version bump into
        // an automatic cache invalidation.
        let v1 = KeyHasher::with_schema_version(1).str("point").finish();
        let v2 = KeyHasher::with_schema_version(2).str("point").finish();
        assert_ne!(v1, v2);
        // `versioned()` is exactly `with_schema_version(schema_version())`.
        assert_eq!(
            KeyHasher::versioned().str("point").finish(),
            KeyHasher::with_schema_version(schema_version())
                .str("point")
                .finish()
        );
        // And it differs from an unversioned key of the same content.
        assert_ne!(
            KeyHasher::versioned().str("point").finish(),
            KeyHasher::new().str("point").finish()
        );

        let cache = ResultCache::new();
        cache.get_or_compute(v1, || vec![1.0]);
        cache.get_or_compute(v2, || vec![2.0]);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 2), "no cross-version hit");
    }

    #[test]
    fn hit_returns_identical_allocation() {
        let cache = ResultCache::new();
        let first = cache.get_or_compute(42, || vec![1.5, 2.5]);
        let second = cache.get_or_compute(42, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!((s.coalesced, s.evictions), (0, 0));
    }

    #[test]
    fn mutation_count_tracks_content_not_recency() {
        let cache = ResultCache::with_capacity(1);
        assert_eq!(cache.mutation_count(), 0);
        cache.get_or_compute(1, || vec![1.0]);
        assert_eq!(cache.mutation_count(), 1, "one insert");
        cache.get_or_compute(1, || unreachable!("hit"));
        cache.get(1);
        assert_eq!(cache.mutation_count(), 1, "lookups don't count");
        // At capacity: insert+evict keeps `entries` at 1 but the stored
        // content changed — the stamp must move.
        cache.get_or_compute(2, || vec![2.0]);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.mutation_count(), 3, "insert + eviction");
    }

    #[test]
    fn eviction_respects_the_size_bound_in_lru_order() {
        let cache = ResultCache::with_capacity(2);
        cache.get_or_compute(1, || vec![1.0]);
        cache.get_or_compute(2, || vec![2.0]);
        // Touch 1 so 2 becomes the least recently used.
        cache.get_or_compute(1, || unreachable!("hit"));
        cache.get_or_compute(3, || vec![3.0]);
        let s = cache.stats();
        assert_eq!(s.entries, 2, "bound holds");
        assert_eq!(s.evictions, 1);
        assert!(cache.get(1).is_some(), "recently used survives");
        assert!(cache.get(2).is_none(), "LRU victim evicted");
        assert!(cache.get(3).is_some());
        // Evicted keys recompute on the next request.
        cache.get_or_compute(2, || vec![2.5]);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ResultCache::new();
        for k in 0..100 {
            cache.get_or_compute(k, || vec![k as f64]);
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions, s.capacity), (100, 0, 0));
    }

    #[test]
    fn save_load_roundtrip_is_bit_exact() {
        let cache = ResultCache::new();
        let odd = f64::from_bits(0x7ff0000000000001); // NaN payload survives
        cache.get_or_compute(1, || vec![0.1 + 0.2, -0.0, odd]);
        cache.get_or_compute(2, Vec::new);
        let path = std::env::temp_dir().join("mr2-scenario-cache-test.txt");
        cache.save(&path).unwrap();

        let fresh = ResultCache::new();
        assert_eq!(fresh.load(&path).unwrap(), 2);
        let v = fresh.get(1).unwrap();
        assert_eq!(v[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(v[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v[2].to_bits(), odd.to_bits());
        assert_eq!(fresh.get(2).unwrap().len(), 0);
        // And a lookup through the compute path is a pure hit returning
        // the loaded record.
        let via_compute = fresh.get_or_compute(1, || panic!("loaded entry must hit"));
        assert_eq!(via_compute[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(fresh.stats().hits, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_header_and_skips_stale_schema() {
        let dir = std::env::temp_dir();
        let bad = dir.join("mr2-scenario-cache-badheader.txt");
        std::fs::write(
            &bad,
            "mr2-scenario-cache v2\n0000000000000001,3ff0000000000000\n",
        )
        .unwrap();
        let cache = ResultCache::new();
        let err = cache.load(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(cache.stats().entries, 0, "nothing merged from a bad file");
        std::fs::remove_file(bad).ok();

        // A valid file from a different schema version loads nothing.
        let stale = dir.join("mr2-scenario-cache-staleschema.txt");
        std::fs::write(
            &stale,
            format!(
                "mr2-scenario-cache v1\nschema {:016x}\n0000000000000001,3ff0000000000000\n",
                schema_version() ^ 1
            ),
        )
        .unwrap();
        assert_eq!(cache.load(&stale).unwrap(), 0);
        assert_eq!(cache.stats().entries, 0);
        std::fs::remove_file(stale).ok();
    }

    #[test]
    fn load_respects_the_size_bound() {
        let cache = ResultCache::new();
        for k in 0..10 {
            cache.get_or_compute(k, || vec![k as f64]);
        }
        let path = std::env::temp_dir().join("mr2-scenario-cache-bound.txt");
        cache.save(&path).unwrap();
        let bounded = ResultCache::with_capacity(4);
        bounded.load(&path).unwrap();
        let s = bounded.stats();
        assert_eq!(s.entries, 4, "loading cannot overflow the bound");
        assert!(s.evictions >= 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_identical_requests_evaluate_exactly_once() {
        // The coalescing guarantee: N concurrent get_or_compute calls on
        // one key execute the compute closure exactly once, whatever the
        // interleaving. The barrier maximizes overlap; the slow compute
        // keeps the flight in progress while the waiters arrive.
        let cache = Arc::new(ResultCache::new());
        let executions = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        let results: Vec<Arc<Vec<f64>>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache.get_or_compute(7, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            vec![3.25]
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one evaluation");
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]), "all callers share the record");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.misses, 1, "the computing caller is the only miss");
        assert_eq!(s.hits + s.coalesced, 7, "everyone else joined or hit");
    }

    #[test]
    fn panicking_compute_does_not_wedge_waiters() {
        let cache = Arc::new(ResultCache::new());
        let barrier = Barrier::new(2);
        let (first, second) = std::thread::scope(|s| {
            let panicker = s.spawn(|| {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute(9, || {
                        barrier.wait(); // a waiter is (about to be) queued
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("evaluation failed")
                    })
                }));
                r.is_err()
            });
            let waiter = s.spawn(|| {
                barrier.wait();
                cache.get_or_compute(9, || vec![4.5])
            });
            (panicker.join().unwrap(), waiter.join().unwrap())
        });
        assert!(first, "the computing caller observed its own panic");
        assert_eq!(*second, vec![4.5], "the waiter recovered by recomputing");
        assert_eq!(cache.stats().entries, 1);
    }
}
